#!/usr/bin/env python3
"""CI smoke for the incremental lint cache.

Runs the whole-program analyzer twice over the same tree with a shared
``--cache-dir``:

* the **cold** run parses every file and populates the cache;
* the **warm** run must re-parse **zero** files, produce **byte-identical**
  JSON, and finish faster than the cold run (a loose 2x bound so shared
  runners don't flake).

Exit 0 when all three hold; exit 1 with a diagnostic otherwise.  This is
the executable form of the cache contract in DESIGN.md §16: caching is a
pure performance optimization and must never change the verdict.

Usage::

    python tools/check_lint_cache.py [--cache-dir DIR] [paths...]

Defaults to linting ``src/repro`` with a temporary cache directory.
"""

from __future__ import annotations

import argparse
import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.lint.engine import LintReport, lint_paths  # noqa: E402


def _run(paths: list[Path], cache_dir: Path) -> tuple[LintReport, float]:
    start = time.perf_counter()
    report = lint_paths(paths, cache_dir=cache_dir)
    return report, time.perf_counter() - start


def _json(report: LintReport) -> str:
    import json

    return json.dumps(report.as_dict(), indent=2, sort_keys=False)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("paths", nargs="*", type=Path)
    parser.add_argument("--cache-dir", type=Path, default=None)
    args = parser.parse_args(argv)

    paths = args.paths or [REPO / "src" / "repro"]
    if args.cache_dir is not None:
        cache_dir = args.cache_dir
        cleanup = None
    else:
        cleanup = tempfile.TemporaryDirectory(prefix="lint-cache-")
        cache_dir = Path(cleanup.name)

    try:
        cold, cold_s = _run(paths, cache_dir)
        warm, warm_s = _run(paths, cache_dir)
    finally:
        if cleanup is not None:
            cleanup.cleanup()

    print(
        f"cold: {cold.files_scanned} file(s), {cold.files_reparsed} parsed, "
        f"{cold_s:.2f}s"
    )
    print(
        f"warm: {warm.files_scanned} file(s), {warm.files_reparsed} parsed, "
        f"{warm.cache_hits} cache hit(s), {warm_s:.2f}s"
    )

    failures: list[str] = []
    if warm.files_reparsed != 0:
        failures.append(
            f"warm run re-parsed {warm.files_reparsed} file(s); expected 0"
        )
    if warm.cache_hits != warm.files_scanned:
        failures.append(
            f"warm run hit cache for {warm.cache_hits}/{warm.files_scanned} "
            "file(s); expected all"
        )
    if _json(cold) != _json(warm):
        failures.append("warm JSON report differs from cold (verdict changed)")
    # Loose bound: a warm run does no parsing and no per-file rule work,
    # so even on a noisy shared runner it should beat half the cold time.
    if cold.files_reparsed > 0 and warm_s >= cold_s / 2:
        failures.append(
            f"warm run ({warm_s:.2f}s) not faster than half the cold run "
            f"({cold_s:.2f}s)"
        )

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        print(f"OK: warm run byte-identical, zero re-parses, {cold_s / max(warm_s, 1e-9):.0f}x faster")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
