#!/usr/bin/env python3
"""Fail if a committed benchmark baseline regressed against a fresh run.

Usage::

    python tools/check_bench_regression.py COMMITTED.json FRESH.json

The gate dispatches on the ``benchmark`` field of the committed file
(both files must agree):

``explore-enumeration`` (BENCH_explore.json)
    Compares ``states_per_s`` at n=4 (effective coverage rate: unreduced
    space states / DPOR wall time) and exits 1 if it dropped by more
    than the tolerance (default 15%, ``--tolerance 0.15``).  Raw
    wall-clock numbers are machine-bound, so the comparison is
    *machine-normalized*: both files also record the reduction-free
    baseline walk's throughput at n=4 (``baseline_states_per_s``),
    which measures pure executor speed on the recording machine.  The
    fresh machine's speed ratio rescales the committed figure before
    the 15% rule is applied -- a slower CI runner does not trip the
    gate, but a reduction regression does.

``epistemic-kernel`` (BENCH_kernel.json)
    Compares the columnar kernel's speedups over the class kernel at
    n=20 plus the pool-transfer byte ratio.  Speedup ratios are
    machine-normalized by construction (class and columnar rounds are
    interleaved on the same machine), so the 15% rule applies to the
    ratios directly, on top of the absolute acceptance floors:
    index build >= 5x, C_G fixpoint >= 3x, transfer header <= 10% of
    the pickled run batch.

``serve-latency`` (BENCH_serve.json)
    Compares the query service's throughput (qps floor) and p95 latency
    (ceiling) at every committed concurrency level, plus the ingest
    p95.  Both files record an in-process calibration figure
    (``calibration.direct_qps``: the same query mix run directly
    against a SystemSession, no sockets), which measures raw kernel
    speed on the recording machine; the fresh/committed calibration
    ratio rescales the committed figures before the tolerance band is
    applied.  The scale is clamped at 1.0 -- socket round-trips do not
    speed up linearly with kernel speed, so normalization only loosens
    the bands on a slower machine, never tightens them on a faster
    one.  Socket latency is noisy on shared CI runners, so this gate
    is usually run with a looser ``--tolerance`` (0.5 in CI).

``--mode serve-journal`` (BENCH_serve.json)
    Gates the journaling overhead recorded in the ``journal`` section:
    journal-on query p50 must stay within the tolerance (default 15%)
    of journal-off.  The ratio is measured within one process on one
    machine, so no normalization applies and the *fresh* file alone is
    gated (the committed file's ratio is printed for reference).  The
    query path never touches the journal -- a breach means journal
    work leaked onto the read path.  Ingest durability overhead (one
    fsynced segment per batch) is printed for audit but not gated.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

EXPLORE_KEY = "n=4"
KERNEL_KEY = "n=20"

#: Absolute acceptance floors for the kernel baseline (issue criteria).
KERNEL_FLOORS = {
    "index_speedup_vs_class": 5.0,
    "ck_speedup_vs_class": 3.0,
}
TRANSFER_RATIO_CEILING = 0.10


def _load(path: Path) -> dict:
    try:
        return json.loads(path.read_text())
    except (OSError, ValueError) as exc:
        sys.exit(f"{path}: {exc}")


def _entry(payload: dict, path: Path, key: str) -> dict:
    try:
        return payload["results"][key]
    except KeyError:
        sys.exit(f"{path}: no results[{key!r}] entry")


def check_explore(
    committed: dict, fresh: dict, args: argparse.Namespace
) -> int:
    committed_e = _entry(committed, args.committed, EXPLORE_KEY)
    fresh_e = _entry(fresh, args.fresh, EXPLORE_KEY)

    for name, e in (("committed", committed_e), ("fresh", fresh_e)):
        for field in ("states_per_s", "baseline_states_per_s"):
            if not e.get(field):
                sys.exit(f"{name} entry lacks a nonzero {field!r}")

    # How fast is this machine relative to the one that recorded the
    # committed baseline?  The reduction-free walk measures that.
    machine_scale = (
        fresh_e["baseline_states_per_s"] / committed_e["baseline_states_per_s"]
    )
    expected = committed_e["states_per_s"] * machine_scale
    floor = expected * (1.0 - args.tolerance)
    actual = fresh_e["states_per_s"]

    print(
        f"explorer throughput at {EXPLORE_KEY}: fresh {actual:,.0f} states/s, "
        f"committed {committed_e['states_per_s']:,.0f} "
        f"(machine scale {machine_scale:.2f}x -> floor {floor:,.0f})"
    )
    if actual < floor:
        print(
            f"REGRESSION: {actual:,.0f} < {floor:,.0f} "
            f"(committed minus {args.tolerance:.0%}, machine-normalized)",
            file=sys.stderr,
        )
        return 1
    print("ok")
    return 0


def check_kernel(committed: dict, fresh: dict, args: argparse.Namespace) -> int:
    committed_e = _entry(committed, args.committed, KERNEL_KEY)
    fresh_e = _entry(fresh, args.fresh, KERNEL_KEY)
    failed = False

    for field, absolute_floor in KERNEL_FLOORS.items():
        for name, e in (("committed", committed_e), ("fresh", fresh_e)):
            if not e.get(field):
                sys.exit(f"{name} entry lacks a nonzero {field!r}")
        floor = max(absolute_floor, committed_e[field] * (1.0 - args.tolerance))
        actual = fresh_e[field]
        print(
            f"kernel {field} at {KERNEL_KEY}: fresh {actual:.2f}x, "
            f"committed {committed_e[field]:.2f}x (floor {floor:.2f}x)"
        )
        if actual < floor:
            print(
                f"REGRESSION: {field} {actual:.2f}x < {floor:.2f}x",
                file=sys.stderr,
            )
            failed = True

    for name, payload in (("committed", committed), ("fresh", fresh)):
        transfer = payload.get("transfer")
        if not transfer or "transfer_ratio" not in transfer:
            sys.exit(f"{name} payload lacks a transfer.transfer_ratio entry")
    committed_ratio = committed["transfer"]["transfer_ratio"]
    fresh_ratio = fresh["transfer"]["transfer_ratio"]
    # The shm path makes the ratio tiny and byte-exact, so the 15%
    # band around the committed figure is the binding constraint; the
    # acceptance ceiling only matters if the committed file itself
    # sits near it.
    ceiling = min(
        TRANSFER_RATIO_CEILING, committed_ratio * (1.0 + args.tolerance)
    )
    print(
        f"kernel transfer ratio: fresh {fresh_ratio:.4f}, "
        f"committed {committed_ratio:.4f} (ceiling {ceiling:.4f})"
    )
    if fresh_ratio > ceiling:
        print(
            f"REGRESSION: transfer ratio {fresh_ratio:.4f} > {ceiling:.4f}",
            file=sys.stderr,
        )
        failed = True

    if failed:
        return 1
    print("ok")
    return 0


def check_serve(committed: dict, fresh: dict, args: argparse.Namespace) -> int:
    for name, payload in (("committed", committed), ("fresh", fresh)):
        if not payload.get("calibration", {}).get("direct_qps"):
            sys.exit(f"{name} payload lacks a nonzero calibration.direct_qps")

    # How fast is this machine's kernel relative to the recording
    # machine's?  The socket-free calibration round measures that.
    machine_scale = (
        fresh["calibration"]["direct_qps"] / committed["calibration"]["direct_qps"]
    )
    # Socket round-trips do not speed up linearly with kernel speed, so
    # normalization only ever *loosens* the bands: a slower machine gets
    # scaled-down floors and scaled-up ceilings, a faster one is simply
    # held to the committed figures.
    floor_scale = min(machine_scale, 1.0)
    print(
        f"serve calibration: fresh {fresh['calibration']['direct_qps']:,.0f} q/s "
        f"in-process, committed {committed['calibration']['direct_qps']:,.0f} "
        f"(machine scale {machine_scale:.2f}x, applied {floor_scale:.2f}x)"
    )
    failed = False

    for key in sorted(committed.get("results", {})):
        committed_e = _entry(committed, args.committed, key)
        fresh_e = _entry(fresh, args.fresh, key)
        for name, e in (("committed", committed_e), ("fresh", fresh_e)):
            for field in ("qps", "p95_ms"):
                if not e.get(field):
                    sys.exit(f"{name} entry {key} lacks a nonzero {field!r}")
        qps_floor = committed_e["qps"] * floor_scale * (1.0 - args.tolerance)
        p95_ceiling = (
            committed_e["p95_ms"] / floor_scale * (1.0 + args.tolerance)
        )
        print(
            f"serve {key}: fresh {fresh_e['qps']:,.0f} q/s "
            f"p95 {fresh_e['p95_ms']:.2f} ms, committed "
            f"{committed_e['qps']:,.0f} q/s p95 {committed_e['p95_ms']:.2f} ms "
            f"(floor {qps_floor:,.0f} q/s, ceiling {p95_ceiling:.2f} ms)"
        )
        if fresh_e["qps"] < qps_floor:
            print(
                f"REGRESSION: {key} throughput {fresh_e['qps']:,.0f} "
                f"< {qps_floor:,.0f} q/s",
                file=sys.stderr,
            )
            failed = True
        if fresh_e["p95_ms"] > p95_ceiling:
            print(
                f"REGRESSION: {key} p95 {fresh_e['p95_ms']:.2f} "
                f"> {p95_ceiling:.2f} ms",
                file=sys.stderr,
            )
            failed = True

    # Ingest is gated on p50: the batch counts are small (4-8), so p95
    # is a max over a handful of samples and one GC pause trips it.
    for name, payload in (("committed", committed), ("fresh", fresh)):
        if not payload.get("ingest", {}).get("p50_ms"):
            sys.exit(f"{name} payload lacks a nonzero ingest.p50_ms")
    ingest_ceiling = (
        committed["ingest"]["p50_ms"] / floor_scale * (1.0 + args.tolerance)
    )
    fresh_ingest = fresh["ingest"]["p50_ms"]
    print(
        f"serve ingest p50: fresh {fresh_ingest:.2f} ms, committed "
        f"{committed['ingest']['p50_ms']:.2f} ms (ceiling {ingest_ceiling:.2f} ms)"
    )
    if fresh_ingest > ingest_ceiling:
        print(
            f"REGRESSION: ingest p50 {fresh_ingest:.2f} > {ingest_ceiling:.2f} ms",
            file=sys.stderr,
        )
        failed = True

    if failed:
        return 1
    print("ok")
    return 0


def check_serve_journal(
    committed: dict, fresh: dict, args: argparse.Namespace
) -> int:
    for name, payload in (("committed", committed), ("fresh", fresh)):
        journal = payload.get("journal")
        if not journal:
            sys.exit(f"{name} payload lacks a journal section")
        for mode in ("off", "on"):
            if not journal.get(mode, {}).get("query_p50_ms"):
                sys.exit(f"{name} journal section lacks {mode}.query_p50_ms")

    committed_j = committed["journal"]
    fresh_j = fresh["journal"]
    committed_ratio = (
        committed_j["on"]["query_p50_ms"] / committed_j["off"]["query_p50_ms"]
    )
    fresh_ratio = fresh_j["on"]["query_p50_ms"] / fresh_j["off"]["query_p50_ms"]
    ceiling = 1.0 + args.tolerance
    print(
        f"serve journal query p50: on {fresh_j['on']['query_p50_ms']:.2f} ms / "
        f"off {fresh_j['off']['query_p50_ms']:.2f} ms = {fresh_ratio:.3f}x "
        f"(ceiling {ceiling:.2f}x; committed ratio {committed_ratio:.3f}x)"
    )
    ingest_on = fresh_j["on"].get("ingest_p50_ms", 0.0)
    ingest_off = fresh_j["off"].get("ingest_p50_ms", 0.0)
    if ingest_on and ingest_off:
        print(
            f"serve journal ingest p50 (informational, fsync="
            f"{fresh_j.get('fsync')}): on {ingest_on:.2f} ms / "
            f"off {ingest_off:.2f} ms = {ingest_on / ingest_off:.3f}x"
        )
    if fresh_ratio > ceiling:
        print(
            f"REGRESSION: journal-on query p50 is {fresh_ratio:.3f}x "
            f"journal-off (> {ceiling:.2f}x): journal work on the read path",
            file=sys.stderr,
        )
        return 1
    print("ok")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("committed", type=Path)
    parser.add_argument("fresh", type=Path)
    parser.add_argument("--tolerance", type=float, default=0.15)
    parser.add_argument(
        "--mode",
        choices=("auto", "serve-journal"),
        default="auto",
        help="auto: dispatch on the benchmark field; serve-journal: gate "
        "the journaling-overhead section of a serve-latency payload",
    )
    args = parser.parse_args(argv)

    committed = _load(args.committed)
    fresh = _load(args.fresh)
    kind = committed.get("benchmark")
    if fresh.get("benchmark") != kind:
        sys.exit(
            f"benchmark kind mismatch: committed {kind!r} vs "
            f"fresh {fresh.get('benchmark')!r}"
        )
    if args.mode == "serve-journal":
        if kind != "serve-latency":
            sys.exit(f"--mode serve-journal needs a serve-latency payload, got {kind!r}")
        return check_serve_journal(committed, fresh, args)
    if kind == "epistemic-kernel":
        return check_kernel(committed, fresh, args)
    if kind == "explore-enumeration":
        return check_explore(committed, fresh, args)
    if kind == "serve-latency":
        return check_serve(committed, fresh, args)
    sys.exit(f"unknown benchmark kind {kind!r}")


if __name__ == "__main__":
    sys.exit(main())
