#!/usr/bin/env python3
"""Fail if explorer throughput regressed against the committed baseline.

Usage::

    python tools/check_bench_regression.py COMMITTED.json FRESH.json

Compares ``states_per_s`` at n=4 (effective coverage rate: unreduced
space states / DPOR wall time) in FRESH against COMMITTED and exits 1
if it dropped by more than the tolerance (default 15%, override with
``--tolerance 0.15``).

Raw wall-clock numbers are machine-bound, so the comparison is
*machine-normalized*: both files also record the reduction-free
baseline walk's throughput at n=4 (``baseline_states_per_s``), which
measures pure executor speed on the recording machine.  The fresh
machine's speed ratio rescales the committed figure before the 15%
rule is applied -- a slower CI runner does not trip the gate, but a
reduction regression (DPOR doing more work per covered state) does.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

KEY = "n=4"


def entry(path: Path) -> dict:
    payload = json.loads(path.read_text())
    try:
        return payload["results"][KEY]
    except KeyError:
        sys.exit(f"{path}: no results[{KEY!r}] entry")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("committed", type=Path)
    parser.add_argument("fresh", type=Path)
    parser.add_argument("--tolerance", type=float, default=0.15)
    args = parser.parse_args(argv)

    committed = entry(args.committed)
    fresh = entry(args.fresh)

    for name, e in (("committed", committed), ("fresh", fresh)):
        for field in ("states_per_s", "baseline_states_per_s"):
            if not e.get(field):
                sys.exit(f"{name} entry lacks a nonzero {field!r}")

    # How fast is this machine relative to the one that recorded the
    # committed baseline?  The reduction-free walk measures that.
    machine_scale = fresh["baseline_states_per_s"] / committed["baseline_states_per_s"]
    expected = committed["states_per_s"] * machine_scale
    floor = expected * (1.0 - args.tolerance)
    actual = fresh["states_per_s"]

    print(
        f"explorer throughput at {KEY}: fresh {actual:,.0f} states/s, "
        f"committed {committed['states_per_s']:,.0f} "
        f"(machine scale {machine_scale:.2f}x -> floor {floor:,.0f})"
    )
    if actual < floor:
        print(
            f"REGRESSION: {actual:,.0f} < {floor:,.0f} "
            f"(committed minus {args.tolerance:.0%}, machine-normalized)",
            file=sys.stderr,
        )
        return 1
    print("ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
