"""Bench e07_tuseful: Prop 4.1 / Cor 4.2: t-useful generalized detectors attain UDC for every t.

Regenerates the corresponding experiment row of DESIGN.md Section 4 and
prints the measured values alongside the timing.
"""

from repro.harness.experiments import run_e07

from conftest import bench_experiment


def test_bench_e07_tuseful(benchmark):
    bench_experiment(benchmark, run_e07)
