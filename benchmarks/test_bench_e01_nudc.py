"""Bench e01_nudc: Prop 2.3: nUDC under fair-lossy channels, no detector, unbounded failures.

Regenerates the corresponding experiment row of DESIGN.md Section 4 and
prints the measured values alongside the timing.
"""

from repro.harness.experiments import run_e01

from conftest import bench_experiment


def test_bench_e01_nudc(benchmark):
    bench_experiment(benchmark, run_e01)
