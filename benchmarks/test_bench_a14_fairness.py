"""Bench a14_fairness: Ablation: R5 fairness is load-bearing (blackhole vs fairness budget).

Regenerates the corresponding experiment row of DESIGN.md Section 4 and
prints the measured values alongside the timing.
"""

from repro.harness.experiments import run_a14

from conftest import bench_experiment


def test_bench_a14_fairness(benchmark):
    bench_experiment(benchmark, run_a14)
