"""Bench a15_quorum: Ablation: the t < n/2 crossover of Gopal-Toueg's detector-free protocol.

Regenerates the corresponding experiment row of DESIGN.md Section 4 and
prints the measured values alongside the timing.
"""

from repro.harness.experiments import run_a15

from conftest import bench_experiment


def test_bench_a15_quorum(benchmark):
    bench_experiment(benchmark, run_a15)
