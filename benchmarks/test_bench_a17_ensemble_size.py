"""Bench a17: ensemble size vs knowledge-derived detection (ablation).

Regenerates the corresponding experiment row of DESIGN.md Section 4 and
prints the measured values alongside the timing.
"""

from repro.harness.experiments import run_a17

from conftest import bench_experiment


def test_bench_a17_ensemble_size(benchmark):
    bench_experiment(benchmark, run_a17)
