"""Shared benchmark helpers.

Each experiment bench executes the corresponding harness function once
per measured round (they are deterministic, so one round with a few
iterations gives stable numbers), asserts the experiment PASSES, and
prints its measured rows so a benchmark run doubles as a reproduction
report.
"""


from repro.harness.results import render_result


def bench_experiment(benchmark, fn, *args, **kwargs):
    result = benchmark.pedantic(
        lambda: fn(*args, **kwargs), rounds=1, iterations=1, warmup_rounds=0
    )
    print()
    print(render_result(result))
    assert result.passed, render_result(result)
    return result
