"""Bench e04_conversions: Cor 3.2 + Props 2.1/2.2: impermanent-weak detectors suffice via conversions.

Regenerates the corresponding experiment row of DESIGN.md Section 4 and
prints the measured values alongside the timing.
"""

from repro.harness.experiments import run_e04

from conftest import bench_experiment


def test_bench_e04_conversions(benchmark):
    bench_experiment(benchmark, run_e04)
