"""Bench e10_atd: Section 5: UDC with the ATD99 weakest failure detector.

Regenerates the corresponding experiment row of DESIGN.md Section 4 and
prints the measured values alongside the timing.
"""

from repro.harness.experiments import run_e10

from conftest import bench_experiment


def test_bench_e10_atd(benchmark):
    bench_experiment(benchmark, run_e10)
