"""Microbenchmarks for the substrates: executor throughput, knowledge
model checking, the indistinguishability index, and the f transformation.

These are the performance-sensitive inner loops every experiment rides
on; they use pytest-benchmark's standard multi-round measurement.
"""

from repro.core.protocols import StrongFDUDCProcess
from repro.core.simulation_theorem import transform_run_f
from repro.detectors.standard import PerfectOracle
from repro.knowledge import Crashed, Knows, ModelChecker
from repro.knowledge.paper_formulas import dc2_formula
from repro.model.context import make_process_ids
from repro.model.run import Point
from repro.model.system import System
from repro.sim.ensembles import a5t_ensemble
from repro.sim.executor import Executor
from repro.sim.failures import CrashPlan
from repro.sim.process import uniform_protocol
from repro.workloads.generators import post_crash_workload, single_action

PROCS = make_process_ids(4)


def one_run(seed=0):
    return Executor(
        PROCS,
        uniform_protocol(StrongFDUDCProcess),
        crash_plan=CrashPlan.of({"p3": 8}),
        workload=single_action("p1", tick=1),
        detector=PerfectOracle(),
        seed=seed,
    ).run()


def small_system():
    return a5t_ensemble(
        PROCS,
        uniform_protocol(StrongFDUDCProcess),
        t=2,
        workload=lambda plan: post_crash_workload(PROCS, plan, actions_per_survivor=1),
        detector=PerfectOracle(),
        seeds=(0,),
    )


def test_bench_executor_single_run(benchmark):
    """End-to-end protocol execution: one UDC run with a crash."""
    run = benchmark(one_run)
    assert run.faulty() == frozenset({"p3"})


def test_bench_ensemble_construction(benchmark):
    """Building an A5_2 ensemble (11 crash plans, one seed)."""
    system = benchmark.pedantic(small_system, rounds=3, iterations=1)
    assert len(system) == 11


def test_bench_indistinguishability_index(benchmark):
    """Cold build of the ~_p index plus one knowledge query per process."""
    base = small_system()

    def rebuild_and_query():
        system = System(base.runs)  # fresh: forces index construction
        run = system.runs[-1]
        return [
            system.known_crashed_set(p, Point(run, run.duration))
            for p in PROCS
        ]

    sets = benchmark(rebuild_and_query)
    assert len(sets) == len(PROCS)


def test_bench_knowledge_query_warm(benchmark):
    """Warm K_p(crash(q)) queries over an indexed system."""
    system = small_system()
    checker = ModelChecker(system)
    run = next(r for r in system if r.faulty())
    victim = next(iter(run.faulty()))
    formula = Knows("p1", Crashed(victim))
    points = [Point(run, m) for m in range(run.duration + 1)]
    checker.holds(formula, points[-1])  # prime the caches

    def query_all():
        return sum(checker.holds(formula, pt) for pt in points)

    known = benchmark(query_all)
    assert known > 0


def test_bench_temporal_validity(benchmark):
    """Model-checking a DC2 validity (n^2 temporal clauses) over a system."""
    system = small_system()
    action = ("p1", "pc0")

    def check():
        checker = ModelChecker(system)  # cold caches each round
        return checker.valid(dc2_formula(PROCS, action))

    assert benchmark(check)


def test_bench_transform_f(benchmark):
    """The P1-P3 run transformation for one run against its ensemble."""
    system = small_system()
    run = next(r for r in system if r.faulty())

    out = benchmark(transform_run_f, run, system)
    assert out.duration == 2 * run.duration + 1
