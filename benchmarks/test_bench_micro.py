"""Microbenchmarks for the substrates: executor throughput, knowledge
model checking, the indistinguishability index, and the f transformation
-- plus the epistemic-kernel family (index build, Knows sweep, CK
fixpoint) whose measurements are written to ``BENCH_kernel.json`` at the
repo root as the committed performance baseline.

These are the performance-sensitive inner loops every experiment rides
on; they use pytest-benchmark's standard multi-round measurement.  Set
``REPRO_BENCH_SMOKE=1`` (as CI's bench-smoke job does) to skip the
timing-ratio assertions while keeping every correctness assertion.
"""

import json
import os
import platform
import time
from pathlib import Path

import pytest

from repro.core.protocols import NUDCProcess, StrongFDUDCProcess
from repro.core.simulation_theorem import transform_run_f
from repro.detectors.standard import PerfectOracle
from repro.knowledge import Crashed, GroupChecker, Knows, ModelChecker
from repro.knowledge.paper_formulas import dc2_formula
from repro.knowledge.reference import (
    naive_common_knowledge_points,
    naive_known_crashed_set,
)
from repro.model.context import make_process_ids
from repro.model.run import Point
from repro.model.synthetic import synthetic_system
from repro.model.system import System
from repro.sim.ensembles import a5t_ensemble
from repro.sim.executor import Executor
from repro.sim.failures import CrashPlan
from repro.sim.process import uniform_protocol
from repro.workloads.generators import post_crash_workload, single_action

PROCS = make_process_ids(4)

REPO_ROOT = Path(__file__).resolve().parents[1]
BENCH_KERNEL_JSON = REPO_ROOT / "BENCH_kernel.json"
SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"


def one_run(seed=0):
    return Executor(
        PROCS,
        uniform_protocol(StrongFDUDCProcess),
        crash_plan=CrashPlan.of({"p3": 8}),
        workload=single_action("p1", tick=1),
        detector=PerfectOracle(),
        seed=seed,
    ).run()


def small_system():
    return a5t_ensemble(
        PROCS,
        uniform_protocol(StrongFDUDCProcess),
        t=2,
        workload=lambda plan: post_crash_workload(PROCS, plan, actions_per_survivor=1),
        detector=PerfectOracle(),
        seeds=(0,),
    )


def test_bench_executor_single_run(benchmark):
    """End-to-end protocol execution: one UDC run with a crash."""
    run = benchmark(one_run)
    assert run.faulty() == frozenset({"p3"})


def test_bench_ensemble_construction(benchmark):
    """Building an A5_2 ensemble (11 crash plans, one seed)."""
    system = benchmark.pedantic(small_system, rounds=3, iterations=1)
    assert len(system) == 11


def test_bench_indistinguishability_index(benchmark):
    """Cold build of the ~_p index plus one knowledge query per process."""
    base = small_system()

    def rebuild_and_query():
        system = System(base.runs)  # fresh: forces index construction
        run = system.runs[-1]
        return [
            system.known_crashed_set(p, Point(run, run.duration))
            for p in PROCS
        ]

    sets = benchmark(rebuild_and_query)
    assert len(sets) == len(PROCS)


def test_bench_knowledge_query_warm(benchmark):
    """Warm K_p(crash(q)) queries over an indexed system."""
    system = small_system()
    checker = ModelChecker(system)
    run = next(r for r in system if r.faulty())
    victim = next(iter(run.faulty()))
    formula = Knows("p1", Crashed(victim))
    points = [Point(run, m) for m in range(run.duration + 1)]
    checker.holds(formula, points[-1])  # prime the caches

    def query_all():
        return sum(checker.holds(formula, pt) for pt in points)

    known = benchmark(query_all)
    assert known > 0


def test_bench_temporal_validity(benchmark):
    """Model-checking a DC2 validity (n^2 temporal clauses) over a system."""
    system = small_system()
    action = ("p1", "pc0")

    def check():
        checker = ModelChecker(system)  # cold caches each round
        return checker.valid(dc2_formula(PROCS, action))

    assert benchmark(check)


def test_bench_transform_f(benchmark):
    """The P1-P3 run transformation for one run against its ensemble."""
    system = small_system()
    run = next(r for r in system if r.faulty())

    out = benchmark(transform_run_f, run, system)
    assert out.duration == 2 * run.duration + 1


# -- epistemic-kernel family --------------------------------------------------
#
# Synthetic systems sized by process count n: 3n runs of duration 8 with
# crashes at varied times.  The same generators feed the differential
# tests, so what is benchmarked here is exactly what is proven correct
# there.

KERNEL_NS = (5, 10, 20)
KERNEL_DURATION = 8
SWEEP_SAMPLE_RUNS = 3  # the naive sweep is quadratic; sample a slice


def kernel_system(n):
    return synthetic_system(
        n, runs=3 * n, seed=n, duration=KERNEL_DURATION, crash_prob=0.4
    )


def _sweep_points(system):
    """Points of the first SWEEP_SAMPLE_RUNS runs (the sweep workload)."""
    sample = system.runs[:SWEEP_SAMPLE_RUNS]
    return [Point(r, m) for r in sample for m in range(r.duration + 1)]


def _knows_sweep(system, points):
    """known_crashed_set for every (process, point) of the workload."""
    total = 0
    for p in system.processes:
        for pt in points:
            total += len(system.known_crashed_set(p, pt))
    return total


def _naive_knows_sweep(system, points):
    total = 0
    for p in system.processes:
        for pt in points:
            total += len(naive_known_crashed_set(system, p, pt))
    return total


@pytest.mark.parametrize("n", KERNEL_NS)
def test_bench_kernel_index_build(benchmark, n):
    """Cold class-table construction for all n processes."""
    runs = kernel_system(n).runs

    def build():
        system = System(runs)
        for p in system.processes:
            system.classes(p)
        return system

    system = benchmark(build)
    assert system.stats.index_builds == n
    assert system.stats.points_indexed == n * system.point_count


@pytest.mark.parametrize("n", KERNEL_NS)
def test_bench_kernel_knows_sweep(benchmark, n):
    """Warm known_crashed_set sweep over the sampled point workload."""
    system = kernel_system(n)
    for p in system.processes:
        system.classes(p)
    points = _sweep_points(system)

    total = benchmark(_knows_sweep, system, points)
    assert total == _naive_knows_sweep(system, points)


@pytest.mark.parametrize("n", KERNEL_NS)
def test_bench_kernel_ck_fixpoint(benchmark, n):
    """The bitset C_G fixpoint over the full group (warm class bits)."""
    system = kernel_system(n)
    checker = GroupChecker(ModelChecker(system))
    group = system.processes
    phi = Crashed(system.processes[-1])
    checker.common_knowledge_points(group, phi)  # warm class bits + phi set

    points = benchmark(checker.common_knowledge_points, group, phi)
    assert isinstance(points, set)


def _best_of(fn, *args, repeat=3):
    best = float("inf")
    for _ in range(repeat):
        start = time.perf_counter()
        fn(*args)
        best = min(best, time.perf_counter() - start)
    return best


def test_kernel_baseline_json():
    """Measure the kernel family, compare against the naive reference,
    and write the committed baseline file ``BENCH_kernel.json``.

    The >=5x speedup gates (Knows sweep and CK fixpoint at n=10) are the
    issue's acceptance criteria; under REPRO_BENCH_SMOKE=1 only the
    correctness assertions are enforced, never the timing ratios.
    """
    results = {}
    for n in KERNEL_NS:
        runs = kernel_system(n).runs

        def build():
            fresh = System(runs)
            for p in fresh.processes:
                fresh.classes(p)
            return fresh

        index_s = _best_of(build)

        system = build()
        points = _sweep_points(system)
        fast_total = _knows_sweep(system, points)
        sweep_s = _best_of(_knows_sweep, system, points)

        checker = GroupChecker(ModelChecker(system))
        group = system.processes
        phi = Crashed(system.processes[-1])
        fast_ck = checker.common_knowledge_points(group, phi)
        ck_s = _best_of(checker.common_knowledge_points, group, phi)

        entry = {
            "runs": len(runs),
            "points": system.point_count,
            "classes": sum(len(system.classes(p)) for p in system.processes),
            "index_build_s": index_s,
            "knows_sweep_s": sweep_s,
            "ck_fixpoint_s": ck_s,
        }

        if n <= 10:  # the naive path is quadratic; skip it at n=20
            naive_total = _naive_knows_sweep(system, points)
            assert fast_total == naive_total
            naive_sweep_s = _best_of(_naive_knows_sweep, system, points, repeat=1)

            naive_checker = ModelChecker(System(runs))
            naive_ck = naive_common_knowledge_points(naive_checker, group, phi)
            assert fast_ck == naive_ck
            naive_ck_s = _best_of(
                naive_common_knowledge_points, naive_checker, group, phi, repeat=1
            )

            entry["naive_knows_sweep_s"] = naive_sweep_s
            entry["naive_ck_fixpoint_s"] = naive_ck_s
            entry["knows_speedup"] = naive_sweep_s / sweep_s if sweep_s else float("inf")
            entry["ck_speedup"] = naive_ck_s / ck_s if ck_s else float("inf")

        results[f"n={n}"] = entry

    baseline = {
        "benchmark": "epistemic-kernel",
        "created": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "python": platform.python_version(),
        "config": {
            "runs_per_n": "3*n",
            "duration": KERNEL_DURATION,
            "crash_prob": 0.4,
            "sweep_sample_runs": SWEEP_SAMPLE_RUNS,
            "timer": "best of 3 (naive: 1) perf_counter runs",
        },
        "results": results,
    }
    BENCH_KERNEL_JSON.write_text(json.dumps(baseline, indent=2) + "\n")

    if not SMOKE:
        at10 = results["n=10"]
        assert at10["knows_speedup"] >= 5.0, at10
        assert at10["ck_speedup"] >= 5.0, at10


# -- explorer family ----------------------------------------------------------
#
# Bounded exhaustive enumeration (repro.explore) over the lossy NUDC
# context: the state-space walk is the inner loop of every soundness
# check.  Throughput is tracked as *effective* states/second: the size
# of the unreduced state space divided by the DPOR walk's wall time.
# The reduced and unreduced run sets are asserted equal each round --
# the benchmark re-proves the reduction-soundness property it measures.
#
# The trajectory is recorded at horizon 8, the regime the explorer is
# meant for (ROADMAP: n=6-8 at horizon 8-10).  The PR 3 fingerprint-POR
# explorer committed 41,866 states/s at n=4; the DPOR gate below
# requires >= 5x that.

EXPLORE_NS = (2, 3, 4)
EXPLORE_HORIZON = 8
EXPLORE_DEEP_N = 6  # completed n=6 horizon-8 enumeration (experiment X02)
BENCH_EXPLORE_JSON = REPO_ROOT / "BENCH_explore.json"
PR3_STATES_PER_S = 41_866.0


def explore_spec(n, **overrides):
    from repro.explore import ExploreSpec
    from repro.workloads.generators import single_action as one_action

    base = dict(
        processes=make_process_ids(n),
        protocol=uniform_protocol(NUDCProcess),
        horizon=EXPLORE_HORIZON,
        max_failures=1,
        crash_ticks=(1, 3, 5),
        workload=one_action("p1", tick=1),
        lossy=True,
        max_consecutive_drops=1,
    )
    base.update(overrides)
    return ExploreSpec(**base)


def _run_key(run):
    """Value identity for a run, ignoring bookkeeping metadata."""
    return tuple(sorted((p, run.timeline(p)) for p in run.processes))


def _run_keys(report):
    return {_run_key(run) for run in report.runs}


@pytest.mark.parametrize("n", EXPLORE_NS)
def test_bench_explore_exhaustive(benchmark, n):
    """Full enumeration of the lossy NUDC context under DPOR."""
    from repro.explore import explore

    spec = explore_spec(n)
    report = benchmark(explore, spec, cache=None)
    assert report.complete
    assert report.stats.runs_unique > 0
    assert report.stats.reduction == "dpor"


def test_bench_explore_reduction_off(benchmark):
    """The reduction-free baseline walk at n=3 (the soundness anchor)."""
    from repro.explore import explore

    spec = explore_spec(3, reduction="none")
    report = benchmark(explore, spec, cache=None)
    assert report.complete


def test_explore_baseline_json():
    """Measure explorer throughput for n in {2, 3, 4} plus the deep
    n=6 enumeration, re-assert run-set equality between the DPOR and
    reduction-free walks, and write ``BENCH_explore.json``.

    ``states_per_s`` is the effective coverage rate: states of the
    *unreduced* space divided by the DPOR walk's wall time.  The two
    walks provably cover the same run set (asserted per n), so this is
    the apples-to-apples successor of the PR 3 metric.
    """
    from repro.explore import explore

    results = {}
    for n in EXPLORE_NS:
        spec = explore_spec(n)
        reduced = explore(spec, cache=None)
        reduced_s = _best_of(lambda s=spec: explore(s, cache=None))
        baseline_spec = spec.with_(reduction="none")
        baseline = explore(baseline_spec, cache=None)
        baseline_s = _best_of(
            lambda s=baseline_spec: explore(s, cache=None), repeat=1
        )

        assert reduced.complete and baseline.complete
        assert _run_keys(reduced) == _run_keys(baseline)

        space_states = baseline.stats.states_expanded
        results[f"n={n}"] = {
            "executions": reduced.stats.executions,
            "states": reduced.stats.states_expanded,
            "runs": reduced.stats.runs_unique,
            "drops_elided": reduced.stats.drops_elided,
            "deliveries_collapsed": reduced.stats.deliveries_collapsed,
            "explore_s": reduced_s,
            "space_states": space_states,
            "states_per_s": (
                space_states / reduced_s if reduced_s else float("inf")
            ),
            "baseline_executions": baseline.stats.executions,
            "baseline_explore_s": baseline_s,
            "baseline_states_per_s": (
                space_states / baseline_s if baseline_s else float("inf")
            ),
            "effective_speedup": (
                baseline_s / reduced_s if reduced_s else float("inf")
            ),
        }

    # The deep entry: a completed n=6, horizon-8 enumeration.  The
    # unreduced walk is infeasible here -- which is the point -- so the
    # entry records the DPOR walk's own counters only.
    deep_spec = explore_spec(EXPLORE_DEEP_N)
    start = time.perf_counter()
    deep = explore(deep_spec, cache=None)
    deep_s = time.perf_counter() - start
    assert deep.complete
    results[f"n={EXPLORE_DEEP_N}"] = {
        "executions": deep.stats.executions,
        "states": deep.stats.states_expanded,
        "runs": deep.stats.runs_unique,
        "explore_s": deep_s,
        "complete": deep.complete,
        "deep": True,
    }

    payload = {
        "benchmark": "explore-enumeration",
        "created": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "python": platform.python_version(),
        "config": {
            "protocol": "NUDC",
            "reduction": "dpor",
            "horizon": EXPLORE_HORIZON,
            "max_failures": 1,
            "crash_ticks": [1, 3, 5],
            "channel": "fair-lossy, budget 1",
            "timer": "best of 3 perf_counter runs (baseline walk: 1)",
            "states_per_s": "unreduced space states / DPOR wall time",
        },
        "pr3_states_per_s": PR3_STATES_PER_S,
        "results": results,
    }
    BENCH_EXPLORE_JSON.write_text(json.dumps(payload, indent=2) + "\n")

    if not SMOKE:
        at4 = results["n=4"]
        assert at4["states_per_s"] >= 5.0 * PR3_STATES_PER_S, at4
        assert results[f"n={EXPLORE_DEEP_N}"]["runs"] > 0
