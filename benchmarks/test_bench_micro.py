"""Microbenchmarks for the substrates: executor throughput, knowledge
model checking, the indistinguishability index, and the f transformation
-- plus the epistemic-kernel family (index build, Knows sweep, CK
fixpoint) whose measurements are written to ``BENCH_kernel.json`` at the
repo root as the committed performance baseline.

These are the performance-sensitive inner loops every experiment rides
on; they use pytest-benchmark's standard multi-round measurement.  Set
``REPRO_BENCH_SMOKE=1`` (as CI's bench-smoke job does) to skip the
timing-ratio assertions while keeping every correctness assertion.
"""

import json
import os
import platform
import time
from pathlib import Path

import pytest

from repro.core.protocols import NUDCProcess, StrongFDUDCProcess
from repro.core.simulation_theorem import transform_run_f
from repro.detectors.standard import PerfectOracle
from repro.knowledge import Crashed, GroupChecker, Knows, ModelChecker
from repro.knowledge.paper_formulas import dc2_formula
from repro.knowledge.reference import (
    naive_common_knowledge_points,
    naive_known_crashed_set,
)
from repro.model.context import make_process_ids
from repro.model.run import Point
from repro.model.synthetic import synthetic_system
from repro.model.system import System
from repro.sim.ensembles import a5t_ensemble
from repro.sim.executor import Executor
from repro.sim.failures import CrashPlan
from repro.sim.process import uniform_protocol
from repro.workloads.generators import post_crash_workload, single_action

PROCS = make_process_ids(4)

REPO_ROOT = Path(__file__).resolve().parents[1]
BENCH_KERNEL_JSON = REPO_ROOT / "BENCH_kernel.json"
SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"


def one_run(seed=0):
    return Executor(
        PROCS,
        uniform_protocol(StrongFDUDCProcess),
        crash_plan=CrashPlan.of({"p3": 8}),
        workload=single_action("p1", tick=1),
        detector=PerfectOracle(),
        seed=seed,
    ).run()


def small_system():
    return a5t_ensemble(
        PROCS,
        uniform_protocol(StrongFDUDCProcess),
        t=2,
        workload=lambda plan: post_crash_workload(PROCS, plan, actions_per_survivor=1),
        detector=PerfectOracle(),
        seeds=(0,),
    )


def test_bench_executor_single_run(benchmark):
    """End-to-end protocol execution: one UDC run with a crash."""
    run = benchmark(one_run)
    assert run.faulty() == frozenset({"p3"})


def test_bench_ensemble_construction(benchmark):
    """Building an A5_2 ensemble (11 crash plans, one seed)."""
    system = benchmark.pedantic(small_system, rounds=3, iterations=1)
    assert len(system) == 11


def test_bench_indistinguishability_index(benchmark):
    """Cold build of the ~_p index plus one knowledge query per process."""
    base = small_system()

    def rebuild_and_query():
        system = System(base.runs)  # fresh: forces index construction
        run = system.runs[-1]
        return [
            system.known_crashed_set(p, Point(run, run.duration))
            for p in PROCS
        ]

    sets = benchmark(rebuild_and_query)
    assert len(sets) == len(PROCS)


def test_bench_knowledge_query_warm(benchmark):
    """Warm K_p(crash(q)) queries over an indexed system."""
    system = small_system()
    checker = ModelChecker(system)
    run = next(r for r in system if r.faulty())
    victim = next(iter(run.faulty()))
    formula = Knows("p1", Crashed(victim))
    points = [Point(run, m) for m in range(run.duration + 1)]
    checker.holds(formula, points[-1])  # prime the caches

    def query_all():
        return sum(checker.holds(formula, pt) for pt in points)

    known = benchmark(query_all)
    assert known > 0


def test_bench_temporal_validity(benchmark):
    """Model-checking a DC2 validity (n^2 temporal clauses) over a system."""
    system = small_system()
    action = ("p1", "pc0")

    def check():
        checker = ModelChecker(system)  # cold caches each round
        return checker.valid(dc2_formula(PROCS, action))

    assert benchmark(check)


def test_bench_transform_f(benchmark):
    """The P1-P3 run transformation for one run against its ensemble."""
    system = small_system()
    run = next(r for r in system if r.faulty())

    out = benchmark(transform_run_f, run, system)
    assert out.duration == 2 * run.duration + 1


# -- epistemic-kernel family --------------------------------------------------
#
# Synthetic systems sized by process count n: 3n runs of duration 8 with
# crashes at varied times.  The same generators feed the differential
# tests, so what is benchmarked here is exactly what is proven correct
# there.
#
# Two kernels are measured per operation: the PR 2 equivalence-class
# kernel ("class", the committed baseline) and the struct-of-arrays
# kernel ("columnar").  Timings are *warm*: the run objects are shared
# across rounds, so per-run caches (prefix histories, timeline columns,
# event hashes) are hot and the measurement isolates the kernel's own
# work -- the regime the explorer and ensemble drivers actually run in.

KERNEL_NS = (5, 10, 20)
KERNEL_DURATION = 8
SWEEP_SAMPLE_RUNS = 3  # the naive sweep is quadratic; sample a slice


def kernel_system(n):
    return synthetic_system(
        n, runs=3 * n, seed=n, duration=KERNEL_DURATION, crash_prob=0.4
    )


def build_class_kernel(runs):
    system = System(runs, kernel="class")
    for p in system.processes:
        system.classes(p)
    return system


def build_columnar_kernel(runs):
    system = System(runs, kernel="columnar")
    system.build_index()
    return system


KERNEL_BUILDERS = {"class": build_class_kernel, "columnar": build_columnar_kernel}


def _sweep_points(system):
    """Points of the first SWEEP_SAMPLE_RUNS runs (the sweep workload)."""
    sample = system.runs[:SWEEP_SAMPLE_RUNS]
    return [Point(r, m) for r in sample for m in range(r.duration + 1)]


def _knows_sweep(system, points):
    """known_crashed_set for every (process, point) of the workload."""
    total = 0
    for p in system.processes:
        for pt in points:
            total += len(system.known_crashed_set(p, pt))
    return total


def _naive_knows_sweep(system, points):
    total = 0
    for p in system.processes:
        for pt in points:
            total += len(naive_known_crashed_set(system, p, pt))
    return total


@pytest.mark.parametrize("kernel", sorted(KERNEL_BUILDERS))
@pytest.mark.parametrize("n", KERNEL_NS)
def test_bench_kernel_index_build(benchmark, n, kernel):
    """Index construction (class tables / columnar arena) for all n processes."""
    runs = kernel_system(n).runs

    system = benchmark(KERNEL_BUILDERS[kernel], runs)
    if kernel == "class":
        assert system.stats.index_builds == n
        assert system.stats.points_indexed == n * system.point_count
    else:
        assert system.columnar_kernel() is not None
        assert system.stats.arena_builds >= 1


@pytest.mark.parametrize("kernel", sorted(KERNEL_BUILDERS))
@pytest.mark.parametrize("n", KERNEL_NS)
def test_bench_kernel_knows_sweep(benchmark, n, kernel):
    """Warm known_crashed_set sweep over the sampled point workload."""
    system = KERNEL_BUILDERS[kernel](kernel_system(n).runs)
    points = _sweep_points(system)

    total = benchmark(_knows_sweep, system, points)
    assert total == _naive_knows_sweep(system, points)


@pytest.mark.parametrize("kernel", sorted(KERNEL_BUILDERS))
@pytest.mark.parametrize("n", KERNEL_NS)
def test_bench_kernel_ck_fixpoint(benchmark, n, kernel):
    """The C_G fixpoint over the full group (warm class bits / arena)."""
    system = KERNEL_BUILDERS[kernel](kernel_system(n).runs)
    checker = GroupChecker(ModelChecker(system))
    group = system.processes
    phi = Crashed(system.processes[-1])
    checker.common_knowledge_points(group, phi)  # warm class bits + phi set

    points = benchmark(checker.common_knowledge_points, group, phi)
    assert isinstance(points, set)


def test_bench_arena_encode(benchmark):
    """Flattening the n=20 run batch into a columnar arena (warm columns)."""
    from repro.columnar import encode_runs

    runs = kernel_system(20).runs
    arena = benchmark(encode_runs, runs)
    assert arena.n_runs == len(runs)


def _best_of(fn, *args, repeat=3):
    best = float("inf")
    for _ in range(repeat):
        start = time.perf_counter()
        fn(*args)
        best = min(best, time.perf_counter() - start)
    return best


def _best_of_pair(thunk_a, thunk_b, repeat=5):
    """Best-of timing for two thunks, rounds interleaved a,b,a,b,...

    Ratios of the two results feed regression gates; interleaving means
    an ambient load spike inflates both sides instead of silently
    skewing whichever one it happened to land on.
    """
    best_a = best_b = float("inf")
    for _ in range(repeat):
        start = time.perf_counter()
        thunk_a()
        best_a = min(best_a, time.perf_counter() - start)
        start = time.perf_counter()
        thunk_b()
        best_b = min(best_b, time.perf_counter() - start)
    return best_a, best_b


def test_kernel_baseline_json():
    """Measure the kernel family (class vs columnar vs naive), the arena
    transfer microbenchmark, and write ``BENCH_kernel.json``.

    The speedup gates -- columnar >= 5x class on index build and >= 3x
    on the C_G fixpoint at n=20, transfer header <= 10% of the pickled
    run batch -- are the issue's acceptance criteria; under
    REPRO_BENCH_SMOKE=1 only the correctness assertions are enforced,
    never the timing ratios.
    """
    import pickle

    from repro.columnar import encode_runs, receive_runs, ship_runs
    from repro.columnar.transfer import header_bytes

    results = {}
    for n in KERNEL_NS:
        runs = kernel_system(n).runs

        class_index_s, columnar_index_s = _best_of_pair(
            lambda: build_class_kernel(runs),
            lambda: build_columnar_kernel(runs),
        )

        cls = build_class_kernel(runs)
        col = build_columnar_kernel(runs)
        points = _sweep_points(cls)
        class_total = _knows_sweep(cls, points)
        columnar_total = _knows_sweep(col, points)
        assert columnar_total == class_total
        class_sweep_s, columnar_sweep_s = _best_of_pair(
            lambda: _knows_sweep(cls, points),
            lambda: _knows_sweep(col, points),
        )

        group = cls.processes
        phi = Crashed(cls.processes[-1])
        checker_cls = GroupChecker(ModelChecker(cls))
        checker_col = GroupChecker(ModelChecker(col))
        class_ck = checker_cls.common_knowledge_points(group, phi)
        columnar_ck = checker_col.common_knowledge_points(group, phi)
        assert columnar_ck == class_ck
        class_ck_s, columnar_ck_s = _best_of_pair(
            lambda: checker_cls.common_knowledge_points(group, phi),
            lambda: checker_col.common_knowledge_points(group, phi),
        )

        entry = {
            "runs": len(runs),
            "points": cls.point_count,
            "classes": sum(len(cls.classes(p)) for p in cls.processes),
            "class_index_build_s": class_index_s,
            "class_knows_sweep_s": class_sweep_s,
            "class_ck_fixpoint_s": class_ck_s,
            "columnar_index_build_s": columnar_index_s,
            "columnar_knows_sweep_s": columnar_sweep_s,
            "columnar_ck_fixpoint_s": columnar_ck_s,
            "index_speedup_vs_class": (
                class_index_s / columnar_index_s if columnar_index_s else float("inf")
            ),
            "knows_speedup_vs_class": (
                class_sweep_s / columnar_sweep_s if columnar_sweep_s else float("inf")
            ),
            "ck_speedup_vs_class": (
                class_ck_s / columnar_ck_s if columnar_ck_s else float("inf")
            ),
        }

        if n <= 10:  # the naive path is quadratic; skip it at n=20
            naive_total = _naive_knows_sweep(cls, points)
            assert class_total == naive_total
            naive_sweep_s = _best_of(_naive_knows_sweep, cls, points, repeat=1)

            naive_checker = ModelChecker(System(runs, kernel="class"))
            naive_ck = naive_common_knowledge_points(naive_checker, group, phi)
            assert class_ck == naive_ck
            naive_ck_s = _best_of(
                naive_common_knowledge_points, naive_checker, group, phi, repeat=1
            )

            entry["naive_knows_sweep_s"] = naive_sweep_s
            entry["naive_ck_fixpoint_s"] = naive_ck_s
            entry["knows_speedup"] = (
                naive_sweep_s / columnar_sweep_s if columnar_sweep_s else float("inf")
            )
            entry["ck_speedup"] = (
                naive_ck_s / columnar_ck_s if columnar_ck_s else float("inf")
            )

        results[f"n={n}"] = entry

    # -- arena transfer microbenchmark (the pool handoff path) ---------
    runs20 = kernel_system(KERNEL_NS[-1]).runs
    encode_s = _best_of(encode_runs, runs20)
    arena = encode_runs(runs20)
    pickled_bytes = len(pickle.dumps(runs20, protocol=pickle.HIGHEST_PROTOCOL))

    def ship_and_receive():
        received = receive_runs(ship_runs(runs20))
        assert received == runs20
        return received

    ship_receive_s = _best_of(ship_and_receive)
    shipped = ship_runs(runs20)
    used_shm = shipped.shm_name is not None
    hdr_bytes = header_bytes(shipped)
    receive_runs(shipped)  # release the block
    transfer = {
        "runs": len(runs20),
        "arena_buffer_bytes": arena.nbytes,
        "pickled_bytes": pickled_bytes,
        "header_bytes": hdr_bytes,
        "transfer_ratio": hdr_bytes / pickled_bytes,
        "encode_s": encode_s,
        "ship_receive_s": ship_receive_s,
        "shared_memory": used_shm,
    }

    baseline = {
        "benchmark": "epistemic-kernel",
        "created": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "python": platform.python_version(),
        "config": {
            "runs_per_n": "3*n",
            "duration": KERNEL_DURATION,
            "crash_prob": 0.4,
            "sweep_sample_runs": SWEEP_SAMPLE_RUNS,
            "timer": (
                "best of 5 interleaved class/columnar perf_counter runs "
                "(naive: 1), warm run objects"
            ),
        },
        "results": results,
        "transfer": transfer,
    }
    BENCH_KERNEL_JSON.write_text(json.dumps(baseline, indent=2) + "\n")

    if not SMOKE:
        at20 = results["n=20"]
        assert at20["index_speedup_vs_class"] >= 5.0, at20
        assert at20["ck_speedup_vs_class"] >= 3.0, at20
        at10 = results["n=10"]
        assert at10["knows_speedup"] >= 5.0, at10
        assert at10["ck_speedup"] >= 5.0, at10
        assert transfer["transfer_ratio"] <= 0.10, transfer


# -- explorer family ----------------------------------------------------------
#
# Bounded exhaustive enumeration (repro.explore) over the lossy NUDC
# context: the state-space walk is the inner loop of every soundness
# check.  Throughput is tracked as *effective* states/second: the size
# of the unreduced state space divided by the DPOR walk's wall time.
# The reduced and unreduced run sets are asserted equal each round --
# the benchmark re-proves the reduction-soundness property it measures.
#
# The trajectory is recorded at horizon 8, the regime the explorer is
# meant for (ROADMAP: n=6-8 at horizon 8-10).  The PR 3 fingerprint-POR
# explorer committed 41,866 states/s at n=4; the DPOR gate below
# requires >= 5x that.

EXPLORE_NS = (2, 3, 4)
EXPLORE_HORIZON = 8
EXPLORE_DEEP_N = 6  # completed n=6 horizon-8 enumeration (experiment X02)
BENCH_EXPLORE_JSON = REPO_ROOT / "BENCH_explore.json"
PR3_STATES_PER_S = 41_866.0


def explore_spec(n, **overrides):
    from repro.explore import ExploreSpec
    from repro.workloads.generators import single_action as one_action

    base = dict(
        processes=make_process_ids(n),
        protocol=uniform_protocol(NUDCProcess),
        horizon=EXPLORE_HORIZON,
        max_failures=1,
        crash_ticks=(1, 3, 5),
        workload=one_action("p1", tick=1),
        lossy=True,
        max_consecutive_drops=1,
    )
    base.update(overrides)
    return ExploreSpec(**base)


def _run_key(run):
    """Value identity for a run, ignoring bookkeeping metadata."""
    return tuple(sorted((p, run.timeline(p)) for p in run.processes))


def _run_keys(report):
    return {_run_key(run) for run in report.runs}


@pytest.mark.parametrize("n", EXPLORE_NS)
def test_bench_explore_exhaustive(benchmark, n):
    """Full enumeration of the lossy NUDC context under DPOR."""
    from repro.explore import explore

    spec = explore_spec(n)
    report = benchmark(explore, spec, cache=None)
    assert report.complete
    assert report.stats.runs_unique > 0
    assert report.stats.reduction == "dpor"


def test_bench_explore_reduction_off(benchmark):
    """The reduction-free baseline walk at n=3 (the soundness anchor)."""
    from repro.explore import explore

    spec = explore_spec(3, reduction="none")
    report = benchmark(explore, spec, cache=None)
    assert report.complete


def test_explore_baseline_json():
    """Measure explorer throughput for n in {2, 3, 4} plus the deep
    n=6 enumeration, re-assert run-set equality between the DPOR and
    reduction-free walks, and write ``BENCH_explore.json``.

    ``states_per_s`` is the effective coverage rate: states of the
    *unreduced* space divided by the DPOR walk's wall time.  The two
    walks provably cover the same run set (asserted per n), so this is
    the apples-to-apples successor of the PR 3 metric.
    """
    from repro.explore import explore

    results = {}
    for n in EXPLORE_NS:
        spec = explore_spec(n)
        reduced = explore(spec, cache=None)
        reduced_s = _best_of(lambda s=spec: explore(s, cache=None))
        baseline_spec = spec.with_(reduction="none")
        baseline = explore(baseline_spec, cache=None)
        baseline_s = _best_of(
            lambda s=baseline_spec: explore(s, cache=None), repeat=1
        )

        assert reduced.complete and baseline.complete
        assert _run_keys(reduced) == _run_keys(baseline)

        space_states = baseline.stats.states_expanded
        results[f"n={n}"] = {
            "executions": reduced.stats.executions,
            "states": reduced.stats.states_expanded,
            "runs": reduced.stats.runs_unique,
            "drops_elided": reduced.stats.drops_elided,
            "deliveries_collapsed": reduced.stats.deliveries_collapsed,
            "explore_s": reduced_s,
            "space_states": space_states,
            "states_per_s": (
                space_states / reduced_s if reduced_s else float("inf")
            ),
            "baseline_executions": baseline.stats.executions,
            "baseline_explore_s": baseline_s,
            "baseline_states_per_s": (
                space_states / baseline_s if baseline_s else float("inf")
            ),
            "effective_speedup": (
                baseline_s / reduced_s if reduced_s else float("inf")
            ),
        }

    # The deep entry: a completed n=6, horizon-8 enumeration.  The
    # unreduced walk is infeasible here -- which is the point -- so the
    # entry records the DPOR walk's own counters only.
    deep_spec = explore_spec(EXPLORE_DEEP_N)
    start = time.perf_counter()
    deep = explore(deep_spec, cache=None)
    deep_s = time.perf_counter() - start
    assert deep.complete
    results[f"n={EXPLORE_DEEP_N}"] = {
        "executions": deep.stats.executions,
        "states": deep.stats.states_expanded,
        "runs": deep.stats.runs_unique,
        "explore_s": deep_s,
        "complete": deep.complete,
        "deep": True,
    }

    payload = {
        "benchmark": "explore-enumeration",
        "created": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "python": platform.python_version(),
        "config": {
            "protocol": "NUDC",
            "reduction": "dpor",
            "horizon": EXPLORE_HORIZON,
            "max_failures": 1,
            "crash_ticks": [1, 3, 5],
            "channel": "fair-lossy, budget 1",
            "timer": "best of 3 perf_counter runs (baseline walk: 1)",
            "states_per_s": "unreduced space states / DPOR wall time",
        },
        "pr3_states_per_s": PR3_STATES_PER_S,
        "results": results,
    }
    BENCH_EXPLORE_JSON.write_text(json.dumps(payload, indent=2) + "\n")

    if not SMOKE:
        at4 = results["n=4"]
        assert at4["states_per_s"] >= 5.0 * PR3_STATES_PER_S, at4
        assert results[f"n={EXPLORE_DEEP_N}"]["runs"] > 0
