"""Bench e12_a4: Section 3's A4 discussion: the non-FIP counterexample vs protocol ensembles.

Regenerates the corresponding experiment row of DESIGN.md Section 4 and
prints the measured values alongside the timing.
"""

from repro.harness.experiments import run_e12

from conftest import bench_experiment


def test_bench_e12_a4(benchmark):
    bench_experiment(benchmark, run_e12)
