"""Bench e05_accuracy_equiv: Prop 3.4: weak accuracy = strong accuracy under A1 + A5_{n-1}.

Regenerates the corresponding experiment row of DESIGN.md Section 4 and
prints the measured values alongside the timing.
"""

from repro.harness.experiments import run_e05

from conftest import bench_experiment


def test_bench_e05_accuracy_equiv(benchmark):
    bench_experiment(benchmark, run_e05)
