"""Bench e02_udc_reliable: Prop 2.4: UDC over reliable channels without detectors (and its fair-lossy failure).

Regenerates the corresponding experiment row of DESIGN.md Section 4 and
prints the measured values alongside the timing.
"""

from repro.harness.experiments import run_e02

from conftest import bench_experiment


def test_bench_e02_udc_reliable(benchmark):
    bench_experiment(benchmark, run_e02)
