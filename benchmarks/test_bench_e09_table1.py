"""Bench e09_table1: Table 1: the full detector-requirements grid for UDC vs consensus.

Regenerates the corresponding experiment row of DESIGN.md Section 4 and
prints the measured values alongside the timing.
"""

from repro.harness.table1 import run_e09

from conftest import bench_experiment


def test_bench_e09_table1(benchmark):
    bench_experiment(benchmark, run_e09)
