"""Bench e08_simulate_tuseful: Thm 4.3: UDC systems simulate t-useful generalized detectors (transformation f').

Regenerates the corresponding experiment row of DESIGN.md Section 4 and
prints the measured values alongside the timing.
"""

from repro.harness.experiments import run_e08

from conftest import bench_experiment


def test_bench_e08_simulate_tuseful(benchmark):
    bench_experiment(benchmark, run_e08)
