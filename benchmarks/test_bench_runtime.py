"""Benchmarks for the parallel ensemble runtime.

The headline check: a ProcessPoolBackend with 4 workers beats the
SerialBackend by >= 2x on a 32-run ensemble -- and produces
field-for-field identical runs.  Equality is asserted unconditionally;
the speedup floor only applies where the hardware can deliver it (>= 4
CPUs), since a single-core box serializes the pool anyway, and is
skipped entirely under REPRO_BENCH_SMOKE=1 (CI's bench-smoke job, which
enforces only correctness assertions).
"""

import os
import time

from repro.core.protocols import GeneralizedFDUDCProcess
from repro.detectors.generalized import GeneralizedOracle
from repro.model.context import make_process_ids
from repro.runtime import (
    EnsembleSpec,
    ProcessPoolBackend,
    RunCache,
    SerialBackend,
    run_ensemble,
)
from repro.sim.process import uniform_protocol
from repro.workloads.generators import single_action

PROCS = make_process_ids(5)
WORKERS = 4


def sweep(seeds):
    """An E07-style t-useful sweep: A5_2 crash plans x seeds."""
    return EnsembleSpec.a5t(
        PROCS,
        uniform_protocol(GeneralizedFDUDCProcess, t=2),
        t=2,
        workload=single_action("p1", tick=1) + single_action("p3", tick=10, name="c0"),
        detector=GeneralizedOracle(2, padding=1),
        seeds=seeds,
    )


def test_bench_pool_vs_serial_speedup():
    """32-run ensemble: pool(4) must match serial; >=2x faster on >=4 CPUs."""
    spec = sweep(seeds=(0, 1))
    assert len(spec) >= 32, len(spec)

    t0 = time.perf_counter()
    serial = run_ensemble(spec, backend=SerialBackend(), cache=None)
    serial_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    pooled = run_ensemble(spec, backend=ProcessPoolBackend(max_workers=WORKERS), cache=None)
    pooled_s = time.perf_counter() - t0

    assert list(serial.runs) == list(pooled.runs)
    assert [m.seed for m in serial.metrics] == [m.seed for m in pooled.metrics]

    speedup = serial_s / pooled_s if pooled_s else float("inf")
    print(
        f"\n{len(spec)} runs: serial {serial_s:.2f}s, "
        f"pool({WORKERS}) {pooled_s:.2f}s, speedup x{speedup:.2f} "
        f"({os.cpu_count()} CPUs)"
    )
    if os.environ.get("REPRO_BENCH_SMOKE") != "1" and (os.cpu_count() or 1) >= WORKERS:
        assert speedup >= 2.0, (
            f"expected >=2x speedup with {WORKERS} workers on "
            f"{os.cpu_count()} CPUs, got x{speedup:.2f}"
        )


def test_bench_cache_hit_rate(benchmark):
    """Warm-cache replay of a 32-run ensemble costs ~no execution time."""
    spec = sweep(seeds=(0, 1))
    cache = RunCache()
    run_ensemble(spec, backend=SerialBackend(), cache=cache)  # prime

    report = benchmark(lambda: run_ensemble(spec, backend=SerialBackend(), cache=cache))
    assert report.cache_hits == len(spec)
    assert report.executed == 0


def test_bench_serial_ensemble(benchmark):
    """Baseline: the serial backend on an 18-run ensemble."""
    spec = sweep(seeds=(0,))
    report = benchmark.pedantic(
        lambda: run_ensemble(spec, backend=SerialBackend(), cache=None),
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    assert len(report) == len(spec)
