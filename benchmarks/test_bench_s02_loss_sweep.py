"""Bench S02 (supplementary figure): coordination latency vs message loss.

Sweeps the fair-lossy channel's drop probability and reports the ticks
until the LAST correct process performs the action (completion latency)
for Prop 3.1's protocol.  Expected shape: monotone-ish growth with the
drop rate, with liveness preserved across the whole sweep thanks to the
R5 fairness budget -- the executable content of the paper's fairness
assumption.
"""

from repro.core.protocols import StrongFDUDCProcess
from repro.detectors.standard import PerfectOracle
from repro.harness.stats import SeriesPoint, completion_latency, render_series
from repro.model.context import make_process_ids
from repro.sim.executor import ExecutionConfig, Executor
from repro.sim.failures import CrashPlan
from repro.sim.network import ChannelConfig
from repro.sim.process import uniform_protocol
from repro.workloads.generators import single_action

PROCS = make_process_ids(4)
DROP_RATES = (0.0, 0.2, 0.4, 0.6, 0.8)
SEEDS = tuple(range(6))
ACTION = ("p1", "a0")


def latency_at(drop_prob: float) -> SeriesPoint:
    samples = []
    for seed in SEEDS:
        config = ExecutionConfig(
            channel=ChannelConfig(drop_prob=drop_prob, max_consecutive_drops=4)
        )
        run = Executor(
            PROCS,
            uniform_protocol(StrongFDUDCProcess, resend_rounds=40),
            crash_plan=CrashPlan.of({"p3": 8}),
            workload=single_action("p1", tick=1),
            detector=PerfectOracle(),
            config=config,
            seed=seed,
        ).run()
        latency = completion_latency(run, ACTION)
        assert latency is not None, f"liveness lost at drop={drop_prob}, seed={seed}"
        samples.append(float(latency))
    return SeriesPoint.of(drop_prob, samples)


def test_bench_s02_loss_sweep(benchmark):
    points = benchmark.pedantic(
        lambda: [latency_at(d) for d in DROP_RATES],
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    print()
    print(
        render_series(
            "UDC completion latency vs drop probability (Prop 3.1, n=4, one crash)",
            "drop",
            "ticks",
            points,
        )
    )
    # Liveness held everywhere (asserted inside) and hostility costs:
    # the lossiest channel is slower than the lossless one.
    assert points[-1].mean > points[0].mean
