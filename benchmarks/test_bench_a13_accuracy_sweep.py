"""Bench a13_accuracy_sweep: Ablation: uniformity-violation rate vs detector error rate.

Regenerates the corresponding experiment row of DESIGN.md Section 4 and
prints the measured values alongside the timing.
"""

from repro.harness.experiments import run_a13

from conftest import bench_experiment


def test_bench_a13_accuracy_sweep(benchmark):
    bench_experiment(benchmark, run_a13)
