"""Bench e03_udc_strong: Prop 3.1: UDC with strong failure detectors over fair-lossy channels.

Regenerates the corresponding experiment row of DESIGN.md Section 4 and
prints the measured values alongside the timing.
"""

from repro.harness.experiments import run_e03

from conftest import bench_experiment


def test_bench_e03_udc_strong(benchmark):
    bench_experiment(benchmark, run_e03)
