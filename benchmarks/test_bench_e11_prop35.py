"""Bench e11_prop35: Prop 3.5: the epistemic precondition, model-checked over an ensemble.

Regenerates the corresponding experiment row of DESIGN.md Section 4 and
prints the measured values alongside the timing.
"""

from repro.harness.experiments import run_e11

from conftest import bench_experiment


def test_bench_e11_prop35(benchmark):
    bench_experiment(benchmark, run_e11)
