"""Bench S01 (supplementary figure): protocol message cost vs system size.

The paper reports no measurements; this series characterises the
implementation: messages per coordinated action for each UDC protocol
as n grows, under the default fair-lossy channel.  Expected shape:
linear-ish in n for the one-shot reliable protocol, a constant factor
higher for the retransmitting protocols, and atomic broadcast well
above all of them (it pays for consensus).
"""

from repro.core.atomic_broadcast import AtomicBroadcastProcess
from repro.core.protocols import (
    NUDCProcess,
    ReliableUDCProcess,
    StrongFDUDCProcess,
)
from repro.detectors.standard import EventuallyWeakOracle, StrongOracle
from repro.harness.stats import SeriesPoint, messages_per_action, render_series
from repro.model.context import ChannelSemantics, make_process_ids
from repro.sim.executor import ExecutionConfig, Executor
from repro.sim.failures import CrashPlan
from repro.sim.network import ChannelConfig
from repro.sim.process import uniform_protocol
from repro.workloads.generators import single_action

SIZES = (3, 4, 5, 6)
SEEDS = (0, 1, 2)

RELIABLE = ExecutionConfig(channel=ChannelConfig(semantics=ChannelSemantics.RELIABLE))
ABCAST = ExecutionConfig(max_ticks=4000)


def cost_series(factory_for, *, detector_for=lambda n: None, config=None):
    points = []
    for n in SIZES:
        procs = make_process_ids(n)
        samples = []
        for seed in SEEDS:
            run = Executor(
                procs,
                factory_for(n),
                crash_plan=CrashPlan.none(),
                workload=single_action("p1", tick=1),
                detector=detector_for(n),
                config=config,
                seed=seed,
            ).run()
            samples.append(messages_per_action(run))
        points.append(SeriesPoint.of(n, samples))
    return points


def test_bench_s01_cost_scaling(benchmark):
    def sweep():
        return {
            "nUDC (Prop 2.3)": cost_series(
                lambda n: uniform_protocol(NUDCProcess)
            ),
            "UDC reliable (Prop 2.4)": cost_series(
                lambda n: uniform_protocol(ReliableUDCProcess), config=RELIABLE
            ),
            "UDC strong-FD (Prop 3.1)": cost_series(
                lambda n: uniform_protocol(StrongFDUDCProcess),
                detector_for=lambda n: StrongOracle(),
            ),
            "atomic broadcast (ext)": cost_series(
                lambda n: uniform_protocol(AtomicBroadcastProcess),
                detector_for=lambda n: EventuallyWeakOracle(stabilization_tick=20),
                config=ABCAST,
            ),
        }

    series = benchmark.pedantic(sweep, rounds=1, iterations=1, warmup_rounds=0)
    print()
    for title, points in series.items():
        print(render_series(title, "n", "messages/action", points))
        print()

    # Shape assertions: reliable one-shot is the cheapest UDC; atomic
    # broadcast is the most expensive at every size.
    for i, n in enumerate(SIZES):
        reliable = series["UDC reliable (Prop 2.4)"][i].mean
        strong = series["UDC strong-FD (Prop 3.1)"][i].mean
        abcast = series["atomic broadcast (ext)"][i].mean
        assert reliable <= strong <= abcast
    # Costs grow with n for every protocol.
    for points in series.values():
        assert points[-1].mean > points[0].mean
