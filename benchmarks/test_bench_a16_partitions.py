"""Bench a16: transient partitions (ablation).

Regenerates the corresponding experiment row of DESIGN.md Section 4 and
prints the measured values alongside the timing.
"""

from repro.harness.experiments import run_a16

from conftest import bench_experiment


def test_bench_a16_partitions(benchmark):
    bench_experiment(benchmark, run_a16)
