"""Bench e13: knowledge gain and full-information transfer (footnote 5, A4).

Regenerates the corresponding experiment row of DESIGN.md Section 4 and
prints the measured values alongside the timing.
"""

from repro.harness.experiments import run_e13

from conftest import bench_experiment


def test_bench_e13_knowledge_gain(benchmark):
    bench_experiment(benchmark, run_e13)
