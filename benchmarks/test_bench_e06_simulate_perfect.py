"""Bench e06_simulate_perfect: Thm 3.6: UDC systems simulate perfect failure detectors (transformation f).

Regenerates the corresponding experiment row of DESIGN.md Section 4 and
prints the measured values alongside the timing.
"""

from repro.harness.experiments import run_e06

from conftest import bench_experiment


def test_bench_e06_simulate_perfect(benchmark):
    bench_experiment(benchmark, run_e06)
