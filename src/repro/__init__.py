"""repro: Uniform Distributed Coordination and failure detectors.

A from-scratch reproduction of Halpern & Ricciardi, "A Knowledge-
Theoretic Analysis of Uniform Distributed Coordination and Failure
Detectors" (PODC 1999; arXiv cs/0402012).

The package is organised bottom-up:

* :mod:`repro.model`     -- the paper's formal model: events, histories,
  runs (R1-R5), systems, contexts.
* :mod:`repro.sim`       -- a deterministic seeded simulator that
  executes joint protocols in a context and produces runs.
* :mod:`repro.detectors` -- failure-detector oracles (perfect / strong /
  weak / impermanent / eventually-weak / generalized (S, k) / ATD),
  property checkers, and the conversion theorems.
* :mod:`repro.knowledge` -- the epistemic-temporal logic of Section 2.3
  with an exact finite-system model checker.
* :mod:`repro.core`      -- the UDC protocols (Props 2.3, 2.4, 3.1, 4.1;
  Section 5), the DC1-DC3 checkers, the knowledge-based run
  transformations f and f' (Theorems 3.6, 4.3), and the Chandra-Toueg
  consensus baselines.
* :mod:`repro.workloads` -- action-initiation schedules.
* :mod:`repro.harness`   -- one executable experiment per claim of the
  paper, including the Table 1 grid (``python -m repro.harness``).

Quickstart::

    from repro import (
        Executor, CrashPlan, StrongFDUDCProcess, StrongOracle,
        make_process_ids, single_action, udc_holds, uniform_protocol,
    )

    processes = make_process_ids(5)
    run = Executor(
        processes,
        uniform_protocol(StrongFDUDCProcess),
        crash_plan=CrashPlan.of({"p3": 8}),
        workload=single_action("p1", tick=1),
        detector=StrongOracle(),
        seed=42,
    ).run()
    assert udc_holds(run)
"""

from repro.core.properties import nudc_holds, udc_holds
from repro.core.protocols import (
    AtdUDCProcess,
    GeneralizedFDUDCProcess,
    NUDCProcess,
    ReliableUDCProcess,
    StrongFDUDCProcess,
)
from repro.core.simulation_theorem import (
    simulate_generalized_detectors,
    simulate_perfect_detectors,
    transform_run_f,
    transform_run_f_prime,
)
from repro.detectors.generalized import GeneralizedOracle, TrivialSubsetOracle
from repro.detectors.standard import (
    EventuallyWeakOracle,
    PerfectOracle,
    StrongOracle,
    WeakOracle,
)
from repro.explore import (
    Explorer,
    ExploreSpec,
    ReductionConfig,
    ShrinkResult,
    UniformityMonitor,
    Violation,
    explore,
    shrink_violation,
)
from repro.explore import replay as replay_exploration
from repro.explore.reduction import ExploreStats
from repro.knowledge import Knows, ModelChecker
from repro.model.context import ChannelSemantics, Context, make_process_ids
from repro.model.run import Point, Run, validate_run
from repro.model.system import IncompleteSystemWarning, System
from repro.runtime import (
    EnsembleReport,
    EnsembleSpec,
    ExploreReport,
    ProcessPoolBackend,
    RunCache,
    RunSpec,
    SerialBackend,
    run_ensemble,
    run_spec,
)
from repro.sim.ensembles import a5t_ensemble, build_ensemble
from repro.sim.executor import ExecutionConfig, Executor, execute
from repro.sim.failures import CrashPlan
from repro.sim.process import ProtocolProcess, uniform_protocol
from repro.workloads.generators import action_id, single_action

__version__ = "1.0.0"

__all__ = [
    "AtdUDCProcess",
    "ChannelSemantics",
    "Context",
    "CrashPlan",
    "EnsembleReport",
    "EnsembleSpec",
    "EventuallyWeakOracle",
    "ExecutionConfig",
    "Executor",
    "ExploreReport",
    "Explorer",
    "ExploreSpec",
    "ExploreStats",
    "GeneralizedFDUDCProcess",
    "GeneralizedOracle",
    "IncompleteSystemWarning",
    "Knows",
    "ModelChecker",
    "NUDCProcess",
    "PerfectOracle",
    "Point",
    "ProcessPoolBackend",
    "ProtocolProcess",
    "ReductionConfig",
    "ReliableUDCProcess",
    "Run",
    "RunCache",
    "RunSpec",
    "SerialBackend",
    "ShrinkResult",
    "StrongFDUDCProcess",
    "StrongOracle",
    "System",
    "TrivialSubsetOracle",
    "UniformityMonitor",
    "Violation",
    "WeakOracle",
    "a5t_ensemble",
    "action_id",
    "build_ensemble",
    "execute",
    "explore",
    "replay_exploration",
    "run_ensemble",
    "run_spec",
    "make_process_ids",
    "nudc_holds",
    "shrink_violation",
    "simulate_generalized_detectors",
    "simulate_perfect_detectors",
    "single_action",
    "transform_run_f",
    "transform_run_f_prime",
    "udc_holds",
    "uniform_protocol",
    "validate_run",
]
