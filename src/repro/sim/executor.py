"""The deterministic seeded scheduler (protocol + context + adversary -> Run).

The executor realises the paper's model of Section 2.1 operationally:

* Global time is a tick counter.  Per tick, each live process appends at
  most one event to its history (condition R2).
* The adversary -- a seeded ``random.Random`` -- controls message drops
  (within the channel's R5 fairness budget), delivery delays and order,
  the per-tick scheduling order of processes, and crash timing (via the
  externally supplied :class:`CrashPlan`; A1 failure independence holds
  because the plan is fixed before execution and applied regardless of
  protocol behaviour).
* A failure-detector oracle may record ``suspect`` events in histories,
  per Section 2.2.

Per-tick priority for the single event slot of a live process:
pending protocol event (outbox) > due ``init`` from the workload >
due detector report > message delivery > ``on_tick`` retransmissions.

Termination: runs are driven to *quiescence* -- a configurable number of
consecutive ticks in which no event is appended anywhere, all outboxes
are empty, no message is in flight to a live process, the workload is
exhausted, every planned crash has happened, and no protocol reports
pending work.  The final cut of the returned run is then a fixpoint, so
evaluating temporal formulas with the final-cut-repeats-forever
convention is faithful (DESIGN.md, substitution 1).
"""

from __future__ import annotations

import random
import time
import warnings
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Callable, Iterable, Sequence

from repro.detectors.base import DetectorOracle, GroundTruthView, NoDetector
from repro.model.context import ChannelSemantics, Context
from repro.model.events import (
    ActionId,
    CrashEvent,
    DoEvent,
    Event,
    InitEvent,
    ProcessId,
    ReceiveEvent,
    SendEvent,
    SuspectEvent,
)
from repro.model.run import Run, validate_run
from repro.sim.failures import CrashPlan
from repro.sim.network import ChannelConfig, Envelope, make_channel
from repro.sim.process import ProcessEnv, ProtocolProcess

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.faults.plan import FaultInjector, FaultPlan
    from repro.runtime.spec import RunSpec

#: (tick, process, action) triples; see repro.workloads.
InitSchedule = Sequence[tuple[int, ProcessId, ActionId]]

ProtocolFactory = Callable[[ProcessId, ProcessEnv], ProtocolProcess]


@dataclass(frozen=True)
class ExecutionConfig:
    """Tunable parameters of one execution."""

    channel: ChannelConfig = field(default_factory=ChannelConfig)
    max_ticks: int = 5000
    quiescence_window: int = 15
    #: probability the adversary postpones a deliverable message one tick
    postpone_prob: float = 0.2
    #: postponement is only allowed while the envelope is younger than this
    max_postpone_age: int = 12
    #: probability a live process is activated on a given tick; the
    #: adversary models relative process speeds by skipping activations,
    #: bounded by ``max_consecutive_skips`` (scheduling fairness)
    activation_prob: float = 1.0
    max_consecutive_skips: int = 4
    validate: bool = True
    #: wall-clock budget in seconds for one execution; the executor
    #: raises :class:`RunDeadlineExceeded` mid-run when exceeded, and the
    #: backends post-check it so pre-run stalls are caught too.  None
    #: disables the check entirely (and costs nothing).
    deadline: float | None = None
    #: injected faults beyond the paper's model (repro.faults).  An empty
    #: or None plan is never wired in: runs stay bit-identical to the
    #: un-instrumented executor.
    fault_plan: "FaultPlan | None" = None

    def with_channel(self, **kwargs) -> "ExecutionConfig":
        """A copy of this config with channel parameters replaced."""
        return replace(self, channel=replace(self.channel, **kwargs))


class RunDeadlineExceeded(RuntimeError):
    """An execution overran its ``ExecutionConfig.deadline``.

    Raised cooperatively from the tick loop (and post-hoc by the
    backends when a run stalls before the loop starts).  The hardened
    backends convert it into a structured ``FailedRun`` of kind
    ``"deadline"`` instead of aborting the batch.
    """


class Executor:
    """Executes one run of a joint protocol under one adversary seed."""

    def __init__(
        self,
        processes: Iterable[ProcessId],
        protocol_factory: ProtocolFactory,
        *,
        crash_plan: CrashPlan = CrashPlan.none(),
        workload: InitSchedule = (),
        detector: DetectorOracle | None = None,
        config: ExecutionConfig | None = None,
        seed: int = 0,
        context: Context | None = None,
    ) -> None:
        self.processes = tuple(processes)
        if not self.processes:
            raise ValueError("need at least one process")
        unknown = crash_plan.faulty - set(self.processes)
        if unknown:
            raise ValueError(f"crash plan names unknown processes {sorted(unknown)}")
        self.config = config or ExecutionConfig()
        self.rng = random.Random(seed)
        self.seed = seed
        self.crash_plan = crash_plan
        self.context = context

        # Fault injection (repro.faults): an empty/None plan is never
        # wired in at all, keeping un-faulted runs bit-identical.
        plan = self.config.fault_plan
        self._injector: "FaultInjector | None" = None
        if plan is not None and not plan.is_empty:
            self._injector = plan.injector(seed)

        base_detector = detector or NoDetector()
        if (
            self._injector is not None
            and plan is not None
            and plan.detector is not None
            and plan.detector.active
        ):
            from repro.faults.detector import FaultyDetectorOracle

            base_detector = FaultyDetectorOracle(
                base_detector, plan.detector, injector=self._injector
            )
        self.detector = base_detector.fresh()

        self.channel = make_channel(self.config.channel, self.rng)
        if self._injector is not None and self._injector.channel_faults_active:
            from repro.faults.channel import FaultyChannel

            self.channel = FaultyChannel(self.channel, self._injector)
        self.envs = {p: ProcessEnv(p, self.processes) for p in self.processes}
        self.protocols = {
            p: protocol_factory(p, self.envs[p]) for p in self.processes
        }
        self._actual_crash_ticks: dict[ProcessId, int] = {}
        self.truth = GroundTruthView(
            self.processes, crash_plan.faulty, self._actual_crash_ticks
        )
        self._timelines: dict[ProcessId, list[tuple[int, Event]]] = {
            p: [] for p in self.processes
        }
        self._crashed: set[ProcessId] = set()
        # tick -> processes whose planned crash lands on that tick (ticks
        # start at 1, so a plan's tick 0 lands on the first tick).
        by_tick: dict[int, list[ProcessId]] = {}
        for pid in self.processes:
            planned = crash_plan.crash_tick(pid)
            if planned is not None:
                by_tick.setdefault(max(planned, 1), []).append(pid)
        self._crash_index: dict[int, tuple[ProcessId, ...]] = {
            t: tuple(pids) for t, pids in by_tick.items()
        }
        self._last_crash_tick = max(self._crash_index, default=0)
        self._skip_streak: dict[ProcessId, int] = {p: 0 for p in self.processes}
        # Per-process queues of pending inits, in schedule order.
        self._pending_inits: dict[ProcessId, list[tuple[int, ActionId]]] = {
            p: [] for p in self.processes
        }
        for tick, pid, action in sorted(workload):
            if pid not in self._pending_inits:
                raise ValueError(f"workload names unknown process {pid!r}")
            self._pending_inits[pid].append((tick, action))

    @classmethod
    def from_spec(cls, spec: "RunSpec") -> "Executor":
        """Build an executor from a declarative :class:`repro.runtime.RunSpec`.

        This is the canonical constructor; the kwargs form exists for
        incremental construction and for the legacy call sites.
        """
        return cls(
            spec.processes,
            spec.protocol,
            crash_plan=spec.crash_plan,
            workload=spec.workload,
            detector=spec.detector,
            config=spec.config,
            seed=spec.seed,
            context=spec.context,
        )

    # -- helpers -------------------------------------------------------------

    def _live(self) -> list[ProcessId]:
        return [p for p in self.processes if p not in self._crashed]

    def _append(self, pid: ProcessId, tick: int, event: Event) -> None:
        self._timelines[pid].append((tick, event))

    def _due_init(self, pid: ProcessId, tick: int) -> ActionId | None:
        queue = self._pending_inits[pid]
        if queue and queue[0][0] <= tick:
            return queue.pop(0)[1]
        return None

    def _pick_delivery(self, pid: ProcessId, tick: int) -> Envelope | None:
        ready = self.channel.deliverable(pid, tick)
        if not ready:
            return None
        envelope = self.rng.choice(ready)
        age = tick - envelope.sent_at
        if (
            age <= self.config.max_postpone_age
            and self.rng.random() < self.config.postpone_prob
        ):
            return None
        self.channel.consume(envelope)
        return envelope

    def _workload_exhausted(self) -> bool:
        return all(
            not queue or pid in self._crashed
            for pid, queue in self._pending_inits.items()
        )

    def _crashes_done(self, tick: int) -> bool:
        """Every planned crash has landed at or before ``tick``."""
        return tick >= self._last_crash_tick

    # -- main loop ----------------------------------------------------------------

    def run(self) -> Run:
        """Execute to quiescence (or the tick cap) and return the run."""
        for pid in self.processes:
            self.protocols[pid].on_start()

        tick = 1  # r(0) is the empty cut (R1); the first events land at time 1
        quiet_streak = 0
        cfg = self.config
        deadline = cfg.deadline
        started_at = time.perf_counter() if deadline is not None else 0.0
        while tick < cfg.max_ticks:
            if (
                deadline is not None
                and time.perf_counter() - started_at > deadline
            ):
                raise RunDeadlineExceeded(
                    f"run (seed={self.seed}) exceeded its {deadline:.3f}s "
                    f"deadline at tick {tick}"
                )
            appended_this_tick = False

            # 1. planned crashes land first; a crash occupies the tick.
            for pid in self._crash_index.get(tick, ()):
                self._append(pid, tick, CrashEvent(pid))
                self._crashed.add(pid)
                self._actual_crash_ticks[pid] = tick
                self.envs[pid].outbox.clear()
                self.channel.discard_for(pid)
                appended_this_tick = True

            # 2. live processes take their steps in adversary order; the
            # adversary may skip a process (model of relative speeds),
            # bounded by the scheduling-fairness budget.
            order = self._live()
            self.rng.shuffle(order)
            for pid in order:
                if self._injector is not None and self._injector.stalled(pid, tick):
                    continue  # injected stall: no step, no rng consumption
                if (
                    cfg.activation_prob < 1.0
                    and self._skip_streak[pid] < cfg.max_consecutive_skips
                    and self.rng.random() >= cfg.activation_prob
                ):
                    self._skip_streak[pid] += 1
                    continue
                self._skip_streak[pid] = 0
                env = self.envs[pid]
                env.now = tick
                event = self._step_event(pid, tick)
                if event is None:
                    continue
                appended_this_tick = True
                self._append(pid, tick, event)
                self._dispatch(pid, event, tick)

            # 3. quiescence detection.
            quiet = (
                not appended_this_tick
                and all(not self.envs[p].outbox for p in self._live())
                and self.channel.in_flight_to(self._live()) == 0
                and self._workload_exhausted()
                and self._crashes_done(tick)
                and all(
                    not self.protocols[p].wants_to_act() for p in self._live()
                )
            )
            quiet_streak = quiet_streak + 1 if quiet else 0
            if quiet_streak >= cfg.quiescence_window:
                break
            tick += 1

        meta = {
            "seed": self.seed,
            "crash_plan": self.crash_plan,
            "detector": self.detector.name,
            "channel": cfg.channel.semantics.value,
            "dropped": self.channel.dropped_count,
            "delivered": self.channel.delivered_count,
            "hit_tick_cap": tick >= cfg.max_ticks,
        }
        channel_faults = (
            self._injector is not None and self._injector.channel_faults_active
        )
        if self._injector is not None:
            meta["faults"] = self._injector.summary()
        run = Run(
            self.processes,
            self._timelines,
            duration=tick,
            meta=meta,
        )
        if (
            cfg.validate
            and not channel_faults  # duplicates break R3, extra drops break R5
            and cfg.channel.semantics is not ChannelSemantics.UNFAIR
        ):
            # The finite R5 checker flags persistent unreceived sends; a
            # sender may legitimately stop just under the channel's
            # drop budget, so the threshold must exceed it.  Beyond the
            # budget a copy is force-accepted into flight, and the
            # quiescence condition guarantees its delivery.
            validate_run(
                run,
                r5_send_threshold=cfg.channel.max_consecutive_drops + 2,
            )
        return run

    def _step_event(self, pid: ProcessId, tick: int) -> Event | None:
        """Choose the one event ``pid`` appends this tick, per the priority order.

        Detector reports come first: the oracle emits autonomously
        (Section 2.2's "automatically emits a suspicion") and a process
        cannot starve its own detector with a long burst of sends.
        """
        env = self.envs[pid]
        report = self.detector.poll(pid, tick, self.truth, self.rng)
        if report is not None:
            return SuspectEvent(pid, report)

        if env.outbox:
            return env.outbox.popleft()

        action = self._due_init(pid, tick)
        if action is not None:
            return InitEvent(pid, action)

        envelope = self._pick_delivery(pid, tick)
        if envelope is not None:
            return ReceiveEvent(pid, envelope.sender, envelope.message)

        self.protocols[pid].on_tick()
        if env.outbox:
            return env.outbox.popleft()
        return None

    def _dispatch(self, pid: ProcessId, event: Event, tick: int) -> None:
        """Execute the side effects of an appended event."""
        protocol = self.protocols[pid]
        if isinstance(event, SendEvent):
            self.channel.submit(event.sender, event.receiver, event.message, tick)
        elif isinstance(event, ReceiveEvent):
            protocol.on_receive(event.sender, event.message)
        elif isinstance(event, SuspectEvent):
            protocol.on_suspect(event.report)
        elif isinstance(event, InitEvent):
            protocol.on_init(event.action)
        elif isinstance(event, DoEvent):
            pass  # the do event has no further side effects
        else:  # pragma: no cover - crash events never reach here
            raise AssertionError(f"unexpected event {event!r}")


def execute(
    spec_or_processes,
    protocol_factory: ProtocolFactory | None = None,
    **kwargs,
) -> Run:
    """One-shot execution: the canonical shape is ``execute(RunSpec(...))``.

    The legacy kwargs shape ``execute(processes, protocol_factory, ...)``
    still works but duplicates :class:`Executor`'s parameter plumbing and
    is deprecated; build a :class:`repro.runtime.RunSpec` instead.
    """
    from repro.runtime.spec import RunSpec  # local: avoids an import cycle

    if isinstance(spec_or_processes, RunSpec):
        if protocol_factory is not None or kwargs:
            raise TypeError(
                "execute(spec) takes no further arguments; put them in the spec"
            )
        return Executor.from_spec(spec_or_processes).run()
    warnings.warn(
        "execute(processes, protocol_factory, **kwargs) is deprecated; "
        "pass a repro.runtime.RunSpec instead",
        DeprecationWarning,
        stacklevel=2,
    )
    return Executor(spec_or_processes, protocol_factory, **kwargs).run()
