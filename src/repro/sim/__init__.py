"""Discrete-event simulation substrate.

This package executes joint protocols in a context (Section 2.1) and
produces :class:`repro.model.run.Run` objects:

* :mod:`repro.sim.network`  -- channels: reliable, fair-lossy (R5 via a
  fairness budget), and deliberately unfair (for the A14 ablation).
* :mod:`repro.sim.failures` -- crash plans and samplers (A1 / A5_t).
* :mod:`repro.sim.process`  -- the protocol interface and environment.
* :mod:`repro.sim.executor` -- the deterministic seeded scheduler that
  turns (protocol, context, adversary seed) into a run.
* :mod:`repro.sim.ensembles` -- helpers that build Systems (sets of
  runs) by sweeping seeds and crash plans.
"""

from repro.sim.executor import ExecutionConfig, Executor, execute
from repro.sim.failures import CrashPlan, all_crash_plans, sample_crash_plan
from repro.sim.network import (
    Envelope,
    FairLossyChannel,
    NetworkChannel,
    ReliableChannel,
    UnfairChannel,
    make_channel,
)
from repro.sim.process import ProcessEnv, ProtocolProcess

__all__ = [
    "CrashPlan",
    "Envelope",
    "ExecutionConfig",
    "Executor",
    "FairLossyChannel",
    "NetworkChannel",
    "ProcessEnv",
    "ProtocolProcess",
    "ReliableChannel",
    "UnfairChannel",
    "all_crash_plans",
    "execute",
    "make_channel",
    "sample_crash_plan",
]
