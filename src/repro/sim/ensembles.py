"""Ensemble builders: Systems = {runs of one protocol under many adversaries}.

Knowledge in the paper is defined over a *system* -- the set of all runs
a protocol generates in a context.  Our finite stand-in is an ensemble:
the same joint protocol executed under a sweep of adversary seeds and
crash plans (DESIGN.md substitution 3).  To make the theorems'
hypotheses hold of the ensemble:

* A1/A5_t: include, for every subset S with |S| <= t, runs in which
  exactly S fails (``all_crash_plans``), at varied crash times;
* "infinitely many initiations": workloads continue past every crash
  (:func:`repro.workloads.generators.post_crash_workload`).
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

from repro.detectors.base import DetectorOracle
from repro.model.context import Context
from repro.model.events import ProcessId
from repro.model.run import Run
from repro.model.system import System
from repro.sim.executor import ExecutionConfig, Executor, InitSchedule, ProtocolFactory
from repro.sim.failures import CrashPlan, all_crash_plans

WorkloadFor = Callable[[CrashPlan], InitSchedule]


def build_ensemble(
    processes: Sequence[ProcessId],
    protocol_factory: ProtocolFactory,
    *,
    crash_plans: Iterable[CrashPlan],
    workload: InitSchedule | WorkloadFor,
    detector: DetectorOracle | None = None,
    seeds: Sequence[int] = (0, 1),
    config: ExecutionConfig | None = None,
    context: Context | None = None,
) -> System:
    """Run the protocol for every (crash plan, seed) pair and collect a System."""
    runs: list[Run] = []
    for plan in crash_plans:
        schedule = workload(plan) if callable(workload) else workload
        for seed in seeds:
            executor = Executor(
                processes,
                protocol_factory,
                crash_plan=plan,
                workload=schedule,
                detector=detector,
                config=config,
                seed=seed,
                context=context,
            )
            runs.append(executor.run())
    return System(runs, context=context)


def a5t_ensemble(
    processes: Sequence[ProcessId],
    protocol_factory: ProtocolFactory,
    *,
    t: int,
    workload: InitSchedule | WorkloadFor,
    detector: DetectorOracle | None = None,
    seeds: Sequence[int] = (0, 1),
    crash_tick: int = 10,
    config: ExecutionConfig | None = None,
    context: Context | None = None,
) -> System:
    """An ensemble covering every failure pattern of size <= t (A5_t)."""
    plans = list(
        all_crash_plans(processes, max_failures=t, crash_tick=crash_tick)
    )
    return build_ensemble(
        processes,
        protocol_factory,
        crash_plans=plans,
        workload=workload,
        detector=detector,
        seeds=seeds,
        config=config,
        context=context,
    )
