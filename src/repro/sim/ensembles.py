"""Ensemble builders: Systems = {runs of one protocol under many adversaries}.

Knowledge in the paper is defined over a *system* -- the set of all runs
a protocol generates in a context.  Our finite stand-in is an ensemble:
the same joint protocol executed under a sweep of adversary seeds and
crash plans (DESIGN.md substitution 3).  To make the theorems'
hypotheses hold of the ensemble:

* A1/A5_t: include, for every subset S with |S| <= t, runs in which
  exactly S fails (``all_crash_plans``), at varied crash times;
* "infinitely many initiations": workloads continue past every crash
  (:func:`repro.workloads.generators.post_crash_workload`).

.. deprecated::
    These builders are thin compatibility wrappers over the declarative
    runtime API -- :class:`repro.runtime.EnsembleSpec` plus
    :func:`repro.runtime.run_ensemble` -- which adds backend selection
    (parallel execution), run caching, and per-run metrics.  New code
    should use the runtime API directly; ``build_ensemble(...)`` is
    exactly ``run_ensemble(EnsembleSpec(...), backend=SerialBackend(),
    cache=None).system()``.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

from repro.detectors.base import DetectorOracle
from repro.model.context import Context
from repro.model.events import ProcessId
from repro.model.system import System
from repro.sim.executor import ExecutionConfig, InitSchedule, ProtocolFactory
from repro.sim.failures import CrashPlan

WorkloadFor = Callable[[CrashPlan], InitSchedule]


def build_ensemble(
    processes: Sequence[ProcessId],
    protocol_factory: ProtocolFactory,
    *,
    crash_plans: Iterable[CrashPlan],
    workload: InitSchedule | WorkloadFor,
    detector: DetectorOracle | None = None,
    seeds: Sequence[int] = (0, 1),
    config: ExecutionConfig | None = None,
    context: Context | None = None,
) -> System:
    """Run the protocol for every (crash plan, seed) pair and collect a System.

    Compatibility wrapper; see the module docstring for the runtime API.
    """
    from repro.runtime import EnsembleSpec, SerialBackend, run_ensemble

    spec = EnsembleSpec(
        processes=tuple(processes),
        protocol=protocol_factory,
        crash_plans=tuple(crash_plans),
        workload=workload,
        detector=detector,
        seeds=tuple(seeds),
        config=config,
        context=context,
    )
    return run_ensemble(spec, backend=SerialBackend(), cache=None).system()


def a5t_ensemble(
    processes: Sequence[ProcessId],
    protocol_factory: ProtocolFactory,
    *,
    t: int,
    workload: InitSchedule | WorkloadFor,
    detector: DetectorOracle | None = None,
    seeds: Sequence[int] = (0, 1),
    crash_tick: int = 10,
    config: ExecutionConfig | None = None,
    context: Context | None = None,
) -> System:
    """An ensemble covering every failure pattern of size <= t (A5_t).

    Compatibility wrapper over :meth:`repro.runtime.EnsembleSpec.a5t`.
    """
    from repro.runtime import EnsembleSpec, SerialBackend, run_ensemble

    spec = EnsembleSpec.a5t(
        processes,
        protocol_factory,
        t=t,
        workload=workload,
        detector=detector,
        seeds=seeds,
        crash_tick=crash_tick,
        config=config,
        context=context,
    )
    return run_ensemble(spec, backend=SerialBackend(), cache=None).system()
