"""The protocol interface (Section 2.1: protocols as functions of history).

The paper defines a protocol for p as a function from finite histories to
actions.  The executable form here is event-driven: the executor calls
the ``on_*`` hooks as events are appended to the process's history, and
the hooks react by enqueuing new protocol events (sends, do's) through
the :class:`ProcessEnv`.  The enqueued events are appended to the history
one per tick (condition R2), so the realized run still appends at most
one event per process per time step.

A protocol instance may keep internal state, but that state must be a
function of the local history -- the hooks receive exactly the
information that is in the history, in history order, so this holds by
construction as long as implementations do not consult out-of-band
sources (they are given none).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.model.events import (
    ActionId,
    DoEvent,
    Event,
    Message,
    ProcessId,
    SendEvent,
    Suspicion,
)

class ProcessEnv:
    """What a protocol may do and observe: its local interface.

    Instances are created by the executor, one per process.  ``send`` and
    ``perform`` enqueue events on the process's outbox; the scheduler
    appends them to the history on subsequent ticks.
    """

    def __init__(self, pid: ProcessId, processes: tuple[ProcessId, ...]) -> None:
        self.pid = pid
        self.processes = processes
        self.outbox: deque[Event] = deque()
        self.now: int = 0
        self._performed: set[ActionId] = set()
        self._others = tuple(p for p in processes if p != pid)

    @property
    def others(self) -> tuple[ProcessId, ...]:
        return self._others

    def send(self, receiver: ProcessId, message: Message) -> None:
        """Enqueue ``send_p(receiver, message)``."""
        if receiver == self.pid:
            raise ValueError("processes do not send messages to themselves")
        if receiver not in self.processes:
            raise ValueError(f"unknown receiver {receiver!r}")
        self.outbox.append(SendEvent(self.pid, receiver, message))

    def broadcast(self, message: Message) -> None:
        """Enqueue a send to every other process."""
        for q in self.others:
            self.send(q, message)

    def perform(self, action: ActionId) -> None:
        """Enqueue ``do_p(action)``.  Idempotent: a second perform of the
        same action is ignored, matching the protocols in the paper which
        enter a UDC(alpha) state once."""
        if action in self._performed:
            return
        self._performed.add(action)
        self.outbox.append(DoEvent(self.pid, action))

    def has_performed(self, action: ActionId) -> bool:
        """Has ``perform(action)`` already been issued?"""
        return action in self._performed

    @property
    def outbox_size(self) -> int:
        return len(self.outbox)


class ProtocolProcess:
    """Base class for per-process protocol logic.

    Subclasses override the ``on_*`` hooks.  The executor guarantees:

    * ``on_start`` is called once before the first tick;
    * ``on_init(action)`` when an ``init`` event is appended;
    * ``on_receive(sender, message)`` when a ``recv`` event is appended;
    * ``on_suspect(report)`` when a failure-detector event is appended;
    * ``on_tick()`` on ticks where the process appends no event and has
      an empty outbox (the hook may enqueue retransmissions);
    * ``wants_to_act()`` is consulted by the quiescence detector: return
      True while the protocol still intends to enqueue events in future
      ``on_tick`` calls.  A protocol that never returns False can make a
      run non-terminating; bounded-retransmission variants (see
      :mod:`repro.core.protocols`) always eventually return False.
    """

    def __init__(self, pid: ProcessId, env: ProcessEnv) -> None:
        self.pid = pid
        self.env = env

    # -- lifecycle hooks ---------------------------------------------------

    def on_start(self) -> None:  # pragma: no cover - default no-op
        pass

    def on_init(self, action: ActionId) -> None:  # pragma: no cover
        pass

    def on_receive(self, sender: ProcessId, message: Message) -> None:  # pragma: no cover
        pass

    def on_suspect(self, report: Suspicion) -> None:  # pragma: no cover
        pass

    def on_tick(self) -> None:  # pragma: no cover - default no-op
        pass

    def wants_to_act(self) -> bool:
        return False


JointProtocolFactory = "Callable[[ProcessId, ProcessEnv], ProtocolProcess]"


@dataclass(frozen=True)
class UniformProtocol:
    """A picklable joint-protocol factory: every process runs the same class.

    Being a frozen dataclass (rather than a closure) makes factories
    picklable -- which :class:`repro.runtime.ProcessPoolBackend` needs to
    ship specs to worker processes -- and gives two factories built from
    the same arguments equal pickles, which keys the run cache.
    """

    cls: type
    kwargs: tuple[tuple[str, object], ...] = ()

    def __call__(self, pid: ProcessId, env: ProcessEnv) -> ProtocolProcess:
        return self.cls(pid, env, **dict(self.kwargs))


def uniform_protocol(cls: type, /, **kwargs: object) -> UniformProtocol:
    """A joint-protocol factory where every process runs ``cls(pid, env, **kwargs)``."""
    return UniformProtocol(cls, tuple(sorted(kwargs.items())))
