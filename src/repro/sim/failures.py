"""Crash plans: which processes fail, and when (A1, A5_t).

A :class:`CrashPlan` is the adversary's failure choice for one run.  The
samplers and enumerators here realise the paper's context conditions:

* A1 (failure independence): which processes crash, and when, is chosen
  independently of the protocol's behaviour -- the plan is fixed before
  execution and the executor applies it unconditionally.
* A5_t: for every S with |S| <= t there is a run where exactly S fails.
  :func:`all_crash_plans` enumerates one plan per such subset, which the
  ensemble builders use to generate systems satisfying A5_t.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from itertools import combinations
from typing import Iterable, Iterator, Mapping

from repro.model.events import ProcessId


@dataclass(frozen=True)
class CrashPlan:
    """The failure pattern of one run: process -> planned crash tick."""

    crashes: tuple[tuple[ProcessId, int], ...] = field(default=())

    def __post_init__(self) -> None:
        pids = [p for p, _ in self.crashes]
        if len(set(pids)) != len(pids):
            raise ValueError("a process can crash at most once")
        for _, tick in self.crashes:
            if tick < 0:
                raise ValueError("crash ticks must be non-negative")

    @classmethod
    def of(cls, crashes: Mapping[ProcessId, int]) -> "CrashPlan":
        return cls(tuple(sorted(crashes.items())))

    @classmethod
    def none(cls) -> "CrashPlan":
        return cls(())

    @property
    def faulty(self) -> frozenset[ProcessId]:
        return frozenset(p for p, _ in self.crashes)

    def crash_tick(self, process: ProcessId) -> int | None:
        """The planned crash tick, or None if the process stays correct."""
        for p, tick in self.crashes:
            if p == process:
                return tick
        return None

    def as_dict(self) -> dict[ProcessId, int]:
        """The plan as a mutable process -> tick mapping."""
        return dict(self.crashes)

    def __len__(self) -> int:
        return len(self.crashes)


def sample_crash_plan(
    rng: random.Random,
    processes: Iterable[ProcessId],
    *,
    max_failures: int | None = None,
    crash_prob: float = 0.3,
    horizon: int = 60,
) -> CrashPlan:
    """Sample a crash plan: each process fails with ``crash_prob``,
    truncated to ``max_failures`` (the context's t), with crash ticks
    uniform in [0, horizon].
    """
    procs = list(processes)
    bound = len(procs) if max_failures is None else max_failures
    victims = [p for p in procs if rng.random() < crash_prob]
    rng.shuffle(victims)
    victims = victims[:bound]
    return CrashPlan.of({p: rng.randint(0, horizon) for p in victims})


def all_crash_plans(
    processes: Iterable[ProcessId],
    *,
    max_failures: int,
    crash_tick: int = 10,
) -> Iterator[CrashPlan]:
    """One plan per subset S with |S| <= max_failures (A5_t coverage).

    All members of a subset crash at ``crash_tick``; the ensemble
    builders also add jittered variants so that crash times vary.
    """
    procs = tuple(processes)
    for size in range(max_failures + 1):
        for subset in combinations(procs, size):
            yield CrashPlan.of({p: crash_tick for p in subset})


def staggered_plan(
    processes: Iterable[ProcessId],
    faulty: Iterable[ProcessId],
    *,
    first_tick: int = 5,
    spacing: int = 7,
) -> CrashPlan:
    """A plan where the given processes crash one after another."""
    procs = set(processes)
    crashes = {}
    tick = first_tick
    for p in faulty:
        if p not in procs:
            raise ValueError(f"unknown process {p!r}")
        crashes[p] = tick
        tick += spacing
    return CrashPlan.of(crashes)
