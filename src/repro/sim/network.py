"""Network channels: message loss, delay, and the R5 fairness budget.

The paper assumes a completely connected network of channels that do not
corrupt messages but may lose them, subject to fairness R5: a message
sent infinitely often to a correct process is received infinitely often.

On a finite simulation we realise R5 as a *fairness budget*: the
adversary may drop at most ``max_consecutive_drops`` consecutive copies
of the same (sender, receiver, message) triple; the next copy must be
accepted for delivery.  In the limit this implies R5, and on finite runs
it yields the consequence every proof in the paper actually uses --
persistent retransmission to a live process succeeds (see DESIGN.md,
substitution 2).

Three channel classes:

* :class:`ReliableChannel`   -- never drops (Proposition 2.4 contexts).
* :class:`FairLossyChannel`  -- drops with probability ``drop_prob``,
  clamped by the fairness budget (the paper's default context).
* :class:`UnfairChannel`     -- may drop everything matching a predicate;
  violates R5 and exists only for the fairness ablation A14.
"""

from __future__ import annotations

import dataclasses
import itertools
import random
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Callable, Iterable

from repro.model.context import ChannelSemantics
from repro.model.events import Message, ProcessId

#: A channel key identifies "the same message" for fairness accounting.
ChannelKey = tuple[ProcessId, ProcessId, Message]


@dataclass(frozen=True, slots=True)
class Envelope:
    """A message copy in flight."""

    sender: ProcessId
    receiver: ProcessId
    message: Message
    sent_at: int
    deliver_at: int
    uid: int

    @property
    def key(self) -> ChannelKey:
        return (self.sender, self.receiver, self.message)


class NetworkChannel(ABC):
    """Common behaviour: delay assignment, in-flight tracking, delivery.

    Subclasses decide, per submitted copy, whether it is dropped.  All
    channels assign each accepted copy a delivery delay drawn uniformly
    from [min_delay, max_delay]; asynchrony beyond that bound is modelled
    by the adversary's freedom in *when* a deliverable envelope is
    actually consumed (the executor delivers at most one message per
    process per tick and may prefer others).
    """

    def __init__(
        self,
        rng: random.Random,
        *,
        min_delay: int = 1,
        max_delay: int = 4,
    ) -> None:
        if not 1 <= min_delay <= max_delay:
            raise ValueError("delays must satisfy 1 <= min_delay <= max_delay")
        self._rng = rng
        self._min_delay = min_delay
        self._max_delay = max_delay
        self._uid = itertools.count()
        self._in_flight: dict[ProcessId, list[Envelope]] = {}
        self.dropped_count = 0
        self.delivered_count = 0

    # -- subclass hook ------------------------------------------------------

    @abstractmethod
    def _should_drop(self, sender: ProcessId, receiver: ProcessId, message: Message) -> bool:
        """Decide the fate of one submitted copy."""

    # -- API used by the executor ---------------------------------------------

    def submit(self, sender: ProcessId, receiver: ProcessId, message: Message, tick: int) -> bool:
        """A send event occurred; the copy enters the channel or is lost.

        Returns True iff the copy was accepted into flight (used by the
        fault-injection wrapper to know whether there is a "last"
        envelope to delay or duplicate).
        """
        if self._should_drop(sender, receiver, message):
            self.dropped_count += 1
            return False
        delay = self._rng.randint(self._min_delay, self._max_delay)
        env = Envelope(
            sender=sender,
            receiver=receiver,
            message=message,
            sent_at=tick,
            deliver_at=tick + delay,
            uid=next(self._uid),
        )
        self._in_flight.setdefault(receiver, []).append(env)
        return True

    # -- fault-injection hooks (repro.faults.channel) -----------------------

    def delay_last(self, receiver: ProcessId, extra: int) -> None:
        """Push the most recently accepted envelope for ``receiver`` a
        further ``extra`` ticks into the future (delivery past the
        channel's delay bound -- only fault injection may do this)."""
        pending = self._in_flight.get(receiver)
        if not pending:
            raise ValueError(f"no envelope in flight to {receiver!r}")
        last = pending[-1]
        pending[-1] = dataclasses.replace(last, deliver_at=last.deliver_at + extra)

    def duplicate_last(self, receiver: ProcessId) -> None:
        """Inject a second copy of the most recently accepted envelope for
        ``receiver`` (same delivery time, fresh uid).  The duplicate has
        no matching second send event, so runs containing one are outside
        the R3 validator's model."""
        pending = self._in_flight.get(receiver)
        if not pending:
            raise ValueError(f"no envelope in flight to {receiver!r}")
        pending.append(dataclasses.replace(pending[-1], uid=next(self._uid)))

    def deliverable(self, receiver: ProcessId, tick: int) -> list[Envelope]:
        """Envelopes for ``receiver`` whose delay has elapsed, oldest first."""
        pending = self._in_flight.get(receiver, ())
        ready = [e for e in pending if e.deliver_at <= tick]
        ready.sort(key=lambda e: (e.deliver_at, e.uid))
        return ready

    def consume(self, envelope: Envelope) -> None:
        """Remove a delivered envelope from flight."""
        self._in_flight[envelope.receiver].remove(envelope)
        self.delivered_count += 1

    def discard_for(self, receiver: ProcessId) -> None:
        """Drop everything addressed to a crashed process."""
        self._in_flight.pop(receiver, None)

    def in_flight_to(self, receivers: Iterable[ProcessId]) -> int:
        """Number of undelivered envelopes addressed to these receivers."""
        return sum(len(self._in_flight.get(r, ())) for r in receivers)


class ReliableChannel(NetworkChannel):
    """Never loses a message (the context of Proposition 2.4)."""

    def _should_drop(
        self, sender: ProcessId, receiver: ProcessId, message: Message
    ) -> bool:
        return False


@dataclass(frozen=True)
class Partition:
    """A transient network partition: during [start, end) every message
    crossing the boundary between ``group`` and its complement is lost.

    Partitions are *finite*, so R5 survives: a persistently
    retransmitted message is delivered once the partition heals (the
    fairness budget resumes counting then).
    """

    start: int
    end: int
    group: frozenset[ProcessId]

    def __post_init__(self) -> None:
        if not 0 <= self.start < self.end:
            raise ValueError("a partition needs 0 <= start < end")
        if not isinstance(self.group, frozenset):
            object.__setattr__(self, "group", frozenset(self.group))

    def severs(self, sender: ProcessId, receiver: ProcessId, tick: int) -> bool:
        """Does this partition cut the (sender, receiver) link now?"""
        return (
            self.start <= tick < self.end
            and (sender in self.group) != (receiver in self.group)
        )


class FairLossyChannel(NetworkChannel):
    """Lossy channel with the R5 fairness budget.

    Each copy of (sender, receiver, message) is dropped with probability
    ``drop_prob``, except that after ``max_consecutive_drops`` back-to-
    back drops of the same key the next copy is always accepted.  A
    successful acceptance resets the key's budget.

    Optional ``partitions``: while a partition is active, cross-boundary
    copies are always dropped and do not count against the budget (the
    budget's forced acceptance resumes after healing, which preserves
    R5 because partitions are finite).
    """

    def __init__(
        self,
        rng: random.Random,
        *,
        drop_prob: float = 0.4,
        max_consecutive_drops: int = 3,
        min_delay: int = 1,
        max_delay: int = 4,
        partitions: tuple["Partition", ...] = (),
    ) -> None:
        super().__init__(rng, min_delay=min_delay, max_delay=max_delay)
        if not 0.0 <= drop_prob < 1.0:
            raise ValueError("drop_prob must be in [0, 1)")
        if max_consecutive_drops < 0:
            raise ValueError("max_consecutive_drops must be non-negative")
        self._drop_prob = drop_prob
        self._budget = max_consecutive_drops
        self._consecutive: dict[ChannelKey, int] = {}
        self._partitions = tuple(partitions)
        self._now = 0

    @property
    def max_consecutive_drops(self) -> int:
        return self._budget

    def submit(
        self,
        sender: ProcessId,
        receiver: ProcessId,
        message: Message,
        tick: int,
    ) -> bool:
        self._now = tick
        return super().submit(sender, receiver, message, tick)

    def _partitioned(self, sender: ProcessId, receiver: ProcessId) -> bool:
        return any(
            p.severs(sender, receiver, self._now) for p in self._partitions
        )

    def _should_drop(
        self, sender: ProcessId, receiver: ProcessId, message: Message
    ) -> bool:
        if self._partitioned(sender, receiver):
            return True  # outside the fairness budget; partitions are finite
        key = (sender, receiver, message)
        streak = self._consecutive.get(key, 0)
        if streak >= self._budget:
            self._consecutive[key] = 0
            return False
        if self._rng.random() < self._drop_prob:
            self._consecutive[key] = streak + 1
            return True
        self._consecutive[key] = 0
        return False


class UnfairChannel(NetworkChannel):
    """A channel that violates R5: drops every copy matching ``blackhole``.

    Used only by the fairness ablation (A14); runs generated under it are
    not systems in the paper's sense and the R5 validator will reject
    them when the blackhole swallowed a persistently retransmitted
    message.
    """

    def __init__(
        self,
        rng: random.Random,
        *,
        blackhole: Callable[[ProcessId, ProcessId, Message], bool],
        min_delay: int = 1,
        max_delay: int = 4,
    ) -> None:
        super().__init__(rng, min_delay=min_delay, max_delay=max_delay)
        self._blackhole = blackhole

    def _should_drop(
        self, sender: ProcessId, receiver: ProcessId, message: Message
    ) -> bool:
        return self._blackhole(sender, receiver, message)


@dataclass(frozen=True)
class ChannelConfig:
    """Serializable channel parameters, resolved by :func:`make_channel`."""

    semantics: ChannelSemantics = ChannelSemantics.FAIR_LOSSY
    drop_prob: float = 0.4
    max_consecutive_drops: int = 3
    min_delay: int = 1
    max_delay: int = 4
    partitions: tuple = ()
    blackhole: Callable[[ProcessId, ProcessId, Message], bool] | None = field(
        default=None, compare=False
    )


def make_channel(config: ChannelConfig, rng: random.Random) -> NetworkChannel:
    """Instantiate the channel a :class:`ChannelConfig` describes."""
    if config.semantics is ChannelSemantics.RELIABLE:
        return ReliableChannel(
            rng, min_delay=config.min_delay, max_delay=config.max_delay
        )
    if config.semantics is ChannelSemantics.FAIR_LOSSY:
        return FairLossyChannel(
            rng,
            drop_prob=config.drop_prob,
            max_consecutive_drops=config.max_consecutive_drops,
            min_delay=config.min_delay,
            max_delay=config.max_delay,
            partitions=config.partitions,
        )
    if config.semantics is ChannelSemantics.UNFAIR:
        blackhole = config.blackhole or (lambda s, r, m: True)
        return UnfairChannel(
            rng,
            blackhole=blackhole,
            min_delay=config.min_delay,
            max_delay=config.max_delay,
        )
    raise ValueError(f"unknown channel semantics {config.semantics!r}")
