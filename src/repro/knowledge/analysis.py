"""Semantic analyses: locality, stability, failure-insensitivity.

* A formula phi is *local to p* in R iff ``K_p phi or K_p ~phi`` is
  valid (p always knows whether phi holds).
* phi is *stable* in R iff ``phi => Box phi`` is valid.
* phi (local to q) is *insensitive to failure by q* (Definition 3.3)
  iff appending ``crash_q`` to q's history never changes phi's truth:
  whenever two points of R carry q-histories h and h + crash_q, phi
  agrees on them.

These are decision procedures over the given finite system, matching the
paper's system-relative definitions.
"""

from __future__ import annotations

from repro.knowledge.formulas import Formula, Implies, Knows, Not, Or, Box
from repro.knowledge.semantics import ModelChecker
from repro.model.events import ProcessId
from repro.model.history import History
from repro.model.run import Point


def is_local(checker: ModelChecker, formula: Formula, process: ProcessId) -> bool:
    """phi is local to p iff K_p(phi) or K_p(~phi) is valid in R."""
    return checker.valid(Or(Knows(process, formula), Knows(process, Not(formula))))


def is_stable(checker: ModelChecker, formula: Formula) -> bool:
    """phi is stable iff phi => Box phi is valid in R."""
    return checker.valid(Implies(formula, Box(formula)))


def insensitive_to_failure(
    checker: ModelChecker, formula: Formula, process: ProcessId
) -> bool:
    """Definition 3.3: appending crash_q to q's history never flips phi.

    Scans the system's indistinguishability index for q: for every
    history of the form h + crash_q occurring at some point, compare
    phi's truth there with its truth at points carrying history h.
    """
    system = checker.system
    # One representative point per ~_process class; the kernel's class
    # table enumerates histories in first-occurrence order, so this is
    # the same scan as before minus the per-point re-hashing.
    seen: dict[History, Point] = {
        cls.history: cls.representative for cls in system.classes(process)
    }
    for history, point in seen.items():
        if not history.crashed:
            continue
        if len(history) == 0:
            continue
        parent = history.prefix(len(history) - 1)
        parent_point = seen.get(parent)
        if parent_point is None:
            continue
        crashed_truth = checker.holds(formula, point)
        parent_truth = checker.holds(formula, parent_point)
        if crashed_truth != parent_truth:
            return False
    return True


def a4_instance_holds(
    checker: ModelChecker,
    formula: Formula,
    point: Point,
    group: frozenset[ProcessId],
) -> bool:
    """One instance of condition A4 (Section 3).

    Given phi (stable, local to some process, insensitive to failure by
    it) and a point (r, m) where every process in ``group`` fails to
    know phi, A4 demands a point (r', m) of the system such that

    (a) r'_q(m) = r_q(m) for q in group,
    (b) for q outside the group, r'_q(m) is a prefix h of r_q(m), or
        h + crash_q where q crashes by m in r, and
    (c) (R, r', m) |= ~phi.

    This searches the system for such a point; A4 holds of the system
    for this instance iff one exists.  The paper's non-FIP example is a
    system where no such point exists (tested in the E12 experiment).
    """
    system = checker.system
    run, m = point.run, point.time
    # Precondition: nobody in the group knows phi here.  Sorted so the
    # process named in the error does not depend on set-iteration order.
    for q in sorted(group):
        if checker.holds(Knows(q, formula), point):
            raise ValueError(f"{q} knows the formula at the given point")
    for candidate_run in system:
        candidate = Point(candidate_run, m)
        if checker.holds(formula, candidate):
            continue  # (c) fails
        ok = True
        for q in run.processes:
            hq = run.history(q, m)
            hq_prime = candidate_run.history(q, m)
            if q in group:
                if hq_prime != hq:  # (a)
                    ok = False
                    break
            else:
                if hq_prime.is_prefix_of(hq):
                    continue  # (b), first disjunct: a plain prefix
                crash_variant = (
                    hq_prime.crashed
                    and len(hq_prime) > 0
                    and hq_prime.prefix(len(hq_prime) - 1).is_prefix_of(hq)
                    and run.crashed_by(q, m)
                )
                if not crash_variant:  # (b), second disjunct fails too
                    ok = False
                    break
        if ok:
            return True
    return False


def knowledge_is_veridical(
    checker: ModelChecker, formula: Formula, process: ProcessId
) -> bool:
    """The knowledge axiom T: K_p phi => phi, valid in every system by
    construction of the semantics; exposed for the property tests."""
    return checker.valid(Implies(Knows(process, formula), formula))


def positive_introspection(
    checker: ModelChecker, formula: Formula, process: ProcessId
) -> bool:
    """Axiom 4: K_p phi => K_p K_p phi."""
    kp = Knows(process, formula)
    return checker.valid(Implies(kp, Knows(process, kp)))


def negative_introspection(
    checker: ModelChecker, formula: Formula, process: ProcessId
) -> bool:
    """Axiom 5: ~K_p phi => K_p ~K_p phi."""
    kp = Knows(process, formula)
    return checker.valid(Implies(Not(kp), Knows(process, Not(kp))))
