"""The specific formulas the paper reasons with.

* :func:`prop_3_5` -- the epistemic precondition of Proposition 3.5:
  before p can perform alpha, if p knows alpha was initiated and that
  every process will either learn of the initiation or crash, then p
  knows that (if anyone is correct) some *correct* process knows of the
  initiation.
* :func:`dc1_formula` / :func:`dc2_formula` / :func:`dc3_formula` --
  DC1-DC3 as temporal formulas (Section 2.4), so they can be checked by
  the epistemic model checker as validities; the fast path in
  :mod:`repro.core.properties` must agree with them (tested).
"""

from __future__ import annotations

from typing import Sequence

from repro.knowledge.formulas import (
    And,
    Box,
    Crashed,
    Diamond,
    Did,
    Formula,
    Implies,
    Inited,
    Knows,
    Not,
    Or,
)
from repro.model.events import ActionId, ProcessId
from repro.workloads.generators import initiator_of


def prop_3_5(
    processes: Sequence[ProcessId],
    p: ProcessId,
    action: ActionId,
) -> Formula:
    """Proposition 3.5's validity, instantiated at observer ``p`` and one action.

    K_p( init_{p'}(a) & AND_q <>(K_q init_{p'}(a) | crash(q)) )
      =>  K_p( OR_q []~crash(q)  =>  OR_q (K_q init_{p'}(a) & []~crash(q)) )
    """
    p_prime = initiator_of(action)
    init = Inited(p_prime, action)
    antecedent = Knows(
        p,
        And(
            init,
            *[
                Diamond(Or(Knows(q, init), Crashed(q)))
                for q in processes
            ],
        ),
    )
    somebody_correct = Or(*[Box(Not(Crashed(q))) for q in processes])
    some_correct_knows = Or(
        *[
            And(Knows(q, init), Box(Not(Crashed(q))))
            for q in processes
        ]
    )
    consequent = Knows(p, Implies(somebody_correct, some_correct_knows))
    return Implies(antecedent, consequent)


def dc1_formula(action: ActionId) -> Formula:
    """DC1: init_p(alpha) => <>(do_p(alpha) | crash(p))."""
    p = initiator_of(action)
    return Implies(
        Inited(p, action), Diamond(Or(Did(p, action), Crashed(p)))
    )


def dc2_formula(processes: Sequence[ProcessId], action: ActionId) -> Formula:
    """DC2: AND_{q1,q2} (do_q1(alpha) => <>(do_q2(alpha) | crash(q2)))."""
    clauses = [
        Implies(Did(q1, action), Diamond(Or(Did(q2, action), Crashed(q2))))
        for q1 in processes
        for q2 in processes
    ]
    return And(*clauses)


def dc2_prime_formula(processes: Sequence[ProcessId], action: ActionId) -> Formula:
    """DC2': the non-uniform variant with the crash(q1) escape hatch."""
    clauses = [
        Implies(
            Did(q1, action),
            Diamond(Or(Did(q2, action), Crashed(q2), Crashed(q1))),
        )
        for q1 in processes
        for q2 in processes
    ]
    return And(*clauses)


def dc3_formula(processes: Sequence[ProcessId], action: ActionId) -> Formula:
    """DC3: AND_{q2} (do_q2(alpha) => init_p(alpha))."""
    p = initiator_of(action)
    clauses = [
        Implies(Did(q2, action), Inited(p, action)) for q2 in processes
    ]
    return And(*clauses)


def knows_crashed(p: ProcessId, q: ProcessId) -> Formula:
    """K_p crash(q): the P3 suspicion formula of Theorem 3.6."""
    return Knows(p, Crashed(q))
