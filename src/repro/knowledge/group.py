"""Group knowledge: E_G, E_G^k, distributed and common knowledge (FHMV95).

The paper's toolbox (Fagin-Halpern-Moses-Vardi) includes group
operators the UDC analysis implicitly leans on:

* ``E_G phi``  -- everyone in G knows phi;
* ``E_G^k``    -- k-fold iteration ("everyone knows that everyone
  knows ... (k times)");
* ``D_G phi``  -- distributed knowledge: phi holds at every point that
  *no member* of G can distinguish (footnote 4 of the paper invokes
  exactly this notion when discussing A4);
* ``C_G phi``  -- common knowledge: the greatest fixpoint of
  ``X = E_G(phi and X)``; over a finite system it is computed by
  iterating E_G to a fixpoint.

The famous coordinated-attack connection: with unreliable
communication, common knowledge of a new fact is *unattainable* --
every E^k level can be climbed with k message exchanges, but C never
arrives.  That is the deep reason the paper's UDC (which needs only
"some correct process knows", Prop 3.5) is attainable where
simultaneous coordination is not; experiment E14 demonstrates both
halves on generated ensembles.
"""

from __future__ import annotations

from typing import Sequence

from repro.knowledge.formulas import And, Formula, Knows
from repro.knowledge.semantics import ModelChecker
from repro.model.events import ProcessId
from repro.model.run import Point


def everyone_knows(group: Sequence[ProcessId], formula: Formula) -> Formula:
    """E_G phi as a plain formula (so it composes with the AST)."""
    return And(*[Knows(p, formula) for p in group])


def e_iterated(group: Sequence[ProcessId], formula: Formula, depth: int) -> Formula:
    """E_G^depth phi; depth = 0 is phi itself."""
    if depth < 0:
        raise ValueError("depth must be non-negative")
    current = formula
    for _ in range(depth):
        current = everyone_knows(group, current)
    return current


class GroupChecker:
    """Semantic group-knowledge queries over one finite system.

    Distributed and common knowledge are *not* expressible as finite
    formulas in general, so they are computed semantically here rather
    than as AST nodes.
    """

    def __init__(self, checker: ModelChecker) -> None:
        self.checker = checker
        self.system = checker.system

    # -- distributed knowledge -------------------------------------------------

    def distributed_knowledge(
        self, group: Sequence[ProcessId], formula: Formula, point: Point
    ) -> bool:
        """D_G phi at (r, m): phi holds at every point indistinguishable
        from (r, m) by ALL members of G simultaneously (the intersection
        of the ~_p relations)."""
        group = list(group)
        if not group:
            raise ValueError("group must be non-empty")
        candidates = self.system.indistinguishable_points(group[0], point)
        for candidate in candidates:
            if all(
                candidate.history(p) == point.history(p) for p in group[1:]
            ):
                if not self.checker.holds(formula, candidate):
                    return False
        return True

    # -- common knowledge --------------------------------------------------------

    def common_knowledge_points(
        self, group: Sequence[ProcessId], formula: Formula
    ) -> set[tuple[int, int]]:
        """The set of points (run_index, time) where C_G phi holds.

        Computed as the greatest fixpoint of X = E_G(phi and X) by
        iterated refinement over the finite point space: start from the
        points satisfying phi, repeatedly remove points some member of
        G considers possibly-outside, until stable.
        """
        runs = list(self.system.runs)
        index = {run: i for i, run in enumerate(runs)}
        # Start from all points satisfying phi.
        current: set[tuple[int, int]] = set()
        for i, run in enumerate(runs):
            for m in range(run.duration + 1):
                if self.checker.holds(formula, Point(run, m)):
                    current.add((i, m))
        changed = True
        while changed:
            changed = False
            for i, m in list(current):
                point = Point(runs[i], m)
                for p in self.system.processes:
                    if p not in group:
                        continue
                    for candidate in self.system.indistinguishable_points(p, point):
                        key = (index[candidate.run], min(candidate.time, candidate.run.duration))
                        if key not in current:
                            current.discard((i, m))
                            changed = True
                            break
                    if (i, m) not in current:
                        break
        return current

    def common_knowledge(
        self, group: Sequence[ProcessId], formula: Formula, point: Point
    ) -> bool:
        """C_G phi at a point (fixpoint semantics)."""
        points = self.common_knowledge_points(group, formula)
        runs = list(self.system.runs)
        try:
            i = runs.index(point.run)
        except ValueError:
            raise ValueError("point's run is not in the system") from None
        return (i, min(point.time, point.run.duration)) in points

    # -- E^k climbing ----------------------------------------------------------------

    def max_e_depth(
        self,
        group: Sequence[ProcessId],
        formula: Formula,
        point: Point,
        *,
        cap: int = 10,
    ) -> int:
        """The largest k <= cap with E_G^k phi true at the point."""
        depth = 0
        while depth < cap:
            if not self.checker.holds(
                e_iterated(group, formula, depth + 1), point
            ):
                break
            depth += 1
        return depth
