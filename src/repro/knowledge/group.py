"""Group knowledge: E_G, E_G^k, distributed and common knowledge (FHMV95).

The paper's toolbox (Fagin-Halpern-Moses-Vardi) includes group
operators the UDC analysis implicitly leans on:

* ``E_G phi``  -- everyone in G knows phi;
* ``E_G^k``    -- k-fold iteration ("everyone knows that everyone
  knows ... (k times)");
* ``D_G phi``  -- distributed knowledge: phi holds at every point that
  *no member* of G can distinguish (footnote 4 of the paper invokes
  exactly this notion when discussing A4);
* ``C_G phi``  -- common knowledge: the greatest fixpoint of
  ``X = E_G(phi and X)``; over a finite system it is computed by
  iterating E_G to a fixpoint.

The famous coordinated-attack connection: with unreliable
communication, common knowledge of a new fact is *unattainable* --
every E^k level can be climbed with k message exchanges, but C never
arrives.  That is the deep reason the paper's UDC (which needs only
"some correct process knows", Prop 3.5) is attainable where
simultaneous coordination is not; experiment E14 demonstrates both
halves on generated ensembles.
"""

from __future__ import annotations

from typing import Iterator, Sequence

from repro.knowledge.formulas import And, Formula, Knows
from repro.knowledge.semantics import ModelChecker
from repro.model.events import ProcessId
from repro.model.run import Point


def everyone_knows(group: Sequence[ProcessId], formula: Formula) -> Formula:
    """E_G phi as a plain formula (so it composes with the AST)."""
    return And(*[Knows(p, formula) for p in group])


def e_iterated(group: Sequence[ProcessId], formula: Formula, depth: int) -> Formula:
    """E_G^depth phi; depth = 0 is phi itself."""
    if depth < 0:
        raise ValueError("depth must be non-negative")
    current = formula
    for _ in range(depth):
        current = everyone_knows(group, current)
    return current


def _iter_bits(bits: int) -> Iterator[int]:
    """Yield the set bit positions of a Python-int bitset."""
    while bits:
        low = bits & -bits
        yield low.bit_length() - 1
        bits ^= low


class GroupChecker:
    """Semantic group-knowledge queries over one finite system.

    Distributed and common knowledge are *not* expressible as finite
    formulas in general, so they are computed semantically here rather
    than as AST nodes.

    Both C_G and the E^k ladder run over the system's integer-indexed
    class graph: point sets are Python-int bitsets (bit i = point id i),
    and one E_G step keeps exactly the points whose ~_p class is wholly
    inside the current set, for every p in G -- an AND/OR sweep over
    class bitsets instead of a formula re-walk per point.
    """

    def __init__(self, checker: ModelChecker) -> None:
        self.checker = checker
        self.system = checker.system

    # -- bitset plumbing ---------------------------------------------------

    def _formula_bits(self, formula: Formula) -> int:
        """The bitset of in-system points satisfying ``formula``."""
        bits = 0
        pid = 0
        holds = self.checker.holds
        for run in self.system.runs:
            for m in range(run.duration + 1):
                if holds(formula, Point(run, m)):
                    bits |= 1 << pid
                pid += 1
        return bits

    def _e_step(self, class_bits: Sequence[Sequence[int]], current: int) -> int:
        """One E_G application: points whose every member-class is in ``current``."""
        self.system.stats.ck_fixpoint_iterations += 1
        if not class_bits:
            return (1 << self.system.point_count) - 1  # empty conjunction
        result: int | None = None
        for per_process in class_bits:
            keep = 0
            for bits in per_process:
                if bits & current == bits:
                    keep |= bits
            result = keep if result is None else result & keep
        assert result is not None  # class_bits is non-empty here
        return result

    # -- distributed knowledge -------------------------------------------------

    def distributed_knowledge(
        self, group: Sequence[ProcessId], formula: Formula, point: Point
    ) -> bool:
        """D_G phi at (r, m): phi holds at every point indistinguishable
        from (r, m) by ALL members of G simultaneously (the intersection
        of the ~_p relations)."""
        group = list(group)
        if not group:
            raise ValueError("group must be non-empty")
        self.system.note_knowledge_query()
        candidates = self.system.indistinguishable_points(group[0], point)
        for candidate in candidates:
            if all(
                candidate.history(p) == point.history(p) for p in group[1:]
            ):
                if not self.checker.holds(formula, candidate):
                    return False
        return True

    # -- common knowledge --------------------------------------------------------

    def common_knowledge_points(
        self, group: Sequence[ProcessId], formula: Formula
    ) -> set[tuple[int, int]]:
        """The set of points (run_index, time) where C_G phi holds.

        Computed as the greatest fixpoint of X = E_G(phi and X): start
        from the bitset of points satisfying phi and apply the bitset
        E_G step until stable.
        """
        system = self.system
        system.note_knowledge_query()
        members = [p for p in system.processes if p in group]
        kernel = system.columnar_kernel()
        if kernel is not None:
            base = kernel.formula_set(self.checker, formula)
            fixed = kernel.ck_fixpoint(
                [system.process_bit(p) for p in members], base
            )
            return {system.point_key(pid) for pid in kernel.iter_point_ids(fixed)}
        class_bits = [system.class_bitsets(p) for p in members]
        current = self._formula_bits(formula)
        while True:
            refined = self._e_step(class_bits, current) & current
            if refined == current:
                break
            current = refined
        return {system.point_key(pid) for pid in _iter_bits(current)}

    def common_knowledge(
        self, group: Sequence[ProcessId], formula: Formula, point: Point
    ) -> bool:
        """C_G phi at a point (fixpoint semantics)."""
        points = self.common_knowledge_points(group, formula)
        i = self.system.run_index(point.run)
        if i is None:
            raise ValueError("point's run is not in the system")
        return (i, min(point.time, point.run.duration)) in points

    # -- E^k climbing ----------------------------------------------------------------

    def max_e_depth(
        self,
        group: Sequence[ProcessId],
        formula: Formula,
        point: Point,
        *,
        cap: int = 10,
    ) -> int:
        """The largest k <= cap with E_G^k phi true at the point.

        Semantically: level sets S_0 = [[phi]], S_{k+1} = E_G(S_k) are
        computed once as bitsets; E^k holds at the point iff each group
        member's class of the point is contained in S_{k-1}.  Knowledge
        is veridical, so the level sets only shrink and the first failed
        level is final -- no nested formula is ever materialized.
        """
        system = self.system
        members = [p for p in system.processes if p in group]
        kernel = system.columnar_kernel()
        if kernel is not None:
            # The point's class per group member (by point id when
            # in-system, by local history otherwise; an absent class is
            # empty = vacuous truth).
            point_cids = [kernel.class_id_at(p, point) for p in group]
            members_j = [system.process_bit(p) for p in members]
            level = kernel.formula_set(self.checker, formula)
            depth = 0
            while depth < cap:
                if not all(
                    kernel.class_in_set(cid, level) for cid in point_cids
                ):
                    break
                depth += 1
                if depth < cap:
                    level = kernel.e_step(members_j, level)
            return depth
        # The point's class bitset per group member (by local history, so
        # foreign points work; an absent class is empty = vacuous truth).
        point_classes = [
            system.class_bits_for_history(p, point.history(p)) for p in group
        ]
        class_bits = [system.class_bitsets(p) for p in members]
        level = self._formula_bits(formula)
        depth = 0
        while depth < cap:
            if not all(bits & level == bits for bits in point_classes):
                break
            depth += 1
            if depth < cap:
                level = self._e_step(class_bits, level)
        return depth
