"""Message chains and the knowledge-gain principle (footnote 5, Section 3).

The paper's A4 discussion rests on *message chains*: there is a chain
from p to q between times m_p and m iff there are messages
msg_1, ..., msg_k and processes p_1, ..., p_{k+1} with

  (a) msg_i sent by p_i to p_{i+1} and received,
  (b) p_{i+1} sends msg_{i+1} after receiving msg_i,
  (c) p = p_1, (d) q = p_{k+1},
  (e) p sends msg_1 at or after m_p, and
  (f) q receives msg_k at or before m.

This module decides chain existence by reachability over the run's
event graph (local successor edges plus matched send->receive edges;
receives are matched to the earliest compatible unmatched send, which
R3 guarantees exists), and ships the classical *knowledge gain*
principle as a checkable property: in any system, if q learns a stable
fact local to p that became true at m_p, there is a message chain from
p to q starting at or after... strictly speaking starting no earlier
than the fact's truth could be transmitted; the executable form checked
in the tests is

    K_q(phi) at (r, m)  and  q != p   implies
    a message chain from (p, m_p) to (q, m),

for phi stable, local to p, first true at m_p.  Its converse holds for
full-information protocols (:mod:`repro.sim.fip`): a chain from p after
m_p *delivers* knowledge of phi.
"""

from __future__ import annotations

from collections import defaultdict, deque
from typing import TYPE_CHECKING, Callable, Iterable

from repro.model.events import Message, ProcessId, ReceiveEvent, SendEvent
from repro.model.run import Run

if TYPE_CHECKING:  # avoid an import cycle (semantics imports nothing here,
    # but formulas <- semantics <- chains would otherwise be circular at runtime)
    from repro.knowledge.formulas import Formula
    from repro.knowledge.semantics import ModelChecker


def match_sends_to_receives(
    run: Run,
) -> dict[tuple[ProcessId, int], tuple[ProcessId, int]]:
    """Map each receive event (receiver, time) to its matched send
    (sender, time): the earliest unmatched compatible send (FIFO per
    message value, which R3 makes well-defined)."""
    # Collect sends per (sender, receiver, message), in time order.
    sends: dict[tuple[ProcessId, ProcessId, Message], deque[int]] = defaultdict(deque)
    for p in run.processes:
        for t, event in run.timeline(p):
            if isinstance(event, SendEvent):
                sends[(event.sender, event.receiver, event.message)].append(t)
    matching: dict[tuple[ProcessId, int], tuple[ProcessId, int]] = {}
    # Receives in global time order, matched greedily.
    receives = [
        (t, event)
        for p in run.processes
        for t, event in run.timeline(p)
        if isinstance(event, ReceiveEvent)
    ]
    receives.sort(key=lambda te: te[0])
    for t, event in receives:
        key = (event.sender, event.receiver, event.message)
        queue = sends.get(key)
        if not queue:
            continue  # ill-formed run; validator would have flagged it
        send_t = queue.popleft()
        matching[(event.receiver, t)] = (event.sender, send_t)
    return matching


def has_message_chain(
    run: Run,
    source: ProcessId,
    from_time: int,
    target: ProcessId,
    to_time: int,
) -> bool:
    """Decide footnote 5's chain relation from (source, from_time) to
    (target, <= to_time).  A trivial chain (source == target) counts."""
    if source == target:
        return from_time <= to_time
    matching = match_sends_to_receives(run)
    # BFS over (process, time-of-knowledge) states: from a state (p, t)
    # every send by p at time >= t that is received at r_t <= to_time
    # moves knowledge to (receiver, r_t).
    receive_of_send: dict[tuple[ProcessId, int], tuple[ProcessId, int]] = {}
    for (recv_p, recv_t), (send_p, send_t) in matching.items():
        receive_of_send[(send_p, send_t)] = (recv_p, recv_t)

    sends_by_process: dict[ProcessId, list[int]] = defaultdict(list)
    for p in run.processes:
        for t, event in run.timeline(p):
            if isinstance(event, SendEvent):
                sends_by_process[p].append(t)

    best_arrival: dict[ProcessId, int] = {source: from_time}
    frontier = deque([source])
    while frontier:
        p = frontier.popleft()
        arrival = best_arrival[p]
        for send_t in sends_by_process.get(p, ()):
            if send_t < arrival:
                continue
            hop = receive_of_send.get((p, send_t))
            if hop is None:
                continue
            q, recv_t = hop
            if recv_t > to_time:
                continue
            if q == target:
                return True
            if recv_t < best_arrival.get(q, to_time + 1):
                best_arrival[q] = recv_t
                frontier.append(q)
    return False


def chain_closure(
    run: Run, source: ProcessId, from_time: int, to_time: int
) -> dict[ProcessId, int]:
    """Earliest time each process is reachable by a chain from
    (source, from_time), within to_time.  Includes the source itself."""
    result = {source: from_time}
    matching = match_sends_to_receives(run)
    receive_of_send = {
        (send_p, send_t): (recv_p, recv_t)
        for (recv_p, recv_t), (send_p, send_t) in matching.items()
    }
    sends_by_process: dict[ProcessId, list[int]] = defaultdict(list)
    for p in run.processes:
        for t, event in run.timeline(p):
            if isinstance(event, SendEvent):
                sends_by_process[p].append(t)
    frontier = deque([source])
    while frontier:
        p = frontier.popleft()
        arrival = result[p]
        for send_t in sends_by_process.get(p, ()):
            if send_t < arrival:
                continue
            hop = receive_of_send.get((p, send_t))
            if hop is None:
                continue
            q, recv_t = hop
            if recv_t > to_time:
                continue
            if recv_t < result.get(q, to_time + 1):
                result[q] = recv_t
                frontier.append(q)
    return result


def knowledge_gain_violations(
    system: "Iterable[Run]",
    checker: "ModelChecker",
    fact: "Formula",
    owner: ProcessId,
    first_true: Callable[[Run], int | None],
) -> list[tuple[int, ProcessId, int]]:
    """Check the knowledge-gain principle over a system.

    ``fact`` is a formula stable and local to ``owner``; ``first_true``
    maps a run to the first time the fact holds there (None if never).
    Returns the violations: (run_index, observer, time) triples where
    the observer knows the fact without any message chain from the
    owner since it became true.
    """
    from repro.knowledge.formulas import Knows
    from repro.model.run import Point

    violations: list[tuple[int, ProcessId, int]] = []
    for i, run in enumerate(system):
        m0 = first_true(run)
        if m0 is None:
            continue
        for q in run.processes:
            if q == owner:
                continue
            # Find the first time q knows the fact, if any.
            for m in range(run.duration + 1):
                if checker.holds(Knows(q, fact), Point(run, m)):
                    if not has_message_chain(run, owner, m0, q, m):
                        violations.append((i, q, m))
                    break
    return violations
