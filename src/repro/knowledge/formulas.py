"""The formula AST (Section 2.3).

The language starts from primitive propositions -- ``send_p(q, msg)``,
``recv_q(p, msg)``, ``crash(p)``, ``do_p(alpha)``, ``init_p(alpha)`` --
and closes under Boolean combinations, the linear-time operator ``Box``
(with its dual ``Diamond``), and the epistemic operators K_p.

Each node advertises two static attributes the model checker exploits:

* ``locality`` -- a process id when the formula's truth at a point is a
  function of that process's local history alone (all the primitive
  propositions above are local to the process whose history records the
  event, and K_p formulas are local to p).  Used as a memoization key.
* ``syntactically_stable`` -- True when the formula is stable (once
  true, stays true) *by construction*: event-occurrence primitives are
  stable because histories only grow, ``Box phi`` is stable, and
  conjunctions/disjunctions of stable formulas are stable.  Knowledge of
  a stable local formula is stable.  (Negation is not: this is a sound
  syntactic under-approximation; :func:`repro.knowledge.analysis.is_stable`
  decides stability semantically on a given system.)
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.model.events import ActionId, Message, ProcessId
from repro.model.run import Point


class Formula:
    """Base class; subclasses are immutable after construction."""

    __slots__ = ("locality", "syntactically_stable")

    def __init__(
        self,
        locality: Optional[ProcessId] = None,
        syntactically_stable: bool = False,
    ) -> None:
        self.locality = locality
        self.syntactically_stable = syntactically_stable

    # Combinator sugar -------------------------------------------------------

    def __and__(self, other: "Formula") -> "Formula":
        return And(self, other)

    def __or__(self, other: "Formula") -> "Formula":
        return Or(self, other)

    def __invert__(self) -> "Formula":
        return Not(self)

    def implies(self, other: "Formula") -> "Formula":
        """Sugar for :class:`Implies`."""
        return Implies(self, other)

    def label(self) -> str:
        """A readable rendering of the formula."""
        raise NotImplementedError


def _shared_locality(parts: tuple[Formula, ...]) -> Optional[ProcessId]:
    localities = {f.locality for f in parts}
    if len(localities) == 1:
        return next(iter(localities))
    return None


class Atom(Formula):
    """A primitive proposition given by a point predicate.

    ``fn`` maps a :class:`~repro.model.run.Point` to a bool.  Declare
    ``locality``/``stable`` truthfully: the checker trusts them for
    memoization (a wrong locality claim gives wrong answers, not just a
    slow checker).
    """

    __slots__ = ("name", "fn")

    def __init__(
        self,
        name: str,
        fn: Callable[[Point], bool],
        *,
        locality: Optional[ProcessId] = None,
        stable: bool = False,
    ) -> None:
        super().__init__(locality, stable)
        self.name = name
        self.fn = fn

    def label(self) -> str:
        return self.name


class _Const(Formula):
    __slots__ = ("value",)

    def __init__(self, value: bool) -> None:
        super().__init__(locality=None, syntactically_stable=value)
        self.value = value

    def label(self) -> str:
        return "true" if self.value else "false"


TRUE = _Const(True)
FALSE = _Const(False)


# -- primitive propositions over histories -------------------------------------


class Inited(Formula):
    """init_p(alpha) holds at a cut iff the event is in p's history there."""

    __slots__ = ("process", "action")

    def __init__(self, process: ProcessId, action: ActionId) -> None:
        super().__init__(locality=process, syntactically_stable=True)
        self.process = process
        self.action = action

    def label(self) -> str:
        return f"init_{self.process}({self.action!r})"


class Did(Formula):
    """do_p(alpha)."""

    __slots__ = ("process", "action")

    def __init__(self, process: ProcessId, action: ActionId) -> None:
        super().__init__(locality=process, syntactically_stable=True)
        self.process = process
        self.action = action

    def label(self) -> str:
        return f"do_{self.process}({self.action!r})"


class Crashed(Formula):
    """crash(p)."""

    __slots__ = ("process",)

    def __init__(self, process: ProcessId) -> None:
        super().__init__(locality=process, syntactically_stable=True)
        self.process = process

    def label(self) -> str:
        return f"crash({self.process})"


class Sent(Formula):
    """send_p(q, msg); with msg=None, "p has sent something to q"."""

    __slots__ = ("sender", "receiver", "message")

    def __init__(
        self, sender: ProcessId, receiver: ProcessId, message: Message | None = None
    ) -> None:
        super().__init__(locality=sender, syntactically_stable=True)
        self.sender = sender
        self.receiver = receiver
        self.message = message

    def label(self) -> str:
        return f"send_{self.sender}({self.receiver}, {self.message!r})"


class Received(Formula):
    """recv_q(p, msg); with msg=None, "q has received something from p"."""

    __slots__ = ("receiver", "sender", "message")

    def __init__(
        self, receiver: ProcessId, sender: ProcessId, message: Message | None = None
    ) -> None:
        super().__init__(locality=receiver, syntactically_stable=True)
        self.receiver = receiver
        self.sender = sender
        self.message = message

    def label(self) -> str:
        return f"recv_{self.receiver}({self.sender}, {self.message!r})"


# -- connectives ----------------------------------------------------------------


class Not(Formula):
    __slots__ = ("child",)

    def __init__(self, child: Formula) -> None:
        super().__init__(locality=child.locality, syntactically_stable=False)
        self.child = child

    def label(self) -> str:
        return f"~({self.child.label()})"


class And(Formula):
    __slots__ = ("parts",)

    def __init__(self, *parts: Formula) -> None:
        flattened: list[Formula] = []
        for part in parts:
            if isinstance(part, And):
                flattened.extend(part.parts)
            else:
                flattened.append(part)
        self.parts = tuple(flattened)
        super().__init__(
            locality=_shared_locality(self.parts),
            syntactically_stable=all(p.syntactically_stable for p in self.parts),
        )

    def label(self) -> str:
        return " & ".join(f"({p.label()})" for p in self.parts) or "true"


class Or(Formula):
    __slots__ = ("parts",)

    def __init__(self, *parts: Formula) -> None:
        flattened: list[Formula] = []
        for part in parts:
            if isinstance(part, Or):
                flattened.extend(part.parts)
            else:
                flattened.append(part)
        self.parts = tuple(flattened)
        super().__init__(
            locality=_shared_locality(self.parts),
            syntactically_stable=all(p.syntactically_stable for p in self.parts),
        )

    def label(self) -> str:
        return " | ".join(f"({p.label()})" for p in self.parts) or "false"


class Implies(Formula):
    __slots__ = ("antecedent", "consequent")

    def __init__(self, antecedent: Formula, consequent: Formula) -> None:
        super().__init__(
            locality=_shared_locality((antecedent, consequent)),
            syntactically_stable=False,
        )
        self.antecedent = antecedent
        self.consequent = consequent

    def label(self) -> str:
        return f"({self.antecedent.label()}) => ({self.consequent.label()})"


def Iff(a: Formula, b: Formula) -> Formula:
    """Bi-implication, expanded to a conjunction of implications."""
    return And(Implies(a, b), Implies(b, a))


# -- temporal operators ------------------------------------------------------------


class Box(Formula):
    """``Box phi``: phi holds from this point on (the paper's square)."""

    __slots__ = ("child",)

    def __init__(self, child: Formula) -> None:
        # Truth depends on the run's future, never on a local history
        # alone; Box phi is stable by definition.
        super().__init__(locality=None, syntactically_stable=True)
        self.child = child

    def label(self) -> str:
        return f"[]({self.child.label()})"


class Diamond(Formula):
    """``Diamond phi`` = not Box not phi: phi holds now or later."""

    __slots__ = ("child",)

    def __init__(self, child: Formula) -> None:
        super().__init__(locality=None, syntactically_stable=False)
        self.child = child

    def label(self) -> str:
        return f"<>({self.child.label()})"


# -- the epistemic operator -----------------------------------------------------------


class Knows(Formula):
    """K_p phi: phi holds at every point p cannot distinguish from here."""

    __slots__ = ("process", "child")

    def __init__(self, process: ProcessId, child: Formula) -> None:
        # K_p phi is local to p (standard: Kp(Kp phi) or Kp(~Kp phi) is
        # valid); knowledge of a stable formula local to its subject is
        # stable because local histories only grow.
        super().__init__(
            locality=process,
            syntactically_stable=child.syntactically_stable
            and child.locality is not None,
        )
        self.process = process
        self.child = child

    def label(self) -> str:
        return f"K_{self.process}({self.child.label()})"
