"""The model checker: (R, r, m) |= phi over finite systems (Section 2.3).

Semantics (verbatim from the paper, finite-horizon convention applied):

* primitive propositions are decided by the cut;
* (R, r, m) |= Box phi   iff (R, r, m') |= phi for all m' >= m;
* (R, r, m) |= K_p phi   iff (R, r', m') |= phi for every point
  (r', m') of R with r'_p(m') = r_p(m).

Finite horizon: the final cut of each run repeats forever, so times
beyond the duration evaluate at the duration, and Box/Diamond sweep
m..duration with the value at the duration standing for the infinite
tail.  Runs produced by the executor are quiescent at their duration,
which makes this exact for the formulas the paper's properties use.

Memoization: per formula node,
* local formulas cache on (formula, local history) -- knowledge and all
  history primitives hit this path;
* temporal formulas cache a whole per-run truth vector computed by one
  backward sweep;
* everything else caches on (formula, run, m).
"""

from __future__ import annotations

from typing import Optional

from repro.knowledge.formulas import (
    And,
    Atom,
    Box,
    Crashed,
    Diamond,
    Did,
    Formula,
    Implies,
    Inited,
    Knows,
    Not,
    Or,
    Received,
    Sent,
    _Const,
)
from repro.model.events import ProcessId
from repro.model.history import History
from repro.model.run import Point, Run
from repro.model.system import System


class ModelChecker:
    """Evaluates formulas over one finite :class:`~repro.model.system.System`."""

    def __init__(self, system: System) -> None:
        self.system = system
        self._local_cache: dict[tuple[Formula, ProcessId, History], bool] = {}
        self._point_cache: dict[tuple[Formula, int, int], bool] = {}
        self._temporal_cache: dict[tuple[Formula, int], list[bool]] = {}
        self._run_ids = {run: i for i, run in enumerate(system.runs)}
        # Foreign runs (not in the system) get identity-based negative
        # ids.  The dict is keyed by id(run) and the list pins a strong
        # reference to every such run, so a foreign run's id() can never
        # be recycled by a later allocation and alias a cache entry.
        self._foreign_ids: dict[int, int] = {}
        self._foreign_refs: list[Run] = []
        #: kernel counters, shared with (and surfaced on) the system
        self.stats = system.stats

    # -- public API ---------------------------------------------------------

    def holds(self, formula: Formula, point: Point) -> bool:
        """(R, r, m) |= phi.  ``point.run`` should belong to the system."""
        return self._eval(formula, point)

    def holds_at(self, formula: Formula, run: Run, time: int) -> bool:
        """(R, run, time) |= formula."""
        return self._eval(formula, Point(run, time))

    def valid(self, formula: Formula) -> bool:
        """R |= phi: true at every point of the system."""
        return self.counterexample(formula) is None

    def counterexample(self, formula: Formula) -> Optional[Point]:
        """The first point where ``formula`` fails, or None if valid."""
        for run in self.system:
            for m in range(run.duration + 1):
                point = Point(run, m)
                if not self._eval(formula, point):
                    return point
        return None

    def satisfiable(self, formula: Formula) -> Optional[Point]:
        """The first point where ``formula`` holds, or None."""
        for run in self.system:
            for m in range(run.duration + 1):
                point = Point(run, m)
                if self._eval(formula, point):
                    return point
        return None

    # -- evaluation --------------------------------------------------------------

    def _run_id(self, run: Run) -> int:
        rid = self._run_ids.get(run)
        if rid is None:  # a foreign run: identity-keyed, reference-pinned
            # audited: _foreign_refs pins each keyed run for the checker's
            # lifetime, so its id() can never be recycled to another object
            key = id(run)  # repro: lint-ok[DET005]
            rid = self._foreign_ids.get(key)
            if rid is None:
                rid = -1 - len(self._foreign_ids)
                self._foreign_ids[key] = rid
                self._foreign_refs.append(run)
        return rid

    def _eval(self, formula: Formula, point: Point) -> bool:
        run = point.run
        time = min(point.time, run.duration)
        if time != point.time:
            point = Point(run, time)

        if isinstance(formula, (Box, Diamond)):
            vector = self._temporal_vector(formula, run)
            return vector[time]

        if formula.locality is not None:
            key = (formula, formula.locality, point.history(formula.locality))
            cached = self._local_cache.get(key)
            if cached is None:
                self.stats.local_cache_misses += 1
                cached = self._eval_node(formula, point)
                self._local_cache[key] = cached
            else:
                self.stats.local_cache_hits += 1
            return cached

        key2 = (formula, self._run_id(run), time)
        cached = self._point_cache.get(key2)
        if cached is None:
            self.stats.point_cache_misses += 1
            cached = self._eval_node(formula, point)
            self._point_cache[key2] = cached
        else:
            self.stats.point_cache_hits += 1
        return cached

    def _temporal_vector(self, formula: Box | Diamond, run: Run) -> list[bool]:
        key = (formula, self._run_id(run))
        vector = self._temporal_cache.get(key)
        if vector is not None:
            self.stats.temporal_cache_hits += 1
            return vector
        self.stats.temporal_cache_misses += 1
        child = formula.child
        horizon = run.duration
        values = [self._eval(child, Point(run, m)) for m in range(horizon + 1)]
        vector = [False] * (horizon + 1)
        if isinstance(formula, Box):
            acc = values[horizon]  # final cut repeats forever
            vector[horizon] = acc
            for m in range(horizon - 1, -1, -1):
                acc = acc and values[m]
                vector[m] = acc
        else:  # Diamond
            acc = values[horizon]
            vector[horizon] = acc
            for m in range(horizon - 1, -1, -1):
                acc = acc or values[m]
                vector[m] = acc
        self._temporal_cache[key] = vector
        return vector

    def _eval_node(self, formula: Formula, point: Point) -> bool:
        if isinstance(formula, _Const):
            return formula.value
        if isinstance(formula, Atom):
            return formula.fn(point)
        if isinstance(formula, Inited):
            return point.history(formula.process).inited(formula.action)
        if isinstance(formula, Did):
            return point.history(formula.process).did(formula.action)
        if isinstance(formula, Crashed):
            return point.history(formula.process).crashed
        if isinstance(formula, Sent):
            return point.history(formula.sender).sent(
                formula.receiver, formula.message
            )
        if isinstance(formula, Received):
            return point.history(formula.receiver).received(
                formula.sender, formula.message
            )
        if isinstance(formula, Not):
            return not self._eval(formula.child, point)
        if isinstance(formula, And):
            return all(self._eval(part, point) for part in formula.parts)
        if isinstance(formula, Or):
            return any(self._eval(part, point) for part in formula.parts)
        if isinstance(formula, Implies):
            return not self._eval(formula.antecedent, point) or self._eval(
                formula.consequent, point
            )
        if isinstance(formula, Knows):
            # Class-based: the memo layer above already keys this node on
            # p's local history, so this body runs once per ~_p class.
            self.system.note_knowledge_query()
            stats = self.stats
            child = formula.child
            kernel = self.system.columnar_kernel()
            if kernel is not None:
                cid = kernel.class_id_at(formula.process, point)
                if cid is None:
                    return True  # foreign history: vacuously true (empty class)
                stats.knows_class_evals += 1
                if isinstance(child, Crashed):
                    # K_p(crash(q)) is one bit of the class's AND-mask.
                    bit = self.system.process_bit(child.process)
                    return bool((kernel.known_mask(cid) >> bit) & 1)
                evaluate = self._eval
                for candidate in kernel.points_of_class(cid):
                    stats.knows_point_evals += 1
                    if not evaluate(child, candidate):
                        return False
                return True
            cls = self.system.class_of(formula.process, point)
            if cls is None:
                return True  # foreign history: vacuously true (empty class)
            stats.knows_class_evals += 1
            if isinstance(child, Crashed):
                # K_p(crash(q)) is one bit of the class's AND-mask.
                bit = self.system.process_bit(child.process)
                return bool((cls.known_crashed_mask >> bit) & 1)
            evaluate = self._eval
            for candidate in cls.points:
                stats.knows_point_evals += 1
                if not evaluate(child, candidate):
                    return False
            return True
        raise TypeError(f"unknown formula node {formula!r}")
