"""Naive reference implementations of the epistemic kernel.

These are the pre-class-based algorithms, retained verbatim in spirit:
every query quantifies over points by scanning runs and comparing local
histories structurally, with no interning, no equivalence classes, no
bitsets, and no caching.  They exist for two reasons:

* the differential property tests pin the fast kernel's verdicts to
  these semantics point-for-point on randomized systems;
* the kernel microbenchmarks report speedups against this baseline.

Never use them in production paths -- they are O(points x candidates)
per query by construction.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.knowledge.formulas import Formula
from repro.knowledge.semantics import ModelChecker
from repro.model.events import ProcessId
from repro.model.run import Point
from repro.model.system import System


def naive_indistinguishable_points(
    system: System, process: ProcessId, point: Point
) -> list[Point]:
    """All points ~_process ``point``, by full scan (no index)."""
    target = point.history(process)
    return [
        Point(run, m)
        for run in system.runs
        for m in range(run.duration + 1)
        if run.history(process, m) == target
    ]


def naive_knows(
    system: System,
    process: ProcessId,
    point: Point,
    predicate: Callable[[Point], bool],
) -> bool:
    """K_p(predicate) by scanning every candidate point."""
    return all(
        predicate(candidate)
        for candidate in naive_indistinguishable_points(system, process, point)
    )


def naive_knows_crashed(
    system: System, process: ProcessId, point: Point, target: ProcessId
) -> bool:
    """K_p(crash(q)) by candidate scan."""
    return naive_knows(
        system, process, point, lambda pt: pt.run.crashed_by(target, pt.time)
    )


def naive_known_crashed_set(
    system: System, process: ProcessId, point: Point
) -> frozenset[ProcessId]:
    """{q : K_p(crash(q))}, one candidate scan per q."""
    return frozenset(
        q
        for q in system.processes
        if naive_knows_crashed(system, process, point, q)
    )


def naive_known_crash_count(
    system: System,
    process: ProcessId,
    point: Point,
    subset: frozenset[ProcessId],
) -> int:
    """max{k : K_p("at least k of subset crashed")} by candidate scan."""
    candidates = naive_indistinguishable_points(system, process, point)
    if not candidates:
        return 0
    return min(
        sum(1 for q in subset if pt.run.crashed_by(q, pt.time))
        for pt in candidates
    )


def naive_common_knowledge_points(
    checker: ModelChecker, group: Sequence[ProcessId], formula: Formula
) -> set[tuple[int, int]]:
    """C_G phi's point set by per-point iterated refinement.

    The original fixpoint loop: start from the points satisfying phi,
    repeatedly drop any point some member of G considers possibly
    outside the current set, re-walking the candidate lists of every
    surviving point each round.
    """
    system = checker.system
    runs = list(system.runs)
    index = {run: i for i, run in enumerate(runs)}
    current: set[tuple[int, int]] = set()
    for i, run in enumerate(runs):
        for m in range(run.duration + 1):
            if checker.holds(formula, Point(run, m)):
                current.add((i, m))
    changed = True
    while changed:
        changed = False
        # sorted(): the fixpoint is order-independent, but the *work* per
        # round is not — sorting keeps the reference kernel's query
        # counters replayable for the differential tests.
        for i, m in sorted(current):
            point = Point(runs[i], m)
            for p in system.processes:
                if p not in group:
                    continue
                for candidate in naive_indistinguishable_points(system, p, point):
                    key = (
                        index[candidate.run],
                        min(candidate.time, candidate.run.duration),
                    )
                    if key not in current:
                        current.discard((i, m))
                        changed = True
                        break
                if (i, m) not in current:
                    break
    return current


def naive_max_e_depth(
    checker: ModelChecker,
    group: Sequence[ProcessId],
    formula: Formula,
    point: Point,
    *,
    cap: int = 10,
) -> int:
    """The E^k ladder by materializing and model-checking nested formulas."""
    from repro.knowledge.group import e_iterated

    depth = 0
    while depth < cap:
        if not checker.holds(e_iterated(group, formula, depth + 1), point):
            break
        depth += 1
    return depth
