"""Formula AST <-> JSON wire codec.

The query service (:mod:`repro.serve`) receives formulas over the wire;
this module gives every *data-defined* AST node a stable JSON form:

    {"op": "knows", "process": "p1", "child": {"op": "crashed", ...}}

The codec is exact where it applies: ``formula_from_jsonable`` of
``formula_to_jsonable`` output yields a formula with identical kernel
verdicts at every point (actions and message payloads travel through
the model's tagged value codec, so tuples stay tuples and frozensets
stay frozensets).  :class:`~repro.knowledge.formulas.Atom` wraps an
opaque Python callable and therefore has *no* wire form -- encoding one
raises ``TypeError``, and servers advertise only the data-defined
fragment.

Wire ops: ``const``, ``inited``, ``did``, ``crashed``, ``sent``,
``recv``, ``not``, ``and``, ``or``, ``implies``, ``box``, ``diamond``,
``knows``.
"""

from __future__ import annotations

import json
from typing import Any

from repro.knowledge.formulas import (
    And,
    Atom,
    Box,
    Crashed,
    Diamond,
    Did,
    Formula,
    Implies,
    Inited,
    Knows,
    Not,
    Or,
    Received,
    Sent,
    _Const,
)
from repro.model.events import Message
from repro.model.serialize import decode_value, encode_value


def _encode_message(message: Message | None) -> dict[str, Any] | None:
    if message is None:
        return None
    return {"kind": message.kind, "payload": encode_value(message.payload)}


def formula_to_jsonable(formula: Formula) -> dict[str, Any]:
    """Encode a data-defined formula as a JSON-safe dict.

    Raises ``TypeError`` for :class:`Atom` (opaque callable, no wire
    form) and for unknown node types.
    """
    if isinstance(formula, _Const):
        return {"op": "const", "value": formula.value}
    if isinstance(formula, Inited):
        return {
            "op": "inited",
            "process": formula.process,
            "action": encode_value(formula.action),
        }
    if isinstance(formula, Did):
        return {
            "op": "did",
            "process": formula.process,
            "action": encode_value(formula.action),
        }
    if isinstance(formula, Crashed):
        return {"op": "crashed", "process": formula.process}
    if isinstance(formula, Sent):
        return {
            "op": "sent",
            "sender": formula.sender,
            "receiver": formula.receiver,
            "message": _encode_message(formula.message),
        }
    if isinstance(formula, Received):
        return {
            "op": "recv",
            "receiver": formula.receiver,
            "sender": formula.sender,
            "message": _encode_message(formula.message),
        }
    if isinstance(formula, Not):
        return {"op": "not", "child": formula_to_jsonable(formula.child)}
    if isinstance(formula, And):
        return {
            "op": "and",
            "parts": [formula_to_jsonable(p) for p in formula.parts],
        }
    if isinstance(formula, Or):
        return {
            "op": "or",
            "parts": [formula_to_jsonable(p) for p in formula.parts],
        }
    if isinstance(formula, Implies):
        return {
            "op": "implies",
            "antecedent": formula_to_jsonable(formula.antecedent),
            "consequent": formula_to_jsonable(formula.consequent),
        }
    if isinstance(formula, Box):
        return {"op": "box", "child": formula_to_jsonable(formula.child)}
    if isinstance(formula, Diamond):
        return {"op": "diamond", "child": formula_to_jsonable(formula.child)}
    if isinstance(formula, Knows):
        return {
            "op": "knows",
            "process": formula.process,
            "child": formula_to_jsonable(formula.child),
        }
    if isinstance(formula, Atom):
        raise TypeError(
            "Atom formulas wrap opaque Python callables and have no wire "
            "form; express the predicate in the data-defined fragment"
        )
    raise TypeError(f"cannot serialize formula node {type(formula).__name__}")


def _require(data: dict[str, Any], key: str, op: str) -> Any:
    if key not in data:
        raise ValueError(f"formula op {op!r} is missing field {key!r}")
    return data[key]


def _process(data: dict[str, Any], key: str, op: str) -> str:
    value = _require(data, key, op)
    if not isinstance(value, str):
        raise ValueError(f"formula op {op!r}: field {key!r} must be a string")
    return value


def _decode_message(data: Any, op: str) -> Message | None:
    if data is None:
        return None
    if not isinstance(data, dict) or not isinstance(data.get("kind"), str):
        raise ValueError(f"formula op {op!r}: malformed message")
    return Message(data["kind"], decode_value(data.get("payload")))


def formula_from_jsonable(data: Any) -> Formula:
    """Inverse of :func:`formula_to_jsonable`; raises ``ValueError`` on
    malformed input."""
    if not isinstance(data, dict):
        raise ValueError("formula node must be a JSON object")
    op = data.get("op")
    if op == "const":
        return _Const(bool(_require(data, "value", op)))
    if op == "inited":
        return Inited(
            _process(data, "process", op),
            decode_value(_require(data, "action", op)),
        )
    if op == "did":
        return Did(
            _process(data, "process", op),
            decode_value(_require(data, "action", op)),
        )
    if op == "crashed":
        return Crashed(_process(data, "process", op))
    if op == "sent":
        return Sent(
            _process(data, "sender", op),
            _process(data, "receiver", op),
            _decode_message(data.get("message"), op),
        )
    if op == "recv":
        return Received(
            _process(data, "receiver", op),
            _process(data, "sender", op),
            _decode_message(data.get("message"), op),
        )
    if op == "not":
        return Not(formula_from_jsonable(_require(data, "child", op)))
    if op in ("and", "or"):
        parts = _require(data, "parts", op)
        if not isinstance(parts, list):
            raise ValueError(f"formula op {op!r}: 'parts' must be a list")
        decoded = [formula_from_jsonable(p) for p in parts]
        return And(*decoded) if op == "and" else Or(*decoded)
    if op == "implies":
        return Implies(
            formula_from_jsonable(_require(data, "antecedent", op)),
            formula_from_jsonable(_require(data, "consequent", op)),
        )
    if op == "box":
        return Box(formula_from_jsonable(_require(data, "child", op)))
    if op == "diamond":
        return Diamond(formula_from_jsonable(_require(data, "child", op)))
    if op == "knows":
        return Knows(
            _process(data, "process", op),
            formula_from_jsonable(_require(data, "child", op)),
        )
    raise ValueError(f"unknown formula op {op!r}")


def formula_wire_key(data: Any) -> str:
    """Canonical string form of a wire formula (cache/memoization key).

    Two wire payloads describing the same formula tree map to the same
    key regardless of JSON key order, so servers can intern decoded
    Formula objects and keep the model checker's per-Formula memo
    tables hot across requests.
    """
    return json.dumps(data, sort_keys=True, separators=(",", ":"))
