"""Knowledge and time: the formal language of Section 2.3 (after FHMV95).

* :mod:`repro.knowledge.formulas`  -- the formula AST: primitive
  propositions, Boolean connectives, the temporal operators ``Box``
  (always) / ``Diamond`` (eventually), and the epistemic operator K_p.
* :mod:`repro.knowledge.semantics` -- the model checker: truth of a
  formula at a point (R, r, m) of a finite system, with validity
  checking and memoization.
* :mod:`repro.knowledge.analysis`  -- locality, stability, and
  insensitivity-to-failure (Definition 3.3) analyses.
* :mod:`repro.knowledge.paper_formulas` -- the specific formulas the
  paper reasons with: Proposition 3.5's epistemic precondition and the
  DC1-DC3 properties as temporal formulas.
* :mod:`repro.knowledge.reference`  -- the naive point-scanning kernel,
  retained as the differential-testing and benchmarking baseline for
  the class-based fast path.
"""

from repro.knowledge.formulas import (
    FALSE,
    TRUE,
    And,
    Atom,
    Crashed,
    Did,
    Diamond,
    Box,
    Formula,
    Iff,
    Implies,
    Inited,
    Knows,
    Not,
    Or,
    Received,
    Sent,
)
from repro.knowledge.semantics import ModelChecker
from repro.knowledge.analysis import (
    insensitive_to_failure,
    is_local,
    is_stable,
)
from repro.knowledge.chains import chain_closure, has_message_chain
from repro.knowledge.group import GroupChecker, e_iterated, everyone_knows
from repro.knowledge.wire import (
    formula_from_jsonable,
    formula_to_jsonable,
    formula_wire_key,
)

__all__ = [
    "And",
    "Atom",
    "Box",
    "Crashed",
    "Diamond",
    "Did",
    "FALSE",
    "Formula",
    "GroupChecker",
    "Iff",
    "Implies",
    "Inited",
    "Knows",
    "ModelChecker",
    "Not",
    "Or",
    "Received",
    "Sent",
    "TRUE",
    "chain_closure",
    "e_iterated",
    "everyone_knows",
    "formula_from_jsonable",
    "formula_to_jsonable",
    "formula_wire_key",
    "has_message_chain",
    "insensitive_to_failure",
    "is_local",
    "is_stable",
]
