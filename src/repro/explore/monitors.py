"""Online property monitors for explored runs.

A monitor is checked against every distinct run the explorer finds, as
it is found, so a violating branch can short-circuit the search
(``explore(..., stop_on_violation=True)``) and hand its coordinates to
the shrinker.

The finite-horizon subtlety: DC1/DC2 (and detector completeness) are
*liveness* clauses evaluated at the final cut, so a run truncated at the
horizon mid-protocol would flag them spuriously -- the obligation might
have been met one tick past T.  The explorer marks each run with
``meta["quiescent"]``: True iff the final cut is a fixpoint (no pending
sends, in-flight messages, workload, crashes, or protocol intent), which
under the final-cut-repeats-forever convention makes the finite verdict
exact.  Liveness monitors therefore *skip* non-quiescent runs by
default; safety clauses (DC3, accuracy) are checked on every run.  A
violation reported by a monitor is thus genuine: it survives every
infinite extension of the run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Protocol

from repro.core.properties import _each_action, dc3, nudc_holds, udc_holds
from repro.detectors.properties import PropertyVerdict
from repro.model.events import ActionId
from repro.model.run import Run
from repro.sim.failures import CrashPlan

__all__ = [
    "DetectorPropertyMonitor",
    "PredicateMonitor",
    "RunMonitor",
    "UniformityMonitor",
    "Violation",
    "detector_monitor_suite",
    "is_quiescent",
]


class RunMonitor(Protocol):
    """Anything with a name that can pass verdict on one run."""

    @property
    def name(self) -> str: ...

    def check(self, run: Run) -> PropertyVerdict: ...


def is_quiescent(run: Run) -> bool:
    """Did the explorer certify this run's final cut as a fixpoint?

    Runs from the seeded executor (driven to quiescence by
    construction) default to True.
    """
    return bool(run.meta.get("quiescent", True))


@dataclass(frozen=True)
class Violation:
    """One monitored property failing on one explored run.

    ``crash_plan`` and ``trace`` are the branch coordinates:
    ``repro.explore.replay(spec, crash_plan, trace)`` reproduces ``run``
    exactly, which is what makes the counterexample shrinkable.
    """

    monitor: str
    verdict: PropertyVerdict
    run: Run
    crash_plan: CrashPlan
    trace: tuple[int, ...]

    def describe(self) -> str:
        crashes = dict(self.crash_plan.crashes) if self.crash_plan.faulty else {}
        return (
            f"{self.monitor} violated: {self.verdict.witness} "
            f"[crashes={crashes or 'none'}, trace={list(self.trace)}]"
        )


@dataclass(frozen=True)
class UniformityMonitor:
    """UDC (or nUDC) over one explored run.

    ``uniform=True`` checks DC1+DC2+DC3, ``uniform=False`` the
    non-uniform DC1+DC2'+DC3.  On non-quiescent runs only the safety
    clause DC3 is checked (see the module docstring); set
    ``liveness_on_partial=True`` to check everything anyway (useful when
    a caller has its own truncation argument).
    """

    action: ActionId | None = None
    uniform: bool = True
    liveness_on_partial: bool = False

    @property
    def name(self) -> str:
        label = "udc" if self.uniform else "nudc"
        return label if self.action is None else f"{label}[{self.action!r}]"

    def check(self, run: Run) -> PropertyVerdict:
        if self.liveness_on_partial or is_quiescent(run):
            checker = udc_holds if self.uniform else nudc_holds
            return checker(run, self.action)
        if self.action is not None:
            return dc3(run, self.action)
        for a in _each_action(run, None):
            verdict = dc3(run, a)
            if not verdict:
                return verdict
        return PropertyVerdict.ok()


@dataclass(frozen=True)
class DetectorPropertyMonitor:
    """One detector property checker from :mod:`repro.detectors.properties`.

    ``checker`` is e.g. ``strong_completeness`` or ``weak_accuracy``;
    extra keyword arguments (``derived=True`` and friends) ride along.
    Completeness properties are liveness ("eventually suspects") and are
    skipped on non-quiescent runs unless ``safety=True`` declares the
    checker horizon-exact (accuracy properties are).
    """

    checker: Callable[..., PropertyVerdict]
    safety: bool = False
    kwargs: tuple[tuple[str, object], ...] = ()
    label: str = ""

    @property
    def name(self) -> str:
        return self.label or getattr(self.checker, "__name__", "detector")

    def check(self, run: Run) -> PropertyVerdict:
        if not self.safety and not is_quiescent(run):
            return PropertyVerdict.ok()
        return self.checker(run, **dict(self.kwargs))


def detector_monitor_suite(
    *, derived: bool = False, weak: bool = False
) -> tuple[DetectorPropertyMonitor, ...]:
    """The standard monitor battery for a detector's property class.

    Accuracy is a safety clause (exact on any finite prefix, so checked
    even on non-quiescent runs); completeness is liveness (judged only
    at certified-quiescent final cuts).  ``weak=True`` selects the weak
    variants of both.  This is what the negative-path fault-injection
    tests attach under :func:`repro.explore.explore` to prove that
    detector lies and omissions are actually caught.
    """
    from repro.detectors.properties import (
        strong_accuracy,
        strong_completeness,
        weak_accuracy,
        weak_completeness,
    )

    accuracy = weak_accuracy if weak else strong_accuracy
    completeness = weak_completeness if weak else strong_completeness
    kwargs = (("derived", derived),) if derived else ()
    return (
        DetectorPropertyMonitor(accuracy, safety=True, kwargs=kwargs),
        DetectorPropertyMonitor(completeness, kwargs=kwargs),
    )


@dataclass(frozen=True)
class PredicateMonitor:
    """An arbitrary run predicate as a monitor (testing/extension hook)."""

    predicate: Callable[[Run], PropertyVerdict]
    label: str = "predicate"
    quiescent_only: bool = False

    @property
    def name(self) -> str:
        return self.label

    def check(self, run: Run) -> PropertyVerdict:
        if self.quiescent_only and not is_quiescent(run):
            return PropertyVerdict.ok()
        return self.predicate(run)
