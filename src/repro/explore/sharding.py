"""Frontier sharding: drain slices of the search frontier in worker processes.

The explorer's frontier entries are ``(crash_plan, choice-prefix)``
coordinates, and every leaf under an entry is a pure function of
``(spec, entry)`` -- no shared mutable state, no rng.  That makes the
sharding protocol trivial and its determinism easy to argue:

1. the driver widens the frontier breadth-first until it holds at least
   ``workers * _WIDEN_FACTOR`` entries (or drains, in which case no pool
   is spawned);
2. the remaining entries are striped round-robin into
   ``min(len(frontier), workers * _CHUNK_FACTOR)`` chunks -- striping is
   cheap static load balancing (adjacent frontier entries tend to root
   subtrees of similar size, so striping spreads the expensive ones);
   more chunks than workers gives the pool work-stealing slack: a worker
   that finishes a light chunk steals the next queued one;
3. each chunk is drained to its leaf list by
   :func:`repro.explore.scheduler.drain_frontier` in a
   ``ProcessPoolExecutor`` worker, with per-shard ``ExploreStats``; the
   leaf *runs* come back through a shared-memory arena
   (:mod:`repro.columnar.transfer`) rather than the pickled result
   pipe, with plain pickling as the automatic fallback;
4. the driver consumes shard results in *chunk index order* (not
   completion order) and merges stats via ``ExploreStats.merge_shard``.

Only step 4's ordering could introduce worker-count dependence, and it
cannot: the final report deduplicates runs with an order-independent
representative preference and sorts them by canonical ``(plan, trace)``
coordinates, so the run list, violations, and search-shape stats are
identical for every worker count.  (With ``stop_on_violation`` the
short-circuit happens at shard granularity -- *that* exploration stops
after a different prefix of the leaf stream, which is the documented
trade.)

A worker failure (broken pool, unpicklable surprise) degrades softly:
the driver re-drains that chunk serially in-process, preserving the
result exactly at the cost of the parallelism.
"""

from __future__ import annotations

import os
from concurrent.futures import Future, ProcessPoolExecutor
from typing import TYPE_CHECKING, Iterator, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.explore.reduction import ExploreStats
    from repro.explore.scheduler import Leaf, Trace
    from repro.explore.spec import ExploreSpec
    from repro.sim.failures import CrashPlan

__all__ = ["run_sharded"]

#: Chunks per worker: slack for the pool's queue to level uneven subtrees.
_CHUNK_FACTOR = 4


def _explore_chunk(
    spec: "ExploreSpec", entries: Sequence[tuple["CrashPlan", "Trace"]]
) -> tuple[list["Leaf"], "ExploreStats"]:
    """Worker entry point: drain one frontier slice to its leaves.

    Top-level (picklable) by necessity; imports lazily so spawned
    workers pay the import once and fork-start workers pay nothing.
    """
    from repro.explore.scheduler import drain_frontier

    return drain_frontier(spec, entries)


def _explore_chunk_shipped(
    spec: "ExploreSpec", entries: Sequence[tuple["CrashPlan", "Trace"]]
) -> tuple[str, object]:
    """Worker entry point with arena transfer.

    Leaf runs are parked in one shared-memory arena
    (:func:`repro.columnar.ship_runs`); only the (plan, trace,
    fixpoint) coordinates, per-shard stats, and the arena header cross
    the result pipe.  Falls back to plain pickling when
    ``REPRO_POOL_TRANSFER=pickle``, on mixed process tuples, or when
    shared memory is unavailable -- the driver detects the form.
    """
    leaves, stats = _explore_chunk(spec, entries)
    if os.environ.get("REPRO_POOL_TRANSFER", "arena") == "pickle" or not leaves:
        return ("plain", (leaves, stats))
    runs = [run for _plan, _trace, run, _fix in leaves]
    procs = runs[0].processes
    if any(run.processes != procs for run in runs):
        return ("plain", (leaves, stats))
    try:
        from repro.columnar.transfer import ship_runs

        shipped = ship_runs(runs)
    except Exception:  # pragma: no cover - environmental
        return ("plain", (leaves, stats))
    coords = [(plan, trace, fix) for plan, trace, _run, fix in leaves]
    return ("shipped", (coords, stats, shipped))


def _unship_result(
    raw: tuple[str, object],
) -> tuple[list["Leaf"], "ExploreStats"]:
    """Driver side: decode a shard result back into (leaves, stats).

    Raises on a failed shared-memory handoff; the caller's degraded
    path then re-drains the chunk serially (the block is unlinked by
    ``receive_runs`` even on failure).
    """
    tag, payload = raw
    if tag == "plain":
        return payload  # type: ignore[return-value]
    coords, stats, shipped = payload  # type: ignore[misc]
    from repro.columnar.transfer import receive_runs

    runs = receive_runs(shipped)
    leaves: list["Leaf"] = [
        (plan, trace, run, fix)
        for (plan, trace, fix), run in zip(coords, runs)
    ]
    return leaves, stats


def run_sharded(
    spec: "ExploreSpec",
    frontier: Sequence[tuple["CrashPlan", "Trace"]],
    workers: int,
) -> Iterator[tuple[list["Leaf"], "ExploreStats"]]:
    """Drain ``frontier`` across ``workers`` processes, yielding shard
    results in deterministic chunk order.

    A generator so the driver can stop early (``stop_on_violation``):
    closing it cancels the queued chunks without waiting for them.
    """
    from repro.explore.scheduler import drain_frontier

    if workers <= 1 or len(frontier) <= 1:
        yield drain_frontier(spec, frontier)
        return
    n_chunks = min(len(frontier), workers * _CHUNK_FACTOR)
    chunks = [list(frontier[i::n_chunks]) for i in range(n_chunks)]
    pool = ProcessPoolExecutor(max_workers=workers)
    try:
        futures: list[Future[tuple[str, object]]] = [
            pool.submit(_explore_chunk_shipped, spec, chunk) for chunk in chunks
        ]
        for chunk, future in zip(chunks, futures):
            try:
                result = _unship_result(future.result())
            except Exception:
                # Degraded mode: the pool died under this chunk (worker
                # OOM, interpreter teardown).  The chunk is pure, so
                # re-draining serially yields the identical leaves.
                result = drain_frontier(spec, chunk)
            yield result
    finally:
        pool.shutdown(wait=False, cancel_futures=True)
