"""The exploration specification: what to enumerate, and how hard to reduce.

This is the home of :class:`ExploreSpec` (moved here from
``repro.runtime.spec``; the old import path re-exports it with a
``DeprecationWarning``).  The old boolean ``por``/``fingerprints``
toggles are replaced by one ``reduction`` mode plus a
:class:`ReductionConfig` of per-technique switches:

* ``reduction="none"`` -- the unreduced reference semantics: one branch
  per deliverable copy, one drop/accept branch per lossy submission.
  This is the baseline the differential tests compare against.
* ``reduction="dpor"`` (default) -- dynamic partial-order reduction
  over the delivery-choice independence relation: interchangeable
  in-flight copies collapse into one branch (persistent/source sets),
  and drop/accept branches are *elided* entirely -- every dropped-copy
  run is observationally reproduced by an accept-and-defer schedule, so
  the drop branch sleeps (sleep sets from observed conflicts), and
  quiescence is recovered by synthesizing an R5-feasible drop schedule
  for the copies left in flight (see DESIGN.md section 12).
* ``reduction="dpor+symmetry"`` -- additionally quotient the crash-plan
  space by the process-renaming group when the configuration is
  symmetric (assumption A1: failures do not depend on process identity);
  an automatic asymmetry detector (pinned workload initiators, pid-
  mentioning protocol kwargs, attached detectors) disables the quotient
  safely, never unsoundly.

The legacy keyword arguments still work for one release::

    ExploreSpec(..., por=False)        # DeprecationWarning -> reduction="none"
    ExploreSpec(..., fingerprints=...) # DeprecationWarning -> ignored (retired)
"""

from __future__ import annotations

import hashlib
import itertools
import pickle
import warnings
from dataclasses import InitVar, dataclass, replace
from typing import Optional

from repro.detectors.base import DetectorOracle
from repro.model.context import Context
from repro.model.events import ActionId, ProcessId
from repro.sim.executor import ProtocolFactory
from repro.sim.failures import CrashPlan

__all__ = ["ExploreSpec", "ReductionConfig", "REDUCTION_MODES"]

#: The legal ``ExploreSpec.reduction`` values.
REDUCTION_MODES = ("none", "dpor", "dpor+symmetry")


@dataclass(frozen=True)
class ReductionConfig:
    """Per-technique switches inside a reduction mode.

    All techniques are run-set-preserving (the differential tests in
    ``tests/test_explore_reduction_api.py`` assert bit-identical
    ``Knows``/``C_G`` answers against ``reduction="none"``), so the
    switches exist for debugging and ablation, not for soundness.

    * ``delivery_grouping`` -- branch once per distinct ``(sender,
      message)`` class of deliverable copies instead of once per copy;
    * ``drop_elision`` -- never branch on drop/accept: dropped-copy runs
      are reproduced by defer schedules and quiescence is synthesized;
    * ``symmetry`` -- ``"auto"`` quotients crash plans by process
      renaming when the spec passes the asymmetry detector, ``"on"``
      forces the quotient (caller asserts symmetry), ``"off"`` disables
      it; only consulted under ``reduction="dpor+symmetry"``;
    * ``incremental`` -- seed the horizon-T frontier from a cached
      horizon-(T-1) exploration of the otherwise-identical spec.
    """

    delivery_grouping: bool = True
    drop_elision: bool = True
    symmetry: str = "auto"
    incremental: bool = True

    def __post_init__(self) -> None:
        if self.symmetry not in ("auto", "on", "off"):
            raise ValueError("symmetry must be 'auto', 'on', or 'off'")


def _legacy_reduction(
    por: Optional[bool], fingerprints: Optional[bool]
) -> Optional[str]:
    """Map the retired boolean toggles onto a reduction mode (warning)."""
    mode: Optional[str] = None
    if por is not None:
        warnings.warn(
            "ExploreSpec(por=...) is deprecated; use "
            "reduction='dpor' / reduction='none' instead",
            DeprecationWarning,
            stacklevel=4,
        )
        mode = "dpor" if por else "none"
    if fingerprints is not None:
        warnings.warn(
            "ExploreSpec(fingerprints=...) is deprecated and ignored: "
            "fingerprint pruning was retired in favour of dynamic "
            "partial-order reduction (reduction='dpor')",
            DeprecationWarning,
            stacklevel=4,
        )
    return mode


@dataclass(frozen=True)
class ExploreSpec:
    """A bounded exhaustive exploration, declaratively.

    Where :class:`repro.runtime.EnsembleSpec` *samples* adversary
    schedules through seeds, an ``ExploreSpec`` names the whole
    nondeterminism space and asks :func:`repro.explore.explore` to
    enumerate it: every crash pattern with at most ``max_failures``
    crashes at ticks drawn from ``crash_ticks``, and -- per reachable
    configuration -- every delivery/defer choice (message
    reordering/delay) plus, when ``lossy`` is set, every drop/accept
    behaviour the R5 fairness budget permits.  The result is the
    *complete* set of horizon-``T`` runs of the context, which is what
    makes the epistemic kernel's answers sound.

    ``reduction`` selects the state-space reduction mode (see module
    docstring); ``reduction_config`` tunes the individual techniques.
    ``max_executions`` is a safety valve: when hit, exploration stops
    early and the resulting system is marked *incomplete*
    (``ExploreStats.truncated``).
    """

    processes: tuple[ProcessId, ...]
    protocol: ProtocolFactory
    horizon: int = 4
    max_failures: int = 0
    crash_ticks: tuple[int, ...] = (1,)
    workload: tuple[tuple[int, ProcessId, ActionId], ...] = ()
    detector: DetectorOracle | None = None
    lossy: bool = False
    max_consecutive_drops: int = 2
    reduction: str = "dpor"
    reduction_config: ReductionConfig = ReductionConfig()
    strategy: str = "dfs"
    max_executions: int | None = None
    context: Context | None = None
    #: Retired boolean toggles, accepted for one release with a warning.
    por: InitVar[Optional[bool]] = None
    fingerprints: InitVar[Optional[bool]] = None

    def __post_init__(
        self, por: Optional[bool], fingerprints: Optional[bool]
    ) -> None:
        legacy = _legacy_reduction(por, fingerprints)
        if legacy is not None:
            object.__setattr__(self, "reduction", legacy)
        object.__setattr__(self, "processes", tuple(self.processes))
        object.__setattr__(self, "crash_ticks", tuple(self.crash_ticks))
        object.__setattr__(self, "workload", tuple(sorted(self.workload)))
        if not self.processes:
            raise ValueError("an ExploreSpec needs at least one process")
        if self.horizon < 1:
            raise ValueError("horizon must be >= 1")
        if not 0 <= self.max_failures <= len(self.processes):
            raise ValueError("max_failures must be in [0, n]")
        if any(t < 1 for t in self.crash_ticks):
            raise ValueError("crash ticks must be >= 1")
        if self.max_consecutive_drops < 1:
            raise ValueError("max_consecutive_drops must be >= 1 (R5)")
        if self.reduction not in REDUCTION_MODES:
            raise ValueError(
                f"reduction must be one of {REDUCTION_MODES}, "
                f"got {self.reduction!r}"
            )
        if self.strategy not in ("dfs", "bfs"):
            raise ValueError("strategy must be 'dfs' or 'bfs'")

    def with_(self, **changes: object) -> "ExploreSpec":
        """A copy with the given fields replaced (sweep helper).

        Accepts the retired ``por``/``fingerprints`` keys for one
        release, mapping them onto ``reduction`` with a warning.
        """
        legacy = _legacy_reduction(
            changes.pop("por", None),  # type: ignore[arg-type]
            changes.pop("fingerprints", None),  # type: ignore[arg-type]
        )
        if legacy is not None:
            changes.setdefault("reduction", legacy)
        return replace(self, **changes)  # type: ignore[arg-type]

    def crash_plans(self) -> tuple[CrashPlan, ...]:
        """Every crash pattern of the bounded adversary, in a fixed order.

        One plan per (subset S with \\|S\\| <= max_failures, assignment of a
        crash tick from ``crash_ticks`` to each member of S); plans whose
        every crash lands past the horizon collapse onto already-listed
        plans at exploration time (runs are deduplicated by value).
        """
        plans: list[CrashPlan] = [CrashPlan.none()]
        seen = {plans[0]}
        ticks = tuple(dict.fromkeys(self.crash_ticks))
        for size in range(1, self.max_failures + 1):
            for subset in itertools.combinations(self.processes, size):
                for assignment in itertools.product(ticks, repeat=size):
                    plan = CrashPlan.of(dict(zip(subset, assignment)))
                    if plan not in seen:
                        seen.add(plan)
                        plans.append(plan)
        return tuple(plans)

    def digest(self) -> str | None:
        """Stable content hash, or None when the spec is not picklable."""
        try:
            payload = pickle.dumps(
                (
                    "explore-v2",
                    self.processes,
                    self.protocol,
                    self.horizon,
                    self.max_failures,
                    self.crash_ticks,
                    self.workload,
                    self.detector,
                    self.lossy,
                    self.max_consecutive_drops,
                    self.reduction,
                    self.reduction_config,
                    self.strategy,
                    self.max_executions,
                    self.context,
                ),
                protocol=4,
            )
        except Exception:
            return None
        return hashlib.sha256(payload).hexdigest()
