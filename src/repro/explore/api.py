"""The documented entry point for bounded exhaustive exploration.

:class:`Explorer` is a thin, immutable facade over
:func:`repro.explore.scheduler.explore`: it binds a spec to the
exploration options (monitors, short-circuiting, worker count, cache)
so call sites read declaratively and sweeps can clone-and-vary it::

    from repro import Explorer, ExploreSpec

    report = Explorer.from_spec(spec, monitors=[UniformityMonitor()]).run()
    for violation in report.violations:
        witness = Explorer.from_spec(spec).replay(violation.run)

Everything the facade does is expressible through the functional API;
it exists so the *one* obvious way to explore is also the one that
composes with monitors, sharding, and replay correctly.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Sequence

from repro.explore.monitors import RunMonitor
from repro.explore.scheduler import _CACHE_DEFAULT, explore, replay
from repro.explore.spec import ExploreSpec
from repro.model.run import Run
from repro.runtime.report import ExploreReport

__all__ = ["Explorer"]


@dataclass(frozen=True)
class Explorer:
    """A bound exploration: spec plus how to run it.

    Frozen so a configured explorer can be shared and varied with
    :meth:`with_` exactly like the specs themselves.
    """

    spec: ExploreSpec
    monitors: tuple[RunMonitor, ...] = ()
    stop_on_violation: bool = False
    workers: int = 1
    cache: object = field(default=_CACHE_DEFAULT, repr=False)

    @classmethod
    def from_spec(
        cls,
        spec: ExploreSpec,
        *,
        monitors: Sequence[RunMonitor] = (),
        stop_on_violation: bool = False,
        workers: int = 1,
        cache: object = _CACHE_DEFAULT,
    ) -> "Explorer":
        return cls(
            spec=spec,
            monitors=tuple(monitors),
            stop_on_violation=stop_on_violation,
            workers=workers,
            cache=cache,
        )

    def with_(self, **changes: object) -> "Explorer":
        """A copy with the given fields replaced."""
        return replace(self, **changes)  # type: ignore[arg-type]

    def run(self) -> ExploreReport:
        """Enumerate the spec's bounded run space; see :func:`explore`."""
        return explore(
            self.spec,
            monitors=self.monitors,
            stop_on_violation=self.stop_on_violation,
            cache=self.cache,
            workers=self.workers,
        )

    def replay(self, run: Run) -> Run:
        """Re-execute one explored run from its ``meta`` coordinates.

        Works for symmetry-mirrored runs too: their ``meta`` carries the
        renaming needed to replay the canonical preimage and rename the
        result back.
        """
        return replay(
            self.spec,
            run.meta["crash_plan"],
            tuple(run.meta["trace"]),
            renaming=tuple(run.meta.get("renaming", ())) or None,
        )
