"""Process-permutation symmetry quotienting for the explorer.

Assumption A1 of the paper makes failures independent of process
identity, and a *uniform* joint protocol runs the same code at every
process -- so at the level of the paper's model the run set is
equivariant under renaming processes nothing else pins down.  The
*executor* is less symmetric than the model: it serializes multi-
destination sends in global process-list order (one outbox event per
tick), so a process earlier in the list receives broadcast copies
earlier, and orbit crash plans can have genuinely different run sets
(DESIGN.md section 12 records the counterexample).  Renaming a run's
timelines is therefore only sound for processes that are *bystanders*:
they neither send nor receive nor get mentioned by anyone -- their
whole observable contribution is crash timing, which A1 makes
symmetric.

The quotient is taken in two layers:

* the **static asymmetry detector** (:func:`symmetric_spec`) requires a
  detector-free spec, a :class:`repro.sim.process.UniformProtocol` with
  pid-free kwargs, and an *empty workload* -- the cheap necessary
  conditions for crash-only dynamics.  Workload-named pids (and pids in
  action ids) are additionally *pinned* out of the permutation group,
  so ``symmetry="on"`` with a workload degrades to a smaller group
  instead of breaking.
* the **dynamic asymmetry detector** is the guarantee: while exploring
  canonical plans the scheduler checks every produced run with
  :func:`run_respects_quotient`; the first run whose traffic touches a
  movable process disables the quotient and the folded plans are
  explored directly.  Symmetry can therefore *never* change the result,
  only the cost of obtaining it.

Mirrored runs carry ``meta["renaming"]`` -- the non-identity
``(canonical_pid, actual_pid)`` pairs -- so
:func:`repro.explore.replay` can re-execute the canonical preimage and
rename the result, keeping every cached/monitored run replayable.
"""

from __future__ import annotations

from typing import Mapping, Optional

from repro.model.events import (
    CrashEvent,
    DoEvent,
    Event,
    GeneralizedSuspicion,
    InitEvent,
    Message,
    ProcessId,
    ReceiveEvent,
    SendEvent,
    StandardSuspicion,
    SuspectEvent,
)
from repro.model.run import Run
from repro.sim.failures import CrashPlan
from repro.sim.process import UniformProtocol

from repro.explore.spec import ExploreSpec

__all__ = [
    "Renaming",
    "SymmetryQuotient",
    "pinned_processes",
    "rename_plan",
    "rename_run",
    "run_respects_quotient",
    "symmetric_spec",
    "symmetry_quotient",
]

#: The serialized form of a permutation: sorted non-identity
#: ``(canonical_pid, actual_pid)`` pairs.
Renaming = tuple[tuple[ProcessId, ProcessId], ...]


def _mentions_pid(value: object, pids: frozenset[str]) -> bool:
    """Does a (nested, hashable) value embed a process id string?"""
    if isinstance(value, str):
        return value in pids
    if isinstance(value, (tuple, list, frozenset, set)):
        return any(_mentions_pid(item, pids) for item in value)
    if isinstance(value, Mapping):
        return any(
            _mentions_pid(k, pids) or _mentions_pid(v, pids)
            for k, v in value.items()
        )
    return False


def pinned_processes(spec: ExploreSpec) -> frozenset[ProcessId]:
    """Processes the workload names, which every permutation must fix."""
    pids = frozenset(spec.processes)
    pinned: set[ProcessId] = set()
    for _tick, pid, action in spec.workload:
        pinned.add(pid)
        for part in action:
            if isinstance(part, str) and part in pids:
                pinned.add(part)
    return frozenset(pinned)


def symmetric_spec(spec: ExploreSpec) -> bool:
    """The static asymmetry detector: may the renaming quotient be tried?

    Conservative by construction -- any ingredient that *could* treat
    processes asymmetrically disables the quotient.  A non-empty
    workload initiates coordination traffic, and the executor's
    serialized broadcast order makes message-receiving processes
    order-distinguishable, so only crash-only dynamics pass.  This is a
    *necessary* screen; :func:`run_respects_quotient` is the per-run
    guarantee.
    """
    if spec.detector is not None:
        return False
    if spec.workload:
        return False
    if not isinstance(spec.protocol, UniformProtocol):
        return False
    pids = frozenset(spec.processes)
    return not any(
        _mentions_pid(key, pids) or _mentions_pid(value, pids)
        for key, value in spec.protocol.kwargs
    )


def run_respects_quotient(run: Run, movable: frozenset[ProcessId]) -> bool:
    """The dynamic asymmetry detector: is renaming this run sound?

    True iff every movable process is a pure bystander in ``run``: its
    own timeline holds nothing but its crash event, and no other
    process's event names it (send target, receive source, suspicion,
    payload, action id).  Then renaming movable pids only permutes crash
    timelines -- trivially equivariant.  The scheduler calls this on
    every canonical-plan run and falls back to direct exploration of
    the folded plans on the first False.
    """
    for pid in run.processes:
        for _tick, event in run.timeline(pid):
            if pid in movable:
                if not isinstance(event, CrashEvent):
                    return False
                continue
            if isinstance(event, (SendEvent, ReceiveEvent)):
                other = (
                    event.receiver
                    if isinstance(event, SendEvent)
                    else event.sender
                )
                if other in movable or _mentions_pid(
                    event.message.payload, movable
                ):
                    return False
            elif isinstance(event, (InitEvent, DoEvent)):
                if _mentions_pid(event.action, movable):
                    return False
            elif isinstance(event, SuspectEvent):  # pragma: no cover
                return False  # detectors already fail the static gate
    return True


def _apply(mapping: Mapping[ProcessId, ProcessId], pid: ProcessId) -> ProcessId:
    return mapping.get(pid, pid)


def rename_plan(
    plan: CrashPlan, mapping: Mapping[ProcessId, ProcessId]
) -> CrashPlan:
    """The crash plan with every faulty process renamed."""
    return CrashPlan.of({_apply(mapping, p): t for p, t in plan.crashes})


def _rename_value(value: object, mapping: Mapping[ProcessId, ProcessId]) -> object:
    """Rename pid strings inside a payload/action value.

    Process ids are plain strings, so any string equal to a pid is
    treated as naming that process -- the repo-wide convention (action
    ids tag their initiator, payloads embed sender pids).
    """
    if isinstance(value, str):
        return mapping.get(value, value)
    if isinstance(value, tuple):
        return tuple(_rename_value(item, mapping) for item in value)
    if isinstance(value, frozenset):
        return frozenset(_rename_value(item, mapping) for item in value)
    return value


def _rename_event(event: Event, mapping: Mapping[ProcessId, ProcessId]) -> Event:
    if isinstance(event, SendEvent):
        return SendEvent(
            _apply(mapping, event.sender),
            _apply(mapping, event.receiver),
            Message(
                event.message.kind,
                _rename_value(event.message.payload, mapping),
            ),
        )
    if isinstance(event, ReceiveEvent):
        return ReceiveEvent(
            _apply(mapping, event.receiver),
            _apply(mapping, event.sender),
            Message(
                event.message.kind,
                _rename_value(event.message.payload, mapping),
            ),
        )
    if isinstance(event, InitEvent):
        return InitEvent(
            _apply(mapping, event.process),
            _rename_value(event.action, mapping),  # type: ignore[arg-type]
        )
    if isinstance(event, DoEvent):
        return DoEvent(
            _apply(mapping, event.process),
            _rename_value(event.action, mapping),  # type: ignore[arg-type]
        )
    if isinstance(event, CrashEvent):
        return CrashEvent(_apply(mapping, event.process))
    if isinstance(event, SuspectEvent):  # pragma: no cover - symmetric specs
        report = event.report  # have no detector; kept for completeness
        renamed = frozenset(_apply(mapping, p) for p in report.suspects)
        if isinstance(report, GeneralizedSuspicion):
            return SuspectEvent(
                _apply(mapping, event.process),
                GeneralizedSuspicion(renamed, report.count),
                derived=event.derived,
            )
        return SuspectEvent(
            _apply(mapping, event.process),
            StandardSuspicion(renamed),
            derived=event.derived,
        )
    raise TypeError(f"cannot rename event {event!r}")  # pragma: no cover


def rename_run(
    run: Run,
    mapping: Mapping[ProcessId, ProcessId],
    *,
    plan: CrashPlan,
) -> Run:
    """The equivariant image of a run under a process renaming.

    ``meta`` keeps the canonical trace (it replays the canonical
    preimage) and records the renaming, so
    ``replay(spec, plan, trace, renaming=...)`` round-trips.
    """
    timelines = {
        _apply(mapping, p): [
            (t, _rename_event(e, mapping)) for t, e in run.timeline(p)
        ]
        for p in run.processes
    }
    meta = dict(run.meta)
    meta["crash_plan"] = plan
    meta["renaming"] = tuple(
        sorted((src, dst) for src, dst in mapping.items() if src != dst)
    )
    return Run(run.processes, timelines, duration=run.duration, meta=meta)


class SymmetryQuotient:
    """The crash-plan orbit structure of one symmetric spec.

    ``canonical_plans`` lists one representative per orbit in the
    original plan order; ``mirrors_of(plan)`` yields the folded orbit
    members with the witness permutation (canonical -> actual) that
    reconstructs their runs.
    """

    def __init__(
        self,
        canonical_plans: tuple[CrashPlan, ...],
        mirrors: dict[CrashPlan, list[tuple[CrashPlan, dict[ProcessId, ProcessId]]]],
        movable: frozenset[ProcessId],
    ) -> None:
        self.canonical_plans = canonical_plans
        self._mirrors = mirrors
        self.movable = movable

    def mirrors_of(
        self, plan: CrashPlan
    ) -> list[tuple[CrashPlan, dict[ProcessId, ProcessId]]]:
        return self._mirrors.get(plan, [])

    @property
    def folded(self) -> int:
        return sum(len(v) for v in self._mirrors.values())

    def folded_plans(self) -> list[CrashPlan]:
        """Every non-representative plan (the dynamic-disable fallback
        explores exactly these), in canonical-plan-major order."""
        return [
            mirrored
            for plan in self.canonical_plans
            for mirrored, _pi in self._mirrors.get(plan, [])
        ]


def symmetry_quotient(
    spec: ExploreSpec, plans: tuple[CrashPlan, ...]
) -> Optional[SymmetryQuotient]:
    """Fold the crash plans into orbits, or None when symmetry is off.

    Honors ``spec.reduction_config.symmetry``: ``"off"`` disables,
    ``"auto"`` requires :func:`symmetric_spec`, ``"on"`` trusts the
    caller's symmetry assertion (the dynamic per-run check still
    guards the result either way; workload pinning still applies).

    A plan's *canonical form* assigns its movable crash-tick multiset,
    sorted ascending, to the earliest movable processes (pinned crashes
    stay put) -- computable directly, without enumerating the
    ``|movable|!`` permutations.  The witness maps canonical crashed
    pids to actual crashed pids matched by (tick, pid) order, and the
    bystander remainders positionally, so it is deterministic.
    """
    policy = spec.reduction_config.symmetry
    if policy == "off":
        return None
    if policy == "auto" and not symmetric_spec(spec):
        return None
    pinned = pinned_processes(spec)
    movable_list = [p for p in spec.processes if p not in pinned]
    if len(movable_list) < 2:
        return None  # the renaming group is trivial
    movable = frozenset(movable_list)
    canonical: list[CrashPlan] = []
    mirrors: dict[CrashPlan, list[tuple[CrashPlan, dict[ProcessId, ProcessId]]]] = {}
    for plan in plans:
        pinned_crashes = {p: t for p, t in plan.crashes if p not in movable}
        mov_crashes = [(p, t) for p, t in plan.crashes if p in movable]
        ticks = sorted(t for _p, t in mov_crashes)
        canon = CrashPlan.of(
            pinned_crashes
            | {movable_list[i]: ticks[i] for i in range(len(ticks))}
        )
        if plan == canon:
            canonical.append(plan)
            continue
        actual_by_tick = [
            p for p, _t in sorted(mov_crashes, key=lambda pt: (pt[1], pt[0]))
        ]
        mapping: dict[ProcessId, ProcessId] = dict(
            zip(movable_list[: len(ticks)], actual_by_tick)
        )
        taken = set(actual_by_tick)
        spare = iter(p for p in movable_list if p not in taken)
        for canon_pid in movable_list[len(ticks) :]:
            mapping[canon_pid] = next(spare)
        mirrors.setdefault(canon, []).append((plan, mapping))
    return SymmetryQuotient(tuple(canonical), mirrors, movable)
