"""State-space reduction for the bounded explorer.

Two run-set-preserving reductions keep the bounded search tractable:

* **Fingerprint pruning** -- after each simulated tick the explorer
  canonicalizes its full configuration (timelines, outboxes, channel
  multiset, crash state, pending crashes/inits, fairness streaks) into a
  hashable fingerprint.  A branch that reaches a configuration some
  earlier branch already reached is abandoned: the suffix tree below
  that configuration is a pure function of the configuration, so it was
  (or will be) enumerated from the first encounter.  Soundness rests on
  the repo-wide invariant that protocol and detector state are functions
  of the visible configuration -- protocol state is a function of the
  local timeline by construction (see :mod:`repro.sim.process`), so it
  is deliberately *excluded* from the fingerprint; stochastic detectors
  break the invariant, so fingerprinting auto-disables when a detector
  is attached (``ExploreStats.fingerprints_active``).

* **Sleep-set/commutativity POR** -- at a delivery choice point,
  in-flight copies of the same ``(sender, message)`` pair are
  interchangeable: consuming either appends the same ``ReceiveEvent``
  and leaves behaviourally identical residual channels (explorer
  envelopes differ only in bookkeeping fields).  The explorer therefore
  branches once per *distinct* pair rather than once per copy, and
  similarly suppresses drop/accept branches that cannot be observed
  within the horizon (copies addressed to crashed processes, copies
  that cannot be delivered before the horizon).  Suppressed siblings
  are counted in ``ExploreStats.por_skipped``.

Both reductions preserve the *set of runs* exactly -- the acceptance
check in ``tests/test_explore_scheduler.py`` asserts bit-identical
``Knows``/``C_G`` answers between a POR+fingerprint exploration and a
reduction-free baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import TYPE_CHECKING, Mapping, Sequence

from repro.model.events import Event, ProcessId

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.network import Envelope


@dataclass
class ExploreStats:
    """Observability counters for one exploration.

    * ``executions`` -- complete replays of the deterministic executor
      (one per frontier entry actually expanded);
    * ``states_expanded`` -- tick-configurations simulated across all
      executions;
    * ``states_pruned`` -- executions abandoned because their fresh
      suffix reached an already-seen fingerprint;
    * ``choice_points`` / ``branches_scheduled`` -- nondeterministic
      decisions encountered, and the alternative branches pushed onto
      the frontier from them;
    * ``por_skipped`` -- alternatives suppressed by the commutativity
      reduction (interchangeable delivery copies, unobservable drops);
    * ``runs_enumerated`` / ``runs_unique`` -- leaves reached vs.
      distinct runs kept after value-level deduplication;
    * ``monitor_checks`` / ``violations`` -- property-monitor activity;
    * ``truncated`` -- the ``max_executions`` budget stopped exploration
      early (the resulting system is *not* complete);
    * ``stopped_on_violation`` -- a monitor short-circuited exploration;
    * ``fingerprints_active`` / ``por_active`` -- the reductions that
      actually ran (fingerprinting auto-disables under stochastic
      detectors).
    """

    executions: int = 0
    states_expanded: int = 0
    states_pruned: int = 0
    choice_points: int = 0
    branches_scheduled: int = 0
    por_skipped: int = 0
    runs_enumerated: int = 0
    runs_unique: int = 0
    monitor_checks: int = 0
    violations: int = 0
    max_frontier: int = 0
    truncated: bool = False
    stopped_on_violation: bool = False
    fingerprints_active: bool = False
    por_active: bool = False

    @property
    def exhaustive(self) -> bool:
        """True iff the whole bounded space was enumerated."""
        return not (self.truncated or self.stopped_on_violation)

    def as_dict(self) -> dict[str, object]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def render(self) -> str:
        """One readable line of the headline counters."""
        reductions = []
        if self.por_active:
            reductions.append("por")
        if self.fingerprints_active:
            reductions.append("fingerprints")
        mode = "+".join(reductions) if reductions else "none"
        tail = ""
        if self.truncated:
            tail = "; TRUNCATED (budget)"
        elif self.stopped_on_violation:
            tail = "; stopped on violation"
        return (
            f"explore: {self.runs_unique} runs "
            f"({self.runs_enumerated} leaves) from {self.executions} "
            f"executions over {self.states_expanded} states; "
            f"{self.choice_points} choice points, "
            f"{self.branches_scheduled} branches, "
            f"{self.states_pruned} pruned, {self.por_skipped} POR-skipped "
            f"[reductions: {mode}]{tail}"
        )


#: One canonicalized in-flight copy: (receiver, sender, message,
#: remaining delay clamped at zero).  Copies of the same pair that are
#: already deliverable fingerprint identically regardless of when they
#: were sent -- exactly the interchangeability POR exploits.
CanonicalEnvelope = tuple[ProcessId, ProcessId, object, int]

#: The full canonical configuration; used as an exact dict key, never
#: reduced to a 64-bit hash, so a collision can only cost memory --
#: not soundness.
Fingerprint = tuple[object, ...]


def canonical_channel(
    in_flight: Mapping[ProcessId, Sequence["Envelope"]], tick: int
) -> tuple[CanonicalEnvelope, ...]:
    """The channel contents as a sorted multiset of canonical copies."""
    copies: list[CanonicalEnvelope] = []
    for receiver, envelopes in in_flight.items():
        for env in envelopes:
            copies.append(
                (
                    receiver,
                    env.sender,
                    env.message,
                    max(env.deliver_at - tick, 0),
                )
            )
    copies.sort(key=repr)
    return tuple(copies)


def state_fingerprint(
    *,
    tick: int,
    processes: Sequence[ProcessId],
    timelines: Mapping[ProcessId, Sequence[tuple[int, Event]]],
    outboxes: Mapping[ProcessId, Sequence[Event]],
    crashed: frozenset[ProcessId],
    pending_crashes: tuple[tuple[int, tuple[ProcessId, ...]], ...],
    pending_inits: Mapping[ProcessId, Sequence[tuple[int, object]]],
    channel: tuple[CanonicalEnvelope, ...],
    drop_streaks: tuple[tuple[object, int], ...],
) -> Fingerprint:
    """Canonicalize one explorer configuration.

    Everything the future of an execution can depend on is included:
    the timelines determine protocol (and deterministic detector) state,
    the channel multiset and streaks determine delivery/drop options,
    and the pending crash/init schedules determine the environment's
    remaining moves.  Two executions whose fingerprints are equal have
    identical suffix trees.
    """
    return (
        tick,
        tuple(tuple(timelines[p]) for p in processes),
        tuple(tuple(outboxes[p]) for p in processes),
        crashed,
        pending_crashes,
        tuple(tuple(pending_inits[p]) for p in processes),
        channel,
        drop_streaks,
    )


class FingerprintSet:
    """The seen-set of canonical configurations (exact, not hashed down)."""

    def __init__(self) -> None:
        self._seen: set[Fingerprint] = set()

    def __len__(self) -> int:
        return len(self._seen)

    def check_and_add(self, fingerprint: Fingerprint) -> bool:
        """True iff the configuration was already seen (=> prune)."""
        if fingerprint in self._seen:
            return True
        self._seen.add(fingerprint)
        return False


def group_deliverable(
    ready: Sequence["Envelope"],
) -> list[list["Envelope"]]:
    """Group deliverable envelopes into interchangeable classes.

    Copies with equal ``(sender, message)`` are commuting alternatives:
    consuming any of them appends the same event and leaves canonically
    equal residual channels.  Groups keep the channel's oldest-first
    order (by the first member), so choice indices are deterministic.
    """
    groups: dict[tuple[ProcessId, object], list["Envelope"]] = {}
    order: list[tuple[ProcessId, object]] = []
    for env in ready:
        key = (env.sender, env.message)
        bucket = groups.get(key)
        if bucket is None:
            groups[key] = [env]
            order.append(key)
        else:
            bucket.append(env)
    return [groups[key] for key in order]
