"""State-space reduction for the bounded explorer.

The explorer's branch structure has two sources of nondeterminism per
reachable configuration: which deliverable copy a process consumes (or
whether it defers them all), and -- on lossy channels -- whether a
submitted copy is dropped.  :mod:`repro.explore.scheduler` applies two
dynamic partial-order reductions over that structure, both
run-set-preserving:

* **Delivery grouping (persistent/source sets)** -- in-flight copies of
  the same ``(sender, message)`` pair are interchangeable: consuming
  either appends the same ``ReceiveEvent`` and leaves behaviourally
  identical residual channels, so the dependency relation cannot
  distinguish them.  The explorer branches once per *distinct* pair
  rather than once per copy; collapsed siblings are counted in
  ``ExploreStats.deliveries_collapsed``.

* **Drop elision (sleep sets)** -- the drop/accept branch of a lossy
  submission never conflicts with any observable transition: a dropped
  copy produces exactly the runs that an accepted-but-never-delivered
  copy produces (defer-all is always available), so the drop branch
  enters the sleep set the moment the accept branch is taken and is
  never scheduled.  The only observable the branch carried -- whether
  the final cut is *quiescent* -- is recovered post hoc by
  :func:`drop_schedule_feasible`: a leaf with copies still in flight is
  quiescent iff an R5-respecting drop schedule exists that drops every
  one of them.  Elided branches are counted in
  ``ExploreStats.drops_elided``.

The fingerprint-pruning machinery that used to live here (a
``FingerprintSet`` of canonicalized configurations) is retired: measured
against real workloads it never pruned anything (``states_pruned`` was
0 across the committed benchmarks) while its canonicalization dominated
the hot loop.  See DESIGN.md section 12 for the full soundness argument
of the reductions that replaced it.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import TYPE_CHECKING, Sequence

from repro.model.events import ProcessId

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.network import Envelope


@dataclass
class ExploreStats:
    """Observability counters for one exploration.

    * ``executions`` -- complete replays of the deterministic executor
      (one per frontier entry actually expanded);
    * ``states_expanded`` -- tick-configurations simulated across all
      executions;
    * ``choice_points`` / ``branches_scheduled`` -- nondeterministic
      decisions encountered, and the alternative branches pushed onto
      the frontier from them;
    * ``deliveries_collapsed`` -- delivery alternatives suppressed by
      grouping interchangeable copies (persistent-set reduction);
    * ``drops_elided`` -- drop/accept branches never scheduled because
      the drop branch sleeps (sleep-set reduction);
    * ``symmetry_plans_folded`` -- crash plans folded into orbit
      representatives by the process-renaming quotient;
    * ``symmetry_runs_mirrored`` -- runs reconstructed for folded plans
      by renaming a representative's runs;
    * ``seeded_from_horizon`` -- nonzero T' when the frontier was seeded
      from a cached horizon-T' exploration (incremental extension);
    * ``fixpoint_leaves_reused`` -- quiescent cached leaves extended to
      the new horizon without re-execution;
    * ``runs_enumerated`` / ``runs_unique`` -- leaves reached vs.
      distinct runs kept after value-level deduplication;
    * ``monitor_checks`` / ``violations`` -- property-monitor activity;
    * ``truncated`` -- the ``max_executions`` budget stopped exploration
      early (the resulting system is *not* complete);
    * ``stopped_on_violation`` -- a monitor short-circuited exploration;
    * ``reduction`` / ``symmetry_active`` / ``workers`` -- the mode that
      actually ran (symmetry auto-disables on asymmetric specs).
    """

    executions: int = 0
    states_expanded: int = 0
    choice_points: int = 0
    branches_scheduled: int = 0
    deliveries_collapsed: int = 0
    drops_elided: int = 0
    symmetry_plans_folded: int = 0
    symmetry_runs_mirrored: int = 0
    seeded_from_horizon: int = 0
    fixpoint_leaves_reused: int = 0
    runs_enumerated: int = 0
    runs_unique: int = 0
    monitor_checks: int = 0
    violations: int = 0
    max_frontier: int = 0
    truncated: bool = False
    stopped_on_violation: bool = False
    reduction: str = "dpor"
    symmetry_active: bool = False
    workers: int = 1

    @property
    def exhaustive(self) -> bool:
        """True iff the whole bounded space was enumerated."""
        return not (self.truncated or self.stopped_on_violation)

    def as_dict(self) -> dict[str, object]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def merge_shard(self, other: "ExploreStats") -> None:
        """Fold one worker shard's counters into the driver's stats.

        Only the additive search counters merge; mode flags and
        monitor/dedup counters are driver-owned.
        """
        self.executions += other.executions
        self.states_expanded += other.states_expanded
        self.choice_points += other.choice_points
        self.branches_scheduled += other.branches_scheduled
        self.deliveries_collapsed += other.deliveries_collapsed
        self.drops_elided += other.drops_elided
        self.max_frontier = max(self.max_frontier, other.max_frontier)

    def render(self) -> str:
        """One readable line of the headline counters."""
        mode = self.reduction
        if self.reduction == "dpor+symmetry" and not self.symmetry_active:
            mode = "dpor (symmetry auto-disabled)"
        tail = ""
        if self.truncated:
            tail = "; TRUNCATED (budget)"
        elif self.stopped_on_violation:
            tail = "; stopped on violation"
        if self.seeded_from_horizon:
            tail += (
                f"; seeded from T={self.seeded_from_horizon} "
                f"({self.fixpoint_leaves_reused} fixpoint leaves reused)"
            )
        if self.workers > 1:
            tail += f"; {self.workers} workers"
        return (
            f"explore: {self.runs_unique} runs "
            f"({self.runs_enumerated} leaves) from {self.executions} "
            f"executions over {self.states_expanded} states; "
            f"{self.choice_points} choice points, "
            f"{self.branches_scheduled} branches, "
            f"{self.deliveries_collapsed} deliveries collapsed, "
            f"{self.drops_elided} drops elided, "
            f"{self.symmetry_plans_folded} plans folded "
            f"[reduction: {mode}]{tail}"
        )


def drop_schedule_feasible(delivered_flags: Sequence[bool], budget: int) -> bool:
    """Can every undelivered copy of one channel key be dropped under R5?

    ``delivered_flags`` is the submission-ordered history of one
    ``(sender, receiver, message)`` key: True where the copy was
    actually delivered in the execution, False where it is still in
    flight at the horizon.  A drop schedule that drops exactly the False
    copies respects the fair-loss budget iff no run of more than
    ``budget`` consecutive False entries exists (each delivered copy
    resets the channel's consecutive-drop streak; the budget forces
    every (budget+1)-th consecutive copy through, so a longer False run
    could never have been all-dropped).
    """
    streak = 0
    for delivered in delivered_flags:
        if delivered:
            streak = 0
        else:
            streak += 1
            if streak > budget:
                return False
    return True


def group_deliverable(
    ready: Sequence["Envelope"],
) -> list[list["Envelope"]]:
    """Group deliverable envelopes into interchangeable classes.

    Copies with equal ``(sender, message)`` are commuting alternatives:
    consuming any of them appends the same event and leaves canonically
    equal residual channels.  Groups keep the channel's oldest-first
    order (by the first member), so choice indices are deterministic.
    """
    groups: dict[tuple[ProcessId, object], list["Envelope"]] = {}
    order: list[tuple[ProcessId, object]] = []
    for env in ready:
        key = (env.sender, env.message)
        bucket = groups.get(key)
        if bucket is None:
            groups[key] = [env]
            order.append(key)
        else:
            bucket.append(env)
    return [groups[key] for key in order]
