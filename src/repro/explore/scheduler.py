"""The bounded exhaustive explorer: every run of a context up to horizon T.

Where :class:`repro.sim.executor.Executor` *samples* one adversary
schedule per seed, the explorer *enumerates* them.  A run is produced by
a deterministic replay executor that mirrors the seeded executor's tick
semantics exactly (same per-tick event priority, same crash handling,
same channel bookkeeping) but replaces every ``random.Random`` draw with
an explicit **choice**:

* the crash pattern is a top-level branch -- one root per plan from
  :meth:`repro.explore.spec.ExploreSpec.crash_plans` (A1/A5_t, bounded
  by ``max_failures``);
* per live process per tick, when deliverable envelopes exist, a choice
  selects which in-flight message to consume -- or defers them all one
  tick (this single primitive realizes message delay *and* reordering:
  every pattern the seeded adversary's delay draws and postponements can
  produce corresponds to some assignment of defer choices);
* under ``reduction="none"`` only, per submitted copy on a lossy
  channel, a drop/accept choice clamped by the R5 fairness budget.
  Under DPOR the drop branch is *elided*: a dropped copy is
  observationally an accepted copy that is never delivered, so the
  defer choices above already cover every drop pattern, and the final
  cut's quiescence is recovered by synthesizing an R5-feasible drop
  schedule (:func:`repro.explore.reduction.drop_schedule_feasible`).

Executions are *stateless-model-checking* style: a frontier entry is a
``(crash_plan, choice-prefix)`` pair; replaying the prefix and then
greedily taking option 0 (the most cooperative alternative: deliver the
oldest message, accept the copy) yields one complete run while
recording how many options each fresh decision had, and every untaken
alternative becomes a new frontier entry.  Exploration is exhaustive
when the frontier drains.  The statelessness is what makes the search
*shardable*: any slice of the frontier can be drained in any process
(:mod:`repro.explore.sharding`) and the leaves merged deterministically,
because every leaf is a pure function of its coordinates.

Scope: the explored nondeterminism is crash timing and channel
behaviour -- the two adversary dimensions the paper's proofs quantify
over.  Processes run at full speed (the executor's activation-skipping
is a derived behaviour: a skipped tick is a defer plus a delayed
protocol step), and stochastic detector noise is *not* enumerated; a
detector attached to an ``ExploreSpec`` is polled with a fixed-seed rng,
so it must be deterministic for completeness claims to cover it.
"""

from __future__ import annotations

import random
import time
from collections import deque
from typing import Deque, Iterable, Iterator, Optional, Sequence

from repro.detectors.base import GroundTruthView, NoDetector
from repro.explore.monitors import RunMonitor, Violation
from repro.explore.reduction import (
    ExploreStats,
    drop_schedule_feasible,
    group_deliverable,
)
from repro.explore.spec import ExploreSpec
from repro.explore.symmetry import (
    Renaming,
    SymmetryQuotient,
    rename_plan,
    rename_run,
    run_respects_quotient,
    symmetry_quotient,
)
from repro.model.events import (
    ActionId,
    CrashEvent,
    DoEvent,
    Event,
    InitEvent,
    Message,
    ProcessId,
    ReceiveEvent,
    SendEvent,
    SuspectEvent,
)
from repro.model.run import Run, validate_run
from repro.runtime.report import ExploreReport
from repro.sim.failures import CrashPlan
from repro.sim.network import ChannelKey, Envelope
from repro.sim.process import ProcessEnv

__all__ = ["ExecutionResult", "Leaf", "drain_frontier", "explore", "replay"]

#: A choice trace: the option index taken at each decision point, in
#: encounter order.  The empty trace is the all-cooperative run.
Trace = tuple[int, ...]

#: One search leaf: its coordinates, the run it produced, and whether
#: the final cut is a strict fixpoint (reusable for horizon extension).
Leaf = tuple[CrashPlan, Trace, Run, bool]

_CACHE_DEFAULT = object()  # sentinel: "use the process-wide default cache"

#: Driver-side breadth-first widening target, per worker, before the
#: frontier is striped into shards.
_WIDEN_FACTOR = 8


class ExecutionResult:
    """What one deterministic bounded execution produced."""

    __slots__ = ("run", "taken", "option_counts", "fixpoint")

    def __init__(
        self,
        run: Run,
        taken: Trace,
        option_counts: tuple[int, ...],
        fixpoint: bool,
    ) -> None:
        self.run = run
        self.taken = taken
        self.option_counts = option_counts
        self.fixpoint = fixpoint


class _BoundedExecution:
    """One replay: (spec, crash plan, choice trace) -> Run, deterministically.

    Mirrors :class:`repro.sim.executor.Executor` tick-for-tick with the
    rng replaced by :meth:`_choose`.  Out-of-range prefix choices are
    clamped (never produced by the frontier, but shrink candidates may
    mutate a trace into a region where fewer options exist).
    """

    def __init__(
        self,
        spec: ExploreSpec,
        plan: CrashPlan,
        prefix: Trace,
        stats: ExploreStats,
    ) -> None:
        self.spec = spec
        self.plan = plan
        self.prefix = prefix
        self.stats = stats
        reduced = spec.reduction != "none"
        self._group = reduced and spec.reduction_config.delivery_grouping
        self._elide = (
            reduced and spec.reduction_config.drop_elision and spec.lossy
        )
        self.processes = spec.processes
        self.envs = {p: ProcessEnv(p, self.processes) for p in self.processes}
        self.protocols = {
            p: spec.protocol(p, self.envs[p]) for p in self.processes
        }
        self._poll = spec.detector is not None
        if self._poll:
            self.detector = (spec.detector or NoDetector()).fresh()
            self._rng = random.Random(0)  # consumed only by detector oracles
            self._detector_name = self.detector.name
        else:
            # No detector: skip oracle + rng construction on the hot path
            self.detector = None
            self._rng = None
            self._detector_name = NoDetector.name
        self._timelines: dict[ProcessId, list[tuple[int, Event]]] = {
            p: [] for p in self.processes
        }
        self._crashed: set[ProcessId] = set()
        self._actual_crash_ticks: dict[ProcessId, int] = {}
        self.truth = GroundTruthView(
            self.processes, plan.faulty, self._actual_crash_ticks
        )
        by_tick: dict[int, list[ProcessId]] = {}
        for pid in self.processes:
            planned = plan.crash_tick(pid)
            if planned is not None:
                by_tick.setdefault(max(planned, 1), []).append(pid)
        self._crash_index = {t: tuple(pids) for t, pids in by_tick.items()}
        self._pending_inits: dict[ProcessId, list[tuple[int, ActionId]]] = {
            p: [] for p in self.processes
        }
        for tick, pid, action in sorted(spec.workload):
            self._pending_inits[pid].append((tick, action))
        self._in_flight: dict[ProcessId, list[Envelope]] = {}
        self._next_uid = 0
        self._streaks: dict[ChannelKey, int] = {}
        # Drop elision: submission-ordered uid log per channel key and
        # the delivered subset, for post-hoc drop-schedule synthesis.
        self._submission_log: dict[ChannelKey, list[int]] = {}
        self._delivered_uids: set[int] = set()
        self._dropped = 0
        self._delivered = 0
        self._taken: list[int] = []
        self._counts: list[int] = []

    # -- choice plumbing ----------------------------------------------------

    def _choose(self, options: int) -> int:
        i = len(self._taken)
        if i < len(self.prefix):
            pick = min(self.prefix[i], options - 1)
        else:
            pick = 0
        self._taken.append(pick)
        self._counts.append(options)
        return pick

    @property
    def _fresh(self) -> bool:
        """Past the replayed prefix, into never-explored territory?"""
        return len(self._taken) > len(self.prefix)

    # -- channel ------------------------------------------------------------

    def _submit(
        self, sender: ProcessId, receiver: ProcessId, message: Message, tick: int
    ) -> None:
        spec = self.spec
        if receiver in self._crashed:
            # Unobservable either way (nothing is ever delivered to a
            # crashed process): forced drop, no branch.
            self._dropped += 1
            return
        deliver_at = tick + 1
        if spec.lossy and deliver_at <= spec.horizon:
            key: ChannelKey = (sender, receiver, message)
            if self._elide:
                # Sleep-set elision: the drop branch commutes with every
                # observable transition (a dropped copy is an accepted
                # copy that is never delivered, and defer-all is always
                # available), so it is never scheduled.  Quiescence is
                # synthesized from this log at the final cut.
                self._submission_log.setdefault(key, []).append(self._next_uid)
                self.stats.drops_elided += 1
            else:
                streak = self._streaks.get(key, 0)
                if streak >= spec.max_consecutive_drops:
                    self._streaks[key] = 0  # R5: the budget forces this copy
                elif self._choose(2) == 1:
                    self._streaks[key] = streak + 1
                    self._dropped += 1
                    return
                else:
                    self._streaks[key] = 0
        # Copies that cannot be delivered within the horizon
        # (deliver_at > horizon) are accepted without a drop branch:
        # dropping them is unobservable in the run prefix, and keeping
        # them in flight lets the quiescence check see the obligation.
        self._in_flight.setdefault(receiver, []).append(
            Envelope(
                sender=sender,
                receiver=receiver,
                message=message,
                sent_at=tick,
                deliver_at=deliver_at,
                uid=self._next_uid,
            )
        )
        self._next_uid += 1

    def _pick_delivery(self, pid: ProcessId, tick: int) -> Envelope | None:
        pending = self._in_flight.get(pid)
        if not pending:
            return None
        # Appends happen in (deliver_at, uid) order (deliver_at is the
        # submit tick + 1, monotone; uids increase), and removals keep
        # relative order -- so the deliverable envelopes are exactly a
        # prefix of the list, already sorted.
        cut = 0
        total = len(pending)
        while cut < total and pending[cut].deliver_at <= tick:
            cut += 1
        if not cut:
            return None
        ready = pending[:cut] if cut < total else pending
        if self._group:
            groups = group_deliverable(ready)
            if self._fresh:
                self.stats.deliveries_collapsed += cut - len(groups)
            pick = self._choose(len(groups) + 1)
            if pick == len(groups):
                return None  # defer them all one tick (delay/reorder move)
            envelope = groups[pick][0]
            index = 0
            while pending[index] is not envelope:
                index += 1
        else:
            pick = self._choose(cut + 1)
            if pick == cut:
                return None
            envelope = ready[pick]
            index = pick
        del pending[index]
        self._delivered += 1
        if self._elide:
            self._delivered_uids.add(envelope.uid)
        return envelope

    # -- the tick loop ------------------------------------------------------

    def _due_init(self, pid: ProcessId, tick: int) -> ActionId | None:
        queue = self._pending_inits[pid]
        if queue and queue[0][0] <= tick:
            return queue.pop(0)[1]
        return None

    def _step_event(self, pid: ProcessId, tick: int) -> Event | None:
        env = self.envs[pid]
        if self._poll:
            report = self.detector.poll(pid, tick, self.truth, self._rng)
            if report is not None:
                return SuspectEvent(pid, report)
        if env.outbox:
            return env.outbox.popleft()
        action = self._due_init(pid, tick)
        if action is not None:
            return InitEvent(pid, action)
        envelope = self._pick_delivery(pid, tick)
        if envelope is not None:
            return ReceiveEvent(pid, envelope.sender, envelope.message)
        self.protocols[pid].on_tick()
        if env.outbox:
            return env.outbox.popleft()
        return None

    def _dispatch(self, pid: ProcessId, event: Event, tick: int) -> None:
        protocol = self.protocols[pid]
        if isinstance(event, SendEvent):
            self._submit(event.sender, event.receiver, event.message, tick)
        elif isinstance(event, ReceiveEvent):
            protocol.on_receive(event.sender, event.message)
        elif isinstance(event, SuspectEvent):
            protocol.on_suspect(event.report)
        elif isinstance(event, InitEvent):
            protocol.on_init(event.action)
        elif isinstance(event, DoEvent):
            pass
        else:  # pragma: no cover - crash events never reach here
            raise AssertionError(f"unexpected event {event!r}")

    def _final_flags(self) -> tuple[bool, bool, int]:
        """Classify the final cut: (quiescent, fixpoint, synthesized drops).

        *Quiescent*: some continuation of the adversary's choices keeps
        the run silent forever.  With drop elision, copies still in
        flight within the horizon do not refute quiescence if an
        R5-feasible schedule drops them all -- the leaf then stands for
        the old drop-branch leaf with identical timelines.

        *Fixpoint* is strictly stronger: the very next tick appends no
        event and opens no choice point (channels empty, no detector),
        so the horizon-(T+1) subtree of this leaf is this leaf.  That is
        what licenses incremental horizon extension.
        """
        horizon = self.spec.horizon
        live = [p for p in self.processes if p not in self._crashed]
        base = (
            all(not self.envs[p].outbox for p in live)
            and all(
                not queue or pid in self._crashed
                for pid, queue in self._pending_inits.items()
            )
            and all(t <= horizon for t in self._crash_index)
            and all(not self.protocols[p].wants_to_act() for p in live)
        )
        if not base:
            return False, False, 0
        if all(not self._in_flight.get(p) for p in live):
            return True, not self._poll, 0
        if not self._elide:
            return False, False, 0
        synthesized = 0
        for p in live:
            for env in self._in_flight.get(p, ()):
                if env.deliver_at > horizon:
                    # Matches the unreduced semantics: beyond-horizon
                    # copies never get a drop branch, so they always
                    # stand as obligations against quiescence.
                    return False, False, 0
                synthesized += 1
        budget = self.spec.max_consecutive_drops
        for key, uids in self._submission_log.items():
            if key[1] in self._crashed:
                continue  # popped at the crash; nothing to synthesize
            flags = [uid in self._delivered_uids for uid in uids]
            if not drop_schedule_feasible(flags, budget):
                return False, False, 0
        return True, False, synthesized

    def execute(self) -> ExecutionResult:
        spec = self.spec
        stats = self.stats
        horizon = spec.horizon
        for pid in self.processes:
            self.protocols[pid].on_start()
        for tick in range(1, horizon + 1):
            for pid in self._crash_index.get(tick, ()):
                self._timelines[pid].append((tick, CrashEvent(pid)))
                self._crashed.add(pid)
                self._actual_crash_ticks[pid] = tick
                self.envs[pid].outbox.clear()
                self._in_flight.pop(pid, None)
            for pid in self.processes:
                if pid in self._crashed:
                    continue
                env = self.envs[pid]
                env.now = tick
                event = self._step_event(pid, tick)
                if event is None:
                    continue
                self._timelines[pid].append((tick, event))
                self._dispatch(pid, event, tick)
            stats.states_expanded += 1
        quiescent, fixpoint, synthesized = self._final_flags()
        run = Run(
            self.processes,
            self._timelines,
            duration=horizon,
            meta={
                "explored": True,
                "crash_plan": self.plan,
                "trace": tuple(self._taken),
                "detector": self._detector_name,
                "quiescent": quiescent,
                "dropped": self._dropped + (synthesized if quiescent else 0),
                "delivered": self._delivered,
            },
        )
        # R5's finite send threshold is only meaningful at a fixpoint: a
        # non-quiescent prefix may have every copy legitimately in flight
        # past the horizon.  One outbox event per tick bounds sends per
        # target by the horizon, so horizon + 2 can never fire.
        threshold = (
            spec.max_consecutive_drops + 2 if quiescent else horizon + 2
        )
        validate_run(run, r5_send_threshold=threshold)
        return ExecutionResult(
            run, tuple(self._taken), tuple(self._counts), fixpoint
        )


def replay(
    spec: ExploreSpec,
    plan: CrashPlan,
    trace: Trace,
    renaming: Renaming | None = None,
) -> Run:
    """Re-execute one explored branch: the run is a pure function of
    ``(spec, plan, trace)``.  Out-of-range choices clamp to the last
    option, so any int tuple is a valid (if redundant) trace -- the
    property :mod:`repro.explore.shrink` relies on.

    ``renaming`` replays a symmetry-mirrored run (``meta["renaming"]``):
    the canonical preimage of ``plan`` is executed and the result is
    renamed back, so mirrored runs round-trip exactly like explored
    ones.
    """
    if renaming:
        inverse = {actual: canonical for canonical, actual in renaming}
        canonical_plan = rename_plan(plan, inverse)
        canonical = _BoundedExecution(
            spec, canonical_plan, tuple(trace), ExploreStats()
        ).execute()
        forward = {canonical_pid: actual for canonical_pid, actual in renaming}
        return rename_run(canonical.run, forward, plan=plan)
    return _BoundedExecution(spec, plan, tuple(trace), ExploreStats()).execute().run


def drain_frontier(
    spec: ExploreSpec, entries: Iterable[tuple[CrashPlan, Trace]]
) -> tuple[list[Leaf], ExploreStats]:
    """Exhaustively drain a frontier slice; pure and side-effect free.

    This is the sharding work unit: leaves are pure functions of their
    coordinates, so any partition of the frontier drains to the same
    leaf multiset in any process.  No monitors, no cache, no budget --
    the driver owns those.
    """
    stats = ExploreStats(reduction=spec.reduction)
    frontier: Deque[tuple[CrashPlan, Trace]] = deque(entries)
    dfs = spec.strategy == "dfs"
    leaves: list[Leaf] = []
    while frontier:
        if len(frontier) > stats.max_frontier:
            stats.max_frontier = len(frontier)
        plan, prefix = frontier.pop() if dfs else frontier.popleft()
        result = _BoundedExecution(spec, plan, prefix, stats).execute()
        stats.executions += 1
        for i in range(len(prefix), len(result.option_counts)):
            options = result.option_counts[i]
            stats.choice_points += 1
            for alternative in range(1, options):
                frontier.append((plan, result.taken[:i] + (alternative,)))
                stats.branches_scheduled += 1
        leaves.append((plan, result.taken, result.run, result.fixpoint))
    return leaves, stats


def _rep_key(run: Run, plan_order: dict[CrashPlan, int]) -> tuple[int, int, Trace]:
    """Deterministic representative preference for value-equal runs.

    Quiescent variants win (their final cut is a fixpoint, so liveness
    verdicts are exact), then the smallest ``(plan, trace)`` coordinate.
    Being discovery-order-independent is what makes the final run list
    identical across worker counts and seeding paths.
    """
    meta = run.meta
    return (
        0 if meta.get("quiescent") else 1,
        plan_order.get(meta["crash_plan"], len(plan_order)),
        tuple(meta["trace"]),
    )


def _extend_fixpoint(
    run: Run, plan: CrashPlan, trace: Trace, horizon: int
) -> Run:
    """A fixpoint leaf one horizon later: same timelines, one silent tick."""
    timelines = {p: list(run.timeline(p)) for p in run.processes}
    meta = dict(run.meta)
    meta["crash_plan"] = plan
    meta["trace"] = trace
    return Run(run.processes, timelines, duration=horizon, meta=meta)


def explore(
    spec: ExploreSpec,
    *,
    monitors: Sequence[RunMonitor] = (),
    stop_on_violation: bool = False,
    cache: object = _CACHE_DEFAULT,
    workers: int = 1,
) -> ExploreReport:
    """Enumerate every run of ``spec``'s context up to its horizon.

    Returns an :class:`repro.runtime.report.ExploreReport` whose
    ``system()`` is *complete* (and says so: ``System.complete``) when
    exploration was exhaustive -- i.e. neither truncated by
    ``spec.max_executions`` nor short-circuited by ``stop_on_violation``.

    ``monitors`` are checked once per distinct run; violations carry the
    ``(crash_plan, trace)`` coordinates needed to replay and shrink
    them.  Only exhaustive explorations are cached (key:
    ``spec.digest()``), so a cache hit can never hide part of the run
    set; monitors re-run over cached runs.

    ``workers > 1`` shards the frontier across worker processes
    (:mod:`repro.explore.sharding`).  The run list, stats that describe
    the search space, and violations are identical for every worker
    count; with ``stop_on_violation`` the short-circuit happens at shard
    granularity, so *which* single violation is reported may differ.
    """
    from repro.runtime.cache import RunCache, default_run_cache

    resolved_cache: RunCache | None
    if cache is _CACHE_DEFAULT:
        resolved_cache = default_run_cache()
    else:
        resolved_cache = cache  # type: ignore[assignment]

    started = time.perf_counter()
    digest = spec.digest()
    if resolved_cache is not None and digest is not None:
        hit = resolved_cache.get_exploration(digest)
        if hit is not None:
            runs, stats = hit
            violations = _check_monitors(
                runs, monitors, stats, stop_on_violation=stop_on_violation
            )
            return ExploreReport(
                spec=spec,
                runs=runs,
                stats=stats,
                violations=tuple(violations),
                wall_time=time.perf_counter() - started,
                cached=True,
                context=spec.context,
            )

    plans = spec.crash_plans()
    plan_order = {plan: i for i, plan in enumerate(plans)}
    quotient: SymmetryQuotient | None = None
    if spec.reduction == "dpor+symmetry":
        quotient = symmetry_quotient(spec, plans)
    workers = max(1, workers)
    if spec.max_executions is not None or digest is None:
        workers = 1  # budgeted search is inherently serial; pools need pickling
    stats = ExploreStats(
        reduction=spec.reduction,
        symmetry_active=quotient is not None,
        workers=workers,
    )
    roots: tuple[CrashPlan, ...]
    if quotient is not None:
        roots = quotient.canonical_plans
        stats.symmetry_plans_folded = len(plans) - len(roots)
    else:
        roots = plans

    # -- incremental horizon extension --------------------------------------
    # Under DPOR the choice structure of the first T-1 ticks is
    # horizon-independent (drop branches, the only horizon-gated choice,
    # are elided), so a cached horizon-(T-1) leaf set *is* the depth-
    # (T-1) frontier: fixpoint leaves extend to T without re-execution,
    # the rest re-execute with their leaf trace as prefix.
    entries: list[tuple[CrashPlan, Trace]] = [(plan, ()) for plan in roots]
    extended: list[Leaf] = []
    if (
        resolved_cache is not None
        and digest is not None
        and spec.reduction != "none"
        and spec.reduction_config.incremental
        and (not spec.lossy or spec.reduction_config.drop_elision)
        and spec.horizon > 1
        and spec.max_executions is None
    ):
        prev_digest = spec.with_(horizon=spec.horizon - 1).digest()
        prev = (
            resolved_cache.get_exploration_entry(prev_digest)
            if prev_digest is not None
            else None
        )
        if prev is not None and prev.leaves is not None:
            seeded: list[tuple[CrashPlan, Trace]] = []
            for plan, trace, fixpoint, run_index in prev.leaves:
                if fixpoint:
                    extended.append(
                        (
                            plan,
                            trace,
                            _extend_fixpoint(
                                prev.runs[run_index], plan, trace, spec.horizon
                            ),
                            True,
                        )
                    )
                else:
                    seeded.append((plan, trace))
            entries = seeded
            stats.seeded_from_horizon = spec.horizon - 1
            stats.fixpoint_leaves_reused = len(extended)

    # -- the search ----------------------------------------------------------
    dfs = spec.strategy == "dfs"
    collect_leaves = resolved_cache is not None and digest is not None
    leaf_records: list[tuple[CrashPlan, Trace, bool, Run]] = []
    plan_runs: dict[CrashPlan, dict[Run, Run]] = {}
    violations: list[Violation] = []
    reported: set[tuple[str, Run]] = set()
    refold: list[CrashPlan] = []

    def consume(plan: CrashPlan, trace: Trace, run: Run, fixpoint: bool) -> None:
        nonlocal quotient
        stats.runs_enumerated += 1
        if collect_leaves:
            leaf_records.append((plan, trace, fixpoint, run))
        if quotient is not None and not run_respects_quotient(
            run, quotient.movable
        ):
            # The dynamic asymmetry detector fired: this run's traffic
            # touches a movable process, so renaming is not sound for
            # this spec after all.  Fold back safely -- the folded plans
            # will be explored directly, and no mirroring happens.
            refold.extend(quotient.folded_plans())
            stats.symmetry_active = False
            stats.symmetry_plans_folded = 0
            quotient = None
        bucket = plan_runs.setdefault(plan, {})
        stored = bucket.get(run)
        if stored is not None and _rep_key(stored, plan_order) <= _rep_key(
            run, plan_order
        ):
            return
        bucket[run] = run
        if stop_on_violation:
            for monitor in monitors:
                key = (monitor.name, run)
                if key in reported:
                    continue
                stats.monitor_checks += 1
                verdict = monitor.check(run)
                if not verdict:
                    reported.add(key)
                    stats.violations += 1
                    violations.append(
                        Violation(
                            monitor=monitor.name,
                            verdict=verdict,
                            run=run,
                            crash_plan=plan,
                            trace=trace,
                        )
                    )
                    stats.stopped_on_violation = True
                    return

    frontier: Deque[tuple[CrashPlan, Trace]] = deque(entries)

    def drain(shardable: bool) -> None:
        """Exhaust the frontier: serial expansion, then shards if wide."""
        widen = workers * _WIDEN_FACTOR if shardable and workers > 1 else 0
        while frontier and not stats.stopped_on_violation:
            if (
                spec.max_executions is not None
                and stats.executions >= spec.max_executions
            ):
                stats.truncated = True
                return
            if len(frontier) > stats.max_frontier:
                stats.max_frontier = len(frontier)
            if widen and len(frontier) >= widen:
                break  # wide enough: hand the rest to the shard pool
            if widen:
                plan, prefix = frontier.popleft()  # widen breadth-first
            else:
                plan, prefix = frontier.pop() if dfs else frontier.popleft()
            result = _BoundedExecution(spec, plan, prefix, stats).execute()
            stats.executions += 1
            for i in range(len(prefix), len(result.option_counts)):
                options = result.option_counts[i]
                stats.choice_points += 1
                for alternative in range(1, options):
                    frontier.append((plan, result.taken[:i] + (alternative,)))
                    stats.branches_scheduled += 1
            consume(plan, result.taken, result.run, result.fixpoint)
        if not frontier or stats.stopped_on_violation:
            return
        from repro.explore.sharding import run_sharded

        shard_results = run_sharded(spec, list(frontier), workers)
        frontier.clear()
        try:
            for shard_leaves, shard_stats in shard_results:
                stats.merge_shard(shard_stats)
                for leaf in shard_leaves:
                    consume(*leaf)
                    if stats.stopped_on_violation:
                        return
        finally:
            shard_results.close()

    for leaf in extended:
        if stats.stopped_on_violation:
            break
        consume(*leaf)
    if not stats.stopped_on_violation:
        drain(shardable=True)
    while refold and not stats.stopped_on_violation and not stats.truncated:
        batch = refold[:]
        refold.clear()
        frontier.extend((plan, ()) for plan in batch)
        drain(shardable=False)

    # -- symmetry mirroring ---------------------------------------------------
    if quotient is not None and not stats.stopped_on_violation:
        for plan in quotient.canonical_plans:
            bucket = plan_runs.get(plan)
            if not bucket:
                continue
            for mirrored_plan, mapping in quotient.mirrors_of(plan):
                target = plan_runs.setdefault(mirrored_plan, {})
                for source in bucket.values():
                    image = rename_run(source, mapping, plan=mirrored_plan)
                    stats.symmetry_runs_mirrored += 1
                    stored = target.get(image)
                    if stored is None or _rep_key(
                        image, plan_order
                    ) < _rep_key(stored, plan_order):
                        target[image] = image

    # -- canonical merge and ordering ----------------------------------------
    unique: dict[Run, Run] = {}
    for plan in plans:
        bucket = plan_runs.get(plan)
        if not bucket:
            continue
        for run in bucket.values():
            stored = unique.get(run)
            if stored is None or _rep_key(run, plan_order) < _rep_key(
                stored, plan_order
            ):
                unique[run] = run
    runs_final = tuple(
        sorted(
            unique.values(),
            key=lambda r: (
                plan_order.get(r.meta["crash_plan"], len(plan_order)),
                tuple(r.meta["trace"]),
            ),
        )
    )
    stats.runs_unique = len(runs_final)

    if not stop_on_violation:
        violations = list(
            _check_monitors(
                runs_final, monitors, stats, stop_on_violation=False
            )
        )

    if (
        resolved_cache is not None
        and digest is not None
        and stats.exhaustive
        and runs_final
    ):
        index_of = {run: i for i, run in enumerate(runs_final)}
        resolved_cache.put_exploration(
            digest,
            runs_final,
            stats,
            leaves=tuple(
                (plan, trace, fixpoint, index_of[run])
                for plan, trace, fixpoint, run in leaf_records
            ),
        )
    return ExploreReport(
        spec=spec,
        runs=runs_final,
        stats=stats,
        violations=tuple(violations),
        wall_time=time.perf_counter() - started,
        cached=False,
        context=spec.context,
    )


def _check_monitors(
    runs: Sequence[Run],
    monitors: Sequence[RunMonitor],
    stats: ExploreStats,
    *,
    stop_on_violation: bool,
) -> Iterator[Violation]:
    """Monitor a canonically ordered (final or cached) run set."""
    for run in runs:
        for monitor in monitors:
            stats.monitor_checks += 1
            verdict = monitor.check(run)
            if not verdict:
                stats.violations += 1
                yield Violation(
                    monitor=monitor.name,
                    verdict=verdict,
                    run=run,
                    crash_plan=run.meta.get("crash_plan", CrashPlan.none()),
                    trace=tuple(run.meta.get("trace", ())),
                )
                if stop_on_violation:
                    return
