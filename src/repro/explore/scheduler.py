"""The bounded exhaustive explorer: every run of a context up to horizon T.

Where :class:`repro.sim.executor.Executor` *samples* one adversary
schedule per seed, the explorer *enumerates* them.  A run is produced by
a deterministic replay executor that mirrors the seeded executor's tick
semantics exactly (same per-tick event priority, same crash handling,
same channel bookkeeping) but replaces every ``random.Random`` draw with
an explicit **choice**:

* the crash pattern is a top-level branch -- one root per plan from
  :meth:`repro.runtime.spec.ExploreSpec.crash_plans` (A1/A5_t, bounded
  by ``max_failures``);
* per live process per tick, when deliverable envelopes exist, a choice
  selects which in-flight message to consume -- or defers them all one
  tick (this single primitive realizes message delay *and* reordering:
  every pattern the seeded adversary's delay draws and postponements can
  produce corresponds to some assignment of defer choices);
* per submitted copy on a lossy channel, a drop/accept choice, clamped
  by the R5 fairness budget (``max_consecutive_drops`` back-to-back
  drops of a key force the next copy through -- the same budget
  :class:`repro.sim.network.FairLossyChannel` enforces).

Executions are *stateless-model-checking* style: a frontier entry is a
``(crash_plan, choice-prefix)`` pair; replaying the prefix and then
greedily taking option 0 (the most cooperative alternative: deliver the
oldest message, accept the copy) yields one complete run while
recording how many options each fresh decision had, and every untaken
alternative becomes a new frontier entry.  Exploration is exhaustive
when the frontier drains; :mod:`repro.explore.reduction` keeps the tree
small without changing the run set.

Scope: the explored nondeterminism is crash timing and channel
behaviour -- the two adversary dimensions the paper's proofs quantify
over.  Processes run at full speed (the executor's activation-skipping
is a derived behaviour: a skipped tick is a defer plus a delayed
protocol step), and stochastic detector noise is *not* enumerated; a
detector attached to an ``ExploreSpec`` is polled with a fixed-seed rng,
so it must be deterministic for completeness claims to cover it.
"""

from __future__ import annotations

import random
import time
from collections import deque
from typing import Deque, Iterator, Sequence

from repro.detectors.base import GroundTruthView, NoDetector
from repro.explore.monitors import RunMonitor, Violation
from repro.explore.reduction import (
    ExploreStats,
    FingerprintSet,
    canonical_channel,
    group_deliverable,
    state_fingerprint,
)
from repro.model.events import (
    ActionId,
    CrashEvent,
    DoEvent,
    Event,
    InitEvent,
    Message,
    ProcessId,
    ReceiveEvent,
    SendEvent,
    SuspectEvent,
)
from repro.model.run import Run, validate_run
from repro.runtime.report import ExploreReport
from repro.runtime.spec import ExploreSpec
from repro.sim.failures import CrashPlan
from repro.sim.network import ChannelKey, Envelope
from repro.sim.process import ProcessEnv

__all__ = ["ExecutionResult", "explore", "replay"]

#: A choice trace: the option index taken at each decision point, in
#: encounter order.  The empty trace is the all-cooperative run.
Trace = tuple[int, ...]

_CACHE_DEFAULT = object()  # sentinel: "use the process-wide default cache"


class ExecutionResult:
    """What one deterministic bounded execution produced."""

    __slots__ = ("run", "taken", "option_counts", "pruned")

    def __init__(
        self,
        run: Run | None,
        taken: Trace,
        option_counts: tuple[int, ...],
        pruned: bool,
    ) -> None:
        self.run = run
        self.taken = taken
        self.option_counts = option_counts
        self.pruned = pruned


class _BoundedExecution:
    """One replay: (spec, crash plan, choice trace) -> Run, deterministically.

    Mirrors :class:`repro.sim.executor.Executor` tick-for-tick with the
    rng replaced by :meth:`_choose`.  Out-of-range prefix choices are
    clamped (never produced by the frontier, but shrink candidates may
    mutate a trace into a region where fewer options exist).
    """

    def __init__(
        self,
        spec: ExploreSpec,
        plan: CrashPlan,
        prefix: Trace,
        stats: ExploreStats,
        seen: FingerprintSet | None,
    ) -> None:
        self.spec = spec
        self.plan = plan
        self.prefix = prefix
        self.stats = stats
        self.seen = seen
        self.processes = spec.processes
        self.envs = {p: ProcessEnv(p, self.processes) for p in self.processes}
        self.protocols = {
            p: spec.protocol(p, self.envs[p]) for p in self.processes
        }
        self.detector = (spec.detector or NoDetector()).fresh()
        self._rng = random.Random(0)  # consumed only by detector oracles
        self._timelines: dict[ProcessId, list[tuple[int, Event]]] = {
            p: [] for p in self.processes
        }
        self._crashed: set[ProcessId] = set()
        self._actual_crash_ticks: dict[ProcessId, int] = {}
        self.truth = GroundTruthView(
            self.processes, plan.faulty, self._actual_crash_ticks
        )
        by_tick: dict[int, list[ProcessId]] = {}
        for pid in self.processes:
            planned = plan.crash_tick(pid)
            if planned is not None:
                by_tick.setdefault(max(planned, 1), []).append(pid)
        self._crash_index = {t: tuple(pids) for t, pids in by_tick.items()}
        self._pending_inits: dict[ProcessId, list[tuple[int, ActionId]]] = {
            p: [] for p in self.processes
        }
        for tick, pid, action in sorted(spec.workload):
            self._pending_inits[pid].append((tick, action))
        self._in_flight: dict[ProcessId, list[Envelope]] = {}
        self._next_uid = 0
        self._streaks: dict[ChannelKey, int] = {}
        self._dropped = 0
        self._delivered = 0
        self._taken: list[int] = []
        self._counts: list[int] = []

    # -- choice plumbing ----------------------------------------------------

    def _choose(self, options: int) -> int:
        i = len(self._taken)
        if i < len(self.prefix):
            pick = min(self.prefix[i], options - 1)
        else:
            pick = 0
        self._taken.append(pick)
        self._counts.append(options)
        return pick

    @property
    def _fresh(self) -> bool:
        """Past the replayed prefix, into never-explored territory?"""
        return len(self._taken) > len(self.prefix)

    # -- channel ------------------------------------------------------------

    def _submit(
        self, sender: ProcessId, receiver: ProcessId, message: Message, tick: int
    ) -> None:
        spec = self.spec
        if receiver in self._crashed:
            # Unobservable either way (nothing is ever delivered to a
            # crashed process): forced drop, no branch.
            self._dropped += 1
            return
        deliver_at = tick + 1
        if spec.lossy and deliver_at <= spec.horizon:
            key: ChannelKey = (sender, receiver, message)
            streak = self._streaks.get(key, 0)
            if streak >= spec.max_consecutive_drops:
                self._streaks[key] = 0  # R5: the budget forces this copy through
            elif self._choose(2) == 1:
                self._streaks[key] = streak + 1
                self._dropped += 1
                return
            else:
                self._streaks[key] = 0
        # Copies that cannot be delivered within the horizon
        # (deliver_at > horizon) are accepted without a drop branch:
        # dropping them is unobservable in the run prefix, and keeping
        # them in flight lets the quiescence check see the obligation.
        self._in_flight.setdefault(receiver, []).append(
            Envelope(
                sender=sender,
                receiver=receiver,
                message=message,
                sent_at=tick,
                deliver_at=deliver_at,
                uid=self._next_uid,
            )
        )
        self._next_uid += 1

    def _pick_delivery(self, pid: ProcessId, tick: int) -> Envelope | None:
        pending = self._in_flight.get(pid)
        if not pending:
            return None
        ready = [e for e in pending if e.deliver_at <= tick]
        if not ready:
            return None
        ready.sort(key=lambda e: (e.deliver_at, e.uid))
        if self.spec.por:
            groups = group_deliverable(ready)
            if self._fresh:
                self.stats.por_skipped += len(ready) - len(groups)
        else:
            groups = [[e] for e in ready]
        pick = self._choose(len(groups) + 1)
        if pick == len(groups):
            return None  # defer them all one tick (delay/reorder move)
        envelope = groups[pick][0]
        pending.remove(envelope)
        self._delivered += 1
        return envelope

    # -- the tick loop ------------------------------------------------------

    def _due_init(self, pid: ProcessId, tick: int) -> ActionId | None:
        queue = self._pending_inits[pid]
        if queue and queue[0][0] <= tick:
            return queue.pop(0)[1]
        return None

    def _step_event(self, pid: ProcessId, tick: int) -> Event | None:
        env = self.envs[pid]
        report = self.detector.poll(pid, tick, self.truth, self._rng)
        if report is not None:
            return SuspectEvent(pid, report)
        if env.outbox:
            return env.outbox.popleft()
        action = self._due_init(pid, tick)
        if action is not None:
            return InitEvent(pid, action)
        envelope = self._pick_delivery(pid, tick)
        if envelope is not None:
            return ReceiveEvent(pid, envelope.sender, envelope.message)
        self.protocols[pid].on_tick()
        if env.outbox:
            return env.outbox.popleft()
        return None

    def _dispatch(self, pid: ProcessId, event: Event, tick: int) -> None:
        protocol = self.protocols[pid]
        if isinstance(event, SendEvent):
            self._submit(event.sender, event.receiver, event.message, tick)
        elif isinstance(event, ReceiveEvent):
            protocol.on_receive(event.sender, event.message)
        elif isinstance(event, SuspectEvent):
            protocol.on_suspect(event.report)
        elif isinstance(event, InitEvent):
            protocol.on_init(event.action)
        elif isinstance(event, DoEvent):
            pass
        else:  # pragma: no cover - crash events never reach here
            raise AssertionError(f"unexpected event {event!r}")

    def _fingerprint(self, tick: int) -> tuple[object, ...]:
        pending_crashes = tuple(
            (t, pids) for t, pids in sorted(self._crash_index.items()) if t > tick
        )
        return state_fingerprint(
            tick=tick,
            processes=self.processes,
            timelines=self._timelines,
            outboxes={p: tuple(self.envs[p].outbox) for p in self.processes},
            crashed=frozenset(self._crashed),
            pending_crashes=pending_crashes,
            pending_inits=self._pending_inits,
            channel=canonical_channel(self._in_flight, tick),
            drop_streaks=tuple(
                sorted(
                    ((k, s) for k, s in self._streaks.items() if s),
                    key=repr,
                )
            ),
        )

    def _quiescent(self, horizon: int) -> bool:
        """Is the final cut a fixpoint (would an extension stay silent)?"""
        live = [p for p in self.processes if p not in self._crashed]
        return (
            all(not self.envs[p].outbox for p in live)
            and all(not self._in_flight.get(p) for p in live)
            and all(
                not queue or pid in self._crashed
                for pid, queue in self._pending_inits.items()
            )
            and all(t <= horizon for t in self._crash_index)
            and all(not self.protocols[p].wants_to_act() for p in live)
        )

    def execute(self) -> ExecutionResult:
        spec = self.spec
        stats = self.stats
        horizon = spec.horizon
        for pid in self.processes:
            self.protocols[pid].on_start()
        for tick in range(1, horizon + 1):
            for pid in self._crash_index.get(tick, ()):
                self._timelines[pid].append((tick, CrashEvent(pid)))
                self._crashed.add(pid)
                self._actual_crash_ticks[pid] = tick
                self.envs[pid].outbox.clear()
                self._in_flight.pop(pid, None)
            for pid in self.processes:
                if pid in self._crashed:
                    continue
                env = self.envs[pid]
                env.now = tick
                event = self._step_event(pid, tick)
                if event is None:
                    continue
                self._timelines[pid].append((tick, event))
                self._dispatch(pid, event, tick)
            stats.states_expanded += 1
            if self.seen is not None and tick < horizon and self._fresh:
                if self.seen.check_and_add(self._fingerprint(tick)):
                    stats.states_pruned += 1
                    return ExecutionResult(
                        None, tuple(self._taken), tuple(self._counts), True
                    )
        quiescent = self._quiescent(horizon)
        run = Run(
            self.processes,
            self._timelines,
            duration=horizon,
            meta={
                "explored": True,
                "crash_plan": self.plan,
                "trace": tuple(self._taken),
                "detector": self.detector.name,
                "quiescent": quiescent,
                "dropped": self._dropped,
                "delivered": self._delivered,
            },
        )
        # R5's finite send threshold is only meaningful at a fixpoint: a
        # non-quiescent prefix may have every copy legitimately in flight
        # past the horizon.  One outbox event per tick bounds sends per
        # target by the horizon, so horizon + 2 can never fire.
        threshold = (
            spec.max_consecutive_drops + 2 if quiescent else horizon + 2
        )
        validate_run(run, r5_send_threshold=threshold)
        return ExecutionResult(run, tuple(self._taken), tuple(self._counts), False)


def replay(spec: ExploreSpec, plan: CrashPlan, trace: Trace) -> Run:
    """Re-execute one explored branch: the run is a pure function of
    ``(spec, plan, trace)``.  Out-of-range choices clamp to the last
    option, so any int tuple is a valid (if redundant) trace -- the
    property :mod:`repro.explore.shrink` relies on.
    """
    result = _BoundedExecution(
        spec, plan, tuple(trace), ExploreStats(), None
    ).execute()
    assert result.run is not None  # no fingerprint set => never pruned
    return result.run


def explore(
    spec: ExploreSpec,
    *,
    monitors: Sequence[RunMonitor] = (),
    stop_on_violation: bool = False,
    cache: object = _CACHE_DEFAULT,
) -> ExploreReport:
    """Enumerate every run of ``spec``'s context up to its horizon.

    Returns an :class:`repro.runtime.report.ExploreReport` whose
    ``system()`` is *complete* (and says so: ``System.complete``) when
    exploration was exhaustive -- i.e. neither truncated by
    ``spec.max_executions`` nor short-circuited by ``stop_on_violation``.

    ``monitors`` are checked against every distinct run as it is found;
    violations carry the ``(crash_plan, trace)`` coordinates needed to
    replay and shrink them.  Only exhaustive explorations are cached
    (key: ``spec.digest()``), so a cache hit can never hide part of the
    run set; monitors re-run over cached runs.
    """
    from repro.runtime.cache import RunCache, default_run_cache

    resolved_cache: RunCache | None
    if cache is _CACHE_DEFAULT:
        resolved_cache = default_run_cache()
    else:
        resolved_cache = cache  # type: ignore[assignment]

    started = time.perf_counter()
    digest = spec.digest()
    if resolved_cache is not None and digest is not None:
        hit = resolved_cache.get_exploration(digest)
        if hit is not None:
            runs, stats = hit
            violations = _check_monitors(
                runs, monitors, stats, stop_on_violation=stop_on_violation
            )
            return ExploreReport(
                spec=spec,
                runs=runs,
                stats=stats,
                violations=tuple(violations),
                wall_time=time.perf_counter() - started,
                cached=True,
                context=spec.context,
            )

    stats = ExploreStats(
        por_active=spec.por,
        fingerprints_active=spec.fingerprints and spec.detector is None,
    )
    seen = FingerprintSet() if stats.fingerprints_active else None
    frontier: Deque[tuple[CrashPlan, Trace]] = deque(
        (plan, ()) for plan in spec.crash_plans()
    )
    dfs = spec.strategy == "dfs"
    unique: dict[Run, Run] = {}
    violations: list[Violation] = []
    reported: set[tuple[str, Run]] = set()
    while frontier:
        if (
            spec.max_executions is not None
            and stats.executions >= spec.max_executions
        ):
            stats.truncated = True
            break
        stats.max_frontier = max(stats.max_frontier, len(frontier))
        plan, prefix = frontier.pop() if dfs else frontier.popleft()
        result = _BoundedExecution(spec, plan, prefix, stats, seen).execute()
        stats.executions += 1
        for i in range(len(prefix), len(result.option_counts)):
            options = result.option_counts[i]
            stats.choice_points += 1
            for alternative in range(1, options):
                frontier.append((plan, result.taken[:i] + (alternative,)))
                stats.branches_scheduled += 1
        run = result.run
        if run is None:
            continue
        stats.runs_enumerated += 1
        stored = unique.get(run)
        if stored is not None:
            # Equal timelines can arise from distinguishable branches --
            # e.g. "copy dropped" vs "copy still in flight at T".  The
            # quiescent variant is the stronger witness (its final cut
            # is a fixpoint, so liveness verdicts are exact): promote it
            # to representative and let the monitors re-judge.
            if not run.meta.get("quiescent") or stored.meta.get("quiescent"):
                continue
            unique[run] = run
        else:
            unique[run] = run
            stats.runs_unique += 1
        for monitor in monitors:
            key = (monitor.name, run)
            if key in reported:
                continue
            stats.monitor_checks += 1
            verdict = monitor.check(run)
            if not verdict:
                reported.add(key)
                stats.violations += 1
                violations.append(
                    Violation(
                        monitor=monitor.name,
                        verdict=verdict,
                        run=run,
                        crash_plan=plan,
                        trace=result.taken,
                    )
                )
                if stop_on_violation:
                    stats.stopped_on_violation = True
                    frontier.clear()
                    break
        if stats.stopped_on_violation:
            break

    runs = tuple(unique.values())
    if (
        resolved_cache is not None
        and digest is not None
        and stats.exhaustive
        and runs
    ):
        resolved_cache.put_exploration(digest, runs, stats)
    return ExploreReport(
        spec=spec,
        runs=runs,
        stats=stats,
        violations=tuple(violations),
        wall_time=time.perf_counter() - started,
        cached=False,
        context=spec.context,
    )


def _check_monitors(
    runs: Sequence[Run],
    monitors: Sequence[RunMonitor],
    stats: ExploreStats,
    *,
    stop_on_violation: bool,
) -> Iterator[Violation]:
    """Monitor a pre-enumerated (cached) run set."""
    for run in runs:
        for monitor in monitors:
            stats.monitor_checks += 1
            verdict = monitor.check(run)
            if not verdict:
                stats.violations += 1
                yield Violation(
                    monitor=monitor.name,
                    verdict=verdict,
                    run=run,
                    crash_plan=run.meta.get("crash_plan", CrashPlan.none()),
                    trace=tuple(run.meta.get("trace", ())),
                )
                if stop_on_violation:
                    return
