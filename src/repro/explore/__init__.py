"""Bounded exhaustive run exploration (model checking the contexts).

``repro.explore`` closes the soundness gap of sampled ensembles: it
enumerates *every* run of a protocol+context up to a horizon T over the
sim's modeled nondeterminism (crash timing, message delay/reordering,
fair-lossy drops), so the :class:`~repro.model.system.System` it builds
is complete and the epistemic kernel's ``Knows``/``C_G`` answers over it
are sound by construction rather than sample-dependent.

Entry points:

* :func:`explore` -- enumerate an :class:`repro.runtime.ExploreSpec`,
  returning an :class:`repro.runtime.report.ExploreReport`;
* :func:`replay` -- re-execute one branch from its
  ``(crash_plan, trace)`` coordinates;
* :mod:`~repro.explore.monitors` -- per-run property monitors
  (UDC/uniformity, detector properties) that can short-circuit the
  search;
* :func:`~repro.explore.shrink.shrink_violation` -- delta-debugging
  minimization of a violating run.
"""

from repro.explore.monitors import (
    DetectorPropertyMonitor,
    PredicateMonitor,
    RunMonitor,
    UniformityMonitor,
    Violation,
    detector_monitor_suite,
    is_quiescent,
)
from repro.explore.reduction import ExploreStats
from repro.explore.scheduler import ExecutionResult, explore, replay
from repro.explore.shrink import ShrinkResult, shrink_violation

__all__ = [
    "DetectorPropertyMonitor",
    "ExecutionResult",
    "ExploreStats",
    "PredicateMonitor",
    "RunMonitor",
    "ShrinkResult",
    "UniformityMonitor",
    "Violation",
    "detector_monitor_suite",
    "explore",
    "is_quiescent",
    "replay",
    "shrink_violation",
]
