"""Bounded exhaustive run exploration (model checking the contexts).

``repro.explore`` closes the soundness gap of sampled ensembles: it
enumerates *every* run of a protocol+context up to a horizon T over the
sim's modeled nondeterminism (crash timing, message delay/reordering,
fair-lossy drops), so the :class:`~repro.model.system.System` it builds
is complete and the epistemic kernel's ``Knows``/``C_G`` answers over it
are sound by construction rather than sample-dependent.

Entry points:

* :class:`Explorer` -- the documented facade:
  ``Explorer.from_spec(spec, monitors=...).run()``;
* :class:`ExploreSpec` / :class:`ReductionConfig` -- what to enumerate
  and which state-space reductions to apply (``"none"``, ``"dpor"``,
  ``"dpor+symmetry"``);
* :func:`explore` / :func:`replay` -- the functional layer underneath:
  enumerate a spec, or re-execute one branch from its
  ``(crash_plan, trace)`` coordinates;
* :mod:`~repro.explore.monitors` -- per-run property monitors
  (UDC/uniformity, detector properties) that can short-circuit the
  search;
* :func:`~repro.explore.shrink.shrink_violation` -- delta-debugging
  minimization of a violating run.
"""

from repro.explore.api import Explorer
from repro.explore.monitors import (
    DetectorPropertyMonitor,
    PredicateMonitor,
    RunMonitor,
    UniformityMonitor,
    Violation,
    detector_monitor_suite,
    is_quiescent,
)
from repro.explore.reduction import ExploreStats
from repro.explore.scheduler import ExecutionResult, explore, replay
from repro.explore.shrink import ShrinkResult, shrink_violation
from repro.explore.spec import REDUCTION_MODES, ExploreSpec, ReductionConfig

__all__ = [
    "DetectorPropertyMonitor",
    "ExecutionResult",
    "Explorer",
    "ExploreSpec",
    "ExploreStats",
    "PredicateMonitor",
    "REDUCTION_MODES",
    "ReductionConfig",
    "RunMonitor",
    "ShrinkResult",
    "UniformityMonitor",
    "Violation",
    "detector_monitor_suite",
    "explore",
    "is_quiescent",
    "replay",
    "shrink_violation",
]
