"""Delta-debugging minimization of violating runs.

A violating run found by the explorer comes with its branch coordinates
``(crash_plan, trace)``, and :func:`repro.explore.scheduler.replay` is a
pure function of those coordinates -- so shrinking is search over
coordinate space, with the monitor re-validating every candidate:

1. **drop crash events** -- remove one planned crash at a time; a crash
   the violation does not need disappears from the witness;
2. **collapse delivery delays / drops** -- zero one nonzero choice at a
   time (option 0 is always the most cooperative alternative: deliver
   the oldest message, accept the copy), turning adversarial moves the
   violation does not need into cooperative ones;
3. **truncate the suffix** -- cut the trace's tail, first by halves then
   one choice at a time; the greedy completion replaces the cut tail
   with all-cooperative behaviour.

The passes repeat until a fixed point.  Every accepted candidate still
violates the monitor, so the result is a *locally minimal* witness: no
single crash can be removed, no single adversarial choice can be made
cooperative, and no suffix can be cut without losing the violation.
The search order is deterministic, so equal inputs shrink to equal
witnesses (the property ``tests/test_explore_shrink.py`` pins down).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.detectors.properties import PropertyVerdict
from repro.explore.monitors import RunMonitor, Violation
from repro.explore.scheduler import Trace, replay
from repro.explore.spec import ExploreSpec
from repro.explore.symmetry import Renaming
from repro.model.run import Run
from repro.sim.failures import CrashPlan

__all__ = ["ShrinkResult", "shrink_violation"]


@dataclass(frozen=True)
class ShrinkResult:
    """A minimized counterexample, still violating its monitor."""

    run: Run
    crash_plan: CrashPlan
    trace: Trace
    verdict: PropertyVerdict
    attempts: int  # candidate replays tried
    reductions: int  # candidates accepted (strictly simplifying steps)
    renaming: Renaming = ()  # non-empty for symmetry-mirrored witnesses

    @property
    def crashes(self) -> dict[str, int]:
        return dict(self.crash_plan.crashes)


def _violates(
    spec: ExploreSpec,
    monitor: RunMonitor,
    plan: CrashPlan,
    trace: Trace,
    renaming: Renaming,
) -> tuple[Run, PropertyVerdict] | None:
    """Replay a candidate; return it iff the monitor still fails."""
    run = replay(spec, plan, trace, renaming=renaming or None)
    verdict = monitor.check(run)
    return None if verdict else (run, verdict)


def _normalize(trace: Trace) -> Trace:
    """Drop the all-cooperative tail: trailing zeros are the greedy
    completion's defaults and carry no information."""
    end = len(trace)
    while end and trace[end - 1] == 0:
        end -= 1
    return trace[:end]


def shrink_violation(
    spec: ExploreSpec,
    violation: Violation,
    *,
    monitor: RunMonitor,
    max_attempts: int = 10_000,
) -> ShrinkResult:
    """Minimize ``violation`` to a locally minimal witness.

    ``monitor`` must be the monitor object whose check produced the
    violation (a :class:`Violation` carries only the monitor's *name*).

    Symmetry-mirrored violations carry ``meta["renaming"]``; every
    candidate replays the canonical preimage and is renamed back, so the
    shrunk witness lives under the *original* (mirrored) crash plan.
    """
    plan = violation.crash_plan
    trace = _normalize(violation.trace)
    renaming: Renaming = tuple(violation.run.meta.get("renaming", ()))
    current = _violates(spec, monitor, plan, trace, renaming)
    attempts = 1
    if current is None:
        raise ValueError(
            f"violation does not reproduce under replay: monitor "
            f"{monitor.name!r} passes at crashes="
            f"{dict(plan.crashes)}, trace={list(violation.trace)}"
        )
    reductions = 0

    changed = True
    while changed and attempts < max_attempts:
        changed = False

        # Pass 1: drop crash events, one at a time (deterministic order).
        for pid, _tick in sorted(plan.crashes):
            candidate_plan = CrashPlan(
                tuple((p, t) for p, t in plan.crashes if p != pid)
            )
            attempt = _violates(spec, monitor, candidate_plan, trace, renaming)
            attempts += 1
            if attempt is not None:
                plan, current = candidate_plan, attempt
                reductions += 1
                changed = True

        # Pass 2: truncate the suffix -- halves first, then single steps.
        cut = len(trace) // 2
        while cut >= 1 and trace:
            candidate_trace = _normalize(trace[: len(trace) - cut])
            if candidate_trace == trace:
                cut //= 2
                continue
            attempt = _violates(spec, monitor, plan, candidate_trace, renaming)
            attempts += 1
            if attempt is not None:
                trace, current = candidate_trace, attempt
                reductions += 1
                changed = True
            else:
                cut //= 2

        # Pass 3: make single adversarial choices cooperative.
        index = 0
        while index < len(trace):
            if trace[index] == 0:
                index += 1
                continue
            candidate_trace = _normalize(
                trace[:index] + (0,) + trace[index + 1 :]
            )
            attempt = _violates(spec, monitor, plan, candidate_trace, renaming)
            attempts += 1
            if attempt is not None:
                trace, current = candidate_trace, attempt
                reductions += 1
                changed = True
                # The trace may have shortened past `index`; re-scan.
                index = min(index, len(trace))
            else:
                index += 1

    run, verdict = current
    return ShrinkResult(
        run=run,
        crash_plan=plan,
        trace=trace,
        verdict=verdict,
        attempts=attempts,
        reductions=reductions,
        renaming=renaming,
    )
