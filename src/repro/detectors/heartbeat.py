"""A message-implemented heartbeat detector (extension; footnote 10, ACT97).

The paper's protocols never terminate because, with unreliable
communication, quiescence requires something like Aguilera-Chen-Toueg's
heartbeat failure detector.  This module provides the simplest
message-based detector in the repository: unlike the oracles in
:mod:`repro.detectors.standard`, it consults **no ground truth** -- its
suspicions are derived purely from the message pattern of the run.

* :class:`HeartbeatProcess` is a protocol wrapper: each process
  broadcasts ``hb`` beacons every ``beat_interval`` ticks for
  ``beat_count`` rounds (bounded, so runs quiesce).
* :func:`derive_heartbeat_suspicions` is a run transformation in the
  Section 2.2 sense: it appends derived suspect events reporting, at
  each step, the processes whose most recent beacon is older than
  ``timeout``.

Because the channels are asynchronous, the derived detector is only
*eventually* accurate: a slow beacon can cause a false suspicion that is
later retracted when the beacon lands.  Completeness holds within the
beacon phase: a crashed process stops beating and stays suspected.  The
tests demonstrate both halves, which is exactly the gap between
implementable (eventual) and oracle-given (perpetual) accuracy that
motivates failure detectors as oracles in the first place.
"""

from __future__ import annotations

from repro.model.events import (
    Message,
    ProcessId,
    ReceiveEvent,
    StandardSuspicion,
    SuspectEvent,
)
from repro.model.run import Run
from repro.model.system import System
from repro.sim.process import ProcessEnv, ProtocolProcess

HEARTBEAT = "hb"


class HeartbeatProcess(ProtocolProcess):
    """Broadcasts ``beat_count`` heartbeat beacons, one every ``beat_interval``.

    Composes with an application protocol the same way
    :class:`~repro.detectors.conversions.SuspicionGossip` does.
    """

    def __init__(
        self,
        pid: ProcessId,
        env: ProcessEnv,
        inner: ProtocolProcess | None = None,
        *,
        beat_interval: int = 4,
        beat_count: int = 20,
    ) -> None:
        super().__init__(pid, env)
        self.inner = inner
        self.beat_interval = beat_interval
        self.beats_left = beat_count
        self._last_beat = -(10**9)
        self._seq = 0

    def on_start(self) -> None:
        if self.inner:
            self.inner.on_start()

    def on_init(self, action) -> None:
        if self.inner:
            self.inner.on_init(action)

    def on_receive(self, sender, message) -> None:
        if message.kind == HEARTBEAT:
            return
        if self.inner:
            self.inner.on_receive(sender, message)

    def on_suspect(self, report) -> None:
        if self.inner:
            self.inner.on_suspect(report)

    def on_tick(self) -> None:
        if (
            self.beats_left > 0
            and self.env.now - self._last_beat >= self.beat_interval
        ):
            self.beats_left -= 1
            self._last_beat = self.env.now
            self._seq += 1
            for q in self.env.others:
                self.env.send(q, Message(HEARTBEAT, (self.pid, self._seq)))
        if self.inner:
            self.inner.on_tick()

    def wants_to_act(self) -> bool:
        inner_wants = self.inner.wants_to_act() if self.inner else False
        return self.beats_left > 0 or inner_wants


def with_heartbeats(inner_factory=None, **hb_kwargs):
    """Protocol factory combinator adding a heartbeat layer."""

    def factory(pid: ProcessId, env: ProcessEnv) -> HeartbeatProcess:
        inner = inner_factory(pid, env) if inner_factory else None
        return HeartbeatProcess(pid, env, inner, **hb_kwargs)

    return factory


def derive_heartbeat_suspicions(run: Run, *, timeout: int = 14) -> Run:
    """Append derived suspect events computed from beacon staleness.

    At each odd step of the doubled timeline, process p suspects every
    q whose last heartbeat receipt is more than ``timeout`` ticks old
    (and suspects everyone it has never heard from once the initial
    grace period of ``timeout`` ticks has passed).
    """
    timelines: dict[ProcessId, list] = {}
    for p in run.processes:
        last_beat: dict[ProcessId, int] = {}
        merged: list = []
        crash_tick = run.crash_time(p)
        events = list(run.timeline(p))
        idx = 0
        last_emitted: frozenset | None = None
        for m in range(run.duration + 1):
            while idx < len(events) and events[idx][0] <= m:
                _, event = events[idx]
                if (
                    isinstance(event, ReceiveEvent)
                    and event.message.kind == HEARTBEAT
                ):
                    last_beat[event.sender] = events[idx][0]
                idx += 1
            if crash_tick is not None and m >= crash_tick:
                break
            if m <= timeout:
                continue  # grace period: no evidence yet
            suspects = frozenset(
                q
                for q in run.processes
                if q != p and m - last_beat.get(q, 0) > timeout
            )
            if suspects != last_emitted:
                merged.append(
                    (2 * m + 1, SuspectEvent(p, StandardSuspicion(suspects), derived=True))
                )
                last_emitted = suspects
        for t, event in run.timeline(p):
            merged.append((2 * t, event))
        merged.sort(key=lambda te: te[0])
        timelines[p] = merged
    return Run(
        run.processes,
        timelines,
        duration=2 * run.duration + 1,
        meta={**run.meta, "transformed": "heartbeat"},
    )


def derive_system_heartbeat(system: System, *, timeout: int = 14) -> System:
    """Derive heartbeat suspicions for every run of a system."""
    return System(
        [derive_heartbeat_suspicions(r, timeout=timeout) for r in system],
        context=system.context,
    )
