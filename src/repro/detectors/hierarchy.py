"""The failure-detector class hierarchy as data (Section 2.2 + Section 4).

Encodes the paper's detector classes, their defining property pairs,
and the implication/conversion structure between them, so that code can
*classify* an observed run ("what is the strongest detector class these
reports satisfy?") and reason about reachability ("can class X be
converted to class Y?", Props 2.1/2.2 plus trivial weakenings).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import networkx as nx

from repro.detectors.properties import (
    PropertyVerdict,
    atd_accuracy,
    impermanent_strong_completeness,
    impermanent_weak_completeness,
    strong_accuracy,
    strong_completeness,
    weak_accuracy,
    weak_completeness,
)
from repro.model.run import Run


@dataclass(frozen=True)
class DetectorClass:
    """One class: a named (completeness, accuracy) pair."""

    name: str
    completeness: Callable[..., PropertyVerdict]
    accuracy: Callable[..., PropertyVerdict]
    note: str = ""

    def satisfied_by(self, run: Run, *, derived: bool = False) -> bool:
        """Do both defining properties hold in the run?"""
        return bool(self.completeness(run, derived=derived)) and bool(
            self.accuracy(run, derived=derived)
        )


PERFECT = DetectorClass("perfect", strong_completeness, strong_accuracy)
STRONG = DetectorClass("strong", strong_completeness, weak_accuracy)
WEAK = DetectorClass("weak", weak_completeness, weak_accuracy)
IMPERMANENT_STRONG = DetectorClass(
    "impermanent-strong", impermanent_strong_completeness, weak_accuracy
)
IMPERMANENT_WEAK = DetectorClass(
    "impermanent-weak", impermanent_weak_completeness, weak_accuracy
)
ATD = DetectorClass(
    "atd",
    strong_completeness,
    atd_accuracy,
    note="ATD99's weakest class for UDC: rotating accuracy",
)

#: Strongest first; classification returns the first satisfied.
CLASS_ORDER: tuple[DetectorClass, ...] = (
    PERFECT,
    STRONG,
    WEAK,
    IMPERMANENT_STRONG,
    IMPERMANENT_WEAK,
    ATD,
)

BY_NAME = {cls.name: cls for cls in CLASS_ORDER}

#: Conversion edges: X -> Y means a system with X detectors can be
#: converted to one with Y detectors.  Solid edges are trivial
#: weakenings (a stronger pair implies a weaker one); the two labelled
#: edges are the paper's Props 2.1 and 2.2.
CONVERSIONS: tuple[tuple[str, str, str], ...] = (
    ("perfect", "strong", "weaken accuracy"),
    ("strong", "weak", "weaken completeness"),
    ("strong", "impermanent-strong", "weaken permanence"),
    ("weak", "impermanent-weak", "weaken permanence"),
    ("impermanent-strong", "impermanent-weak", "weaken completeness"),
    ("strong", "atd", "weaken accuracy to rotating"),
    ("impermanent-weak", "impermanent-strong", "Prop 2.1 (gossip suspicions)"),
    ("weak", "strong", "Prop 2.1 (gossip suspicions)"),
    ("impermanent-strong", "strong", "Prop 2.2 (remember reports)"),
    ("impermanent-weak", "weak", "Prop 2.2 (remember reports)"),
)


def conversion_graph() -> "nx.DiGraph":
    """The detector classes with the known conversion edges."""
    graph = nx.DiGraph()
    for cls in CLASS_ORDER:
        graph.add_node(cls.name, note=cls.note)
    for src, dst, how in CONVERSIONS:
        graph.add_edge(src, dst, how=how)
    return graph


def convertible(source: str, target: str) -> bool:
    """Can a system with ``source``-class detectors be converted (via
    any composition of the known conversions) to ``target``-class ones?"""
    graph = conversion_graph()
    if source not in graph or target not in graph:
        raise KeyError(f"unknown detector class {source!r} or {target!r}")
    return source == target or nx.has_path(graph, source, target)


def satisfied_classes(run: Run, *, derived: bool = False) -> list[str]:
    """All classes whose defining pair holds in the run, strongest first."""
    return [
        cls.name
        for cls in CLASS_ORDER
        if cls.satisfied_by(run, derived=derived)
    ]


def strongest_class(run: Run, *, derived: bool = False) -> str | None:
    """The strongest satisfied class, or None if even the weakest fails."""
    names = satisfied_classes(run, derived=derived)
    return names[0] if names else None


def classify_system(system, *, derived: bool = False) -> str | None:
    """The strongest class satisfied by EVERY run of the system."""
    for cls in CLASS_ORDER:
        if all(cls.satisfied_by(run, derived=derived) for run in system):
            return cls.name
    return None
