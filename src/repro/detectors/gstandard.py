"""g-standard failure detectors (Section 2.2).

A detector is *g-standard* when a function g maps each of its reports to
a subset of Proc, read as "the processes in g(x) are faulty".  The
paper's example: a detector that reports "the processes in Proc - S are
correct" is g-standard with g(report) = S.

:class:`GStandardOracle` wraps any standard oracle and re-encodes its
reports through an encoding/decoding pair; :func:`g_suspects_at` is the
g-standard generalisation of ``Suspects_p(r, m)``.  The paper notes all
its results carry over to g-standard detectors unchanged; the tests
exercise the accuracy/completeness checkers through this wrapper to
demonstrate that.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable

from repro.detectors.base import DetectorOracle, GroundTruthView
from repro.model.events import ProcessId, StandardSuspicion, Suspicion
from repro.model.history import History


@dataclass(frozen=True, slots=True)
class CorrectReport:
    """The paper's example report: "the processes in ``correct`` are correct"."""

    correct: frozenset[ProcessId]
    universe: frozenset[ProcessId]

    def __post_init__(self) -> None:
        if not isinstance(self.correct, frozenset):
            object.__setattr__(self, "correct", frozenset(self.correct))
        if not isinstance(self.universe, frozenset):
            object.__setattr__(self, "universe", frozenset(self.universe))


def g_complement(report: CorrectReport) -> frozenset[ProcessId]:
    """g("the processes in Proc - S are correct") = S."""
    return report.universe - report.correct


@dataclass(frozen=True, slots=True)
class GReport:
    """A non-standard report wrapped as a suspicion payload.

    ``Suspicion`` in histories is StandardSuspicion/GeneralizedSuspicion;
    g-standard oracles emit a StandardSuspicion computed by g so the
    existing checkers apply, but they also keep the raw report in
    ``raw`` for tests that exercise the g mapping itself.
    """

    raw: object
    mapped: frozenset[ProcessId]


class GStandardOracle(DetectorOracle):
    """Wrap a standard oracle: emit the g-image of a non-standard encoding.

    ``encode`` turns the inner oracle's suspicion set into the raw
    report; ``g`` maps it back.  The composition is the identity, which
    is exactly what makes the wrapped detector g-standard: its
    histories record reports whose g-image reproduces the inner
    suspicions, so every accuracy/completeness property transfers.
    """

    def __init__(
        self,
        inner: DetectorOracle,
        *,
        encode: Callable[[frozenset[ProcessId], tuple[ProcessId, ...]], object],
        g: Callable[[object], frozenset[ProcessId]],
    ) -> None:
        self.inner = inner
        self.encode = encode
        self.g = g
        self.name = f"g-standard({inner.name})"

    def fresh(self) -> "GStandardOracle":
        return GStandardOracle(self.inner.fresh(), encode=self.encode, g=self.g)

    def poll(
        self,
        pid: ProcessId,
        tick: int,
        truth: GroundTruthView,
        rng: random.Random,
    ) -> Suspicion | None:
        report = self.inner.poll(pid, tick, truth, rng)
        if report is None or not isinstance(report, StandardSuspicion):
            return report
        raw = self.encode(report.suspects, truth.processes)
        mapped = self.g(raw)
        if mapped != report.suspects:
            raise ValueError(
                "g o encode must be the identity on suspicion sets; got "
                f"{sorted(mapped)} for {sorted(report.suspects)}"
            )
        return StandardSuspicion(mapped)


def complement_gstandard(inner: DetectorOracle) -> GStandardOracle:
    """The paper's example: report correct sets, read back via complement."""
    return GStandardOracle(
        inner,
        encode=lambda suspects, procs: CorrectReport(
            frozenset(procs) - suspects, frozenset(procs)
        ),
        g=g_complement,
    )


def g_suspects_at(
    history: History, g: Callable[[object], frozenset[ProcessId]]
) -> frozenset[ProcessId]:
    """Suspects_p(r, m) for a g-standard detector: g of the latest report."""
    event = history.latest_suspicion()
    if event is None:
        return frozenset()
    report = event.report
    if isinstance(report, StandardSuspicion):
        return report.suspects
    return g(report)
