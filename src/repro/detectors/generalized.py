"""Generalized failure detectors (Section 4).

A generalized detector reports "at least k processes in S are faulty"
(without saying which).  Given a bound t on failures, a report
``suspect_p(S, k)`` is a *t-useful failure-detector event* for run r iff

    (a) F(r) is a subset of S,
    (b) n - |S| > min(t, n-1) - k, and
    (c) k <= |S|.

A generalized detector is *t-useful* when it satisfies generalized
strong accuracy (every reported count is backed by that many actual
crashes inside S at report time) and generalized impermanent strong
completeness (every correct process eventually gets a t-useful event).

Two oracles:

* :class:`GeneralizedOracle` -- component-style reports: S is the
  planned faulty set padded with correct processes (the paper's
  motivation: "some process in a component is faulty, without being able
  to say which one"); k counts the crashes that have actually happened.
* :class:`TrivialSubsetOracle` -- the paper's trivial t < n/2
  construction: emit (S, 0) for every subset S of size t.  Suspecting no
  one is vacuously accurate, and whenever F(r) is inside S the event
  (S, 0) is t-useful.
"""

from __future__ import annotations

import copy
from itertools import combinations

from repro.detectors.base import GroundTruthView, IntervalOracle
from repro.model.events import GeneralizedSuspicion, ProcessId, Suspicion


def is_t_useful_event(
    report: GeneralizedSuspicion,
    faulty: frozenset[ProcessId],
    n: int,
    t: int,
) -> bool:
    """Definition of a t-useful failure-detector event for a run with F(r)=faulty."""
    s, k = report.suspects, report.count
    return (
        faulty <= s
        and n - len(s) > min(t, n - 1) - k
        and k <= len(s)
    )


def max_padding(n: int, t: int) -> int:
    """Largest number of correct processes that can pad S while keeping
    the t-usefulness inequality (b) satisfiable with k = |F(r)|.

    With S = F(r) + pad extra processes and k = |F(r)|, condition (b)
    reads n - |F| - pad > min(t, n-1) - |F|, i.e. pad < n - min(t, n-1).
    """
    return max(0, n - min(t, n - 1) - 1)


class GeneralizedOracle(IntervalOracle):
    """A t-useful generalized detector with component-style padding.

    Each report is (S, k) with S = planned-faulty union a deterministic
    set of ``padding`` correct processes, and k = |actually crashed * S|
    at report time.  Accuracy holds by construction; completeness holds
    because once every planned crash has landed, k = |F(r)| and the
    padding bound keeps inequality (b) true.

    ``padding`` is clamped to :func:`max_padding`; requesting more would
    make the detector useless (exactly the boundary Section 4 draws).
    """

    name = "generalized"

    def __init__(
        self,
        t: int,
        *,
        interval: int = 3,
        start_tick: int = 1,
        padding: int = 0,
        clamp_padding: bool = True,
    ) -> None:
        super().__init__(interval=interval, start_tick=start_tick)
        if t < 0:
            raise ValueError("t must be non-negative")
        if padding < 0:
            raise ValueError("padding must be non-negative")
        self.t = t
        self.padding = padding
        self.clamp_padding = clamp_padding
        self._last_emitted: dict[ProcessId, tuple] = {}

    def fresh(self):
        clone = copy.copy(self)
        clone._last_report = {}
        clone._last_emitted = {}
        return clone

    def _padding_set(self, truth: GroundTruthView) -> frozenset[ProcessId]:
        n = len(truth.processes)
        pad = self.padding
        if self.clamp_padding:
            pad = min(pad, max_padding(n, self.t))
        correct = sorted(truth.planned_correct())
        return frozenset(correct[:pad])

    def poll(self, pid, tick, truth, rng) -> Suspicion | None:
        if not self.due(pid, tick):
            return None
        subset = frozenset(truth.planned_faulty) | self._padding_set(truth)
        if not subset:
            # Failure-free run: the empty (S, 0) report is trivially
            # t-useful whenever n > min(t, n-1), i.e. always.
            subset = frozenset()
        count = len(truth.crashed_by(tick) & subset)
        key = (subset, count)
        if self._last_emitted.get(pid) == key:
            return None
        self._last_emitted[pid] = key
        self.mark(pid, tick)
        return GeneralizedSuspicion(subset, count)


class TrivialSubsetOracle(IntervalOracle):
    """The trivial t-useful detector for t < n/2 (Section 4).

    For each subset S of Proc with |S| = t, output (S, 0).  The paper
    notes this is accurate (suspecting nobody in particular) and that in
    every run at least one t-sized subset contains F(r), making that
    report t-useful.  Each process emits one full cycle of subsets; the
    reports are stable facts, so one cycle suffices on finite runs.

    This oracle is how Corollary 4.2 (Gopal-Toueg, no detector needed
    for t < n/2) falls out of Proposition 4.1: the "detector" consults
    no ground truth at all -- note ``poll`` ignores ``truth``.
    """

    name = "trivial-subsets"

    def __init__(self, t: int, *, interval: int = 2, start_tick: int = 1) -> None:
        super().__init__(interval=interval, start_tick=start_tick)
        if t < 0:
            raise ValueError("t must be non-negative")
        self.t = t
        self._cursor: dict[ProcessId, int] = {}
        self._subsets_cache: tuple[frozenset[ProcessId], ...] | None = None

    def fresh(self):
        clone = copy.copy(self)
        clone._last_report = {}
        clone._cursor = {}
        clone._subsets_cache = None
        return clone

    def _subsets(self, processes: tuple[ProcessId, ...]):
        if self._subsets_cache is None:
            self._subsets_cache = tuple(
                frozenset(c) for c in combinations(sorted(processes), self.t)
            )
        return self._subsets_cache

    def poll(self, pid, tick, truth, rng) -> Suspicion | None:
        if not self.due(pid, tick):
            return None
        subsets = self._subsets(truth.processes)
        cursor = self._cursor.get(pid, 0)
        if cursor >= len(subsets):
            return None  # full cycle emitted
        self._cursor[pid] = cursor + 1
        self.mark(pid, tick)
        return GeneralizedSuspicion(subsets[cursor], 0)
