"""Detector conversions (Propositions 2.1, 2.2; Section 4's n-useful <-> perfect).

A conversion maps a system R to a system R' via a function f on runs:
every non-failure-detector event of r appears in f(r) in the same order;
f(r) may carry additional communication and new failure-detector events
(marked ``derived=True``), which are the ones the property checkers of
R' look at.

* :func:`convert_impermanent_to_permanent` (Prop 2.2) is purely local:
  the new report at each detector event is the union of everything
  reported so far.  No new events are added; original suspect events get
  a derived twin one tick later.
* :func:`convert_weak_to_strong` (Prop 2.1) needs communication ("all
  processes just communicate and tell each other about the suspicions"):
  it is implemented in two parts.  The :class:`SuspicionGossip` protocol
  wrapper runs alongside the application protocol and broadcasts every
  report its process receives; this puts the gossip *into the run* as
  ordinary messages.  The run transformation then derives each process's
  converted reports as the union of its own reports and the gossiped
  ones it has received so far.
* :func:`convert_generalized_to_perfect` / :func:`convert_perfect_to_n_useful`
  realise the Section 4 equivalences for (n-1)- and n-useful detectors.

All transformations double the timeline exactly like the P1-P3
construction (original event at r-time m lands at 2m; the derived report
reflecting r_p(m) lands at 2m+1), so derived events never collide with
originals and R2 is preserved.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.model.events import (
    GeneralizedSuspicion,
    Message,
    ProcessId,
    ReceiveEvent,
    StandardSuspicion,
    SuspectEvent,
    Suspicion,
)
from repro.model.run import Run
from repro.model.system import System
from repro.sim.process import ProcessEnv, ProtocolProcess

GOSSIP = "susp-gossip"


def _transform_with_state(
    run: Run,
    initial_state,
    update: Callable,
    report_of: Callable,
) -> Run:
    """Double the timeline; maintain per-process state over the original
    events and append a derived report at 2m+1 whenever it changes."""
    timelines: dict[ProcessId, list] = {}
    for p in run.processes:
        state = initial_state()
        merged: list = []
        last_report = None
        event_iter = list(run.timeline(p))
        idx = 0
        crash_tick = run.crash_time(p)
        for m in range(run.duration + 1):
            # Feed original events at time m into the state.
            while idx < len(event_iter) and event_iter[idx][0] <= m:
                state = update(state, event_iter[idx][1])
                idx += 1
            if crash_tick is not None and m >= crash_tick:
                break
            report = report_of(state)
            if report is not None and report != last_report:
                merged.append((2 * m + 1, SuspectEvent(p, report, derived=True)))
                last_report = report
        for t, event in run.timeline(p):
            merged.append((2 * t, event))
        merged.sort(key=lambda te: te[0])
        timelines[p] = merged
    return Run(
        run.processes,
        timelines,
        duration=2 * run.duration + 1,
        meta=dict(run.meta),
    )


# ---------------------------------------------------------------------------
# Proposition 2.2: impermanent -> permanent completeness
# ---------------------------------------------------------------------------


def convert_impermanent_to_permanent(run: Run) -> Run:
    """Report, at every step, the union of all previously suspected processes."""

    def update(state: frozenset, event) -> frozenset:
        if isinstance(event, SuspectEvent) and not event.derived:
            if isinstance(event.report, StandardSuspicion):
                return state | event.report.suspects
        return state

    return _transform_with_state(
        run,
        initial_state=frozenset,
        update=update,
        report_of=lambda state: StandardSuspicion(state),
    )


def convert_system_impermanent_to_permanent(system: System) -> System:
    """Apply Prop 2.2's conversion to every run of a system."""
    return System(
        [convert_impermanent_to_permanent(r) for r in system],
        context=system.context,
    )


# ---------------------------------------------------------------------------
# Proposition 2.1: weak -> strong completeness, via gossip
# ---------------------------------------------------------------------------


class SuspicionGossip(ProtocolProcess):
    """Protocol wrapper: re-broadcasts every suspicion report it observes.

    Compose with any application protocol via :func:`with_gossip`; the
    gossip messages become part of the run, and
    :func:`convert_weak_to_strong` then reads them back out.
    """

    def __init__(
        self,
        pid: ProcessId,
        env: ProcessEnv,
        inner: ProtocolProcess,
        *,
        resend_rounds: int = 6,
        resend_interval: int = 4,
    ) -> None:
        super().__init__(pid, env)
        self.inner = inner
        self.resend_rounds = resend_rounds
        self.resend_interval = resend_interval
        self._known: set[frozenset[ProcessId]] = set()
        self._sends_left: dict[tuple[ProcessId, frozenset], int] = {}
        self._last_resend = -(10**9)

    def _learn(self, suspects: frozenset[ProcessId]) -> None:
        if suspects in self._known or not suspects:
            return
        self._known.add(suspects)
        for q in self.env.others:
            self._sends_left[(q, suspects)] = self.resend_rounds

    def _resend(self) -> None:
        if self.env.now - self._last_resend < self.resend_interval:
            return
        sent = False
        for (q, suspects), left in list(self._sends_left.items()):
            if left <= 0:
                continue
            self._sends_left[(q, suspects)] = left - 1
            self.env.send(q, Message(GOSSIP, suspects))
            sent = True
        if sent:
            self._last_resend = self.env.now

    # -- delegated hooks ------------------------------------------------------

    def on_start(self) -> None:
        self.inner.on_start()

    def on_init(self, action) -> None:
        self.inner.on_init(action)

    def on_receive(self, sender, message) -> None:
        if message.kind == GOSSIP:
            self._learn(message.payload)
            # Feed the heard suspicion to the inner protocol as if its
            # own (converted) detector had reported it -- this is the
            # operational content of Prop 2.1: the converted detector's
            # reports are the union of everything gossiped.  The inner
            # protocol's state remains a function of its local history,
            # since the gossip message itself is in the history.
            self.inner.on_suspect(StandardSuspicion(message.payload))
            return
        self.inner.on_receive(sender, message)

    def on_suspect(self, report: Suspicion) -> None:
        if isinstance(report, StandardSuspicion):
            self._learn(report.suspects)
        self.inner.on_suspect(report)

    def on_tick(self) -> None:
        self._resend()
        self.inner.on_tick()

    def wants_to_act(self) -> bool:
        pending_gossip = any(left > 0 for left in self._sends_left.values())
        return pending_gossip or self.inner.wants_to_act()


@dataclass(frozen=True)
class GossipProtocol:
    """Picklable factory form of :func:`with_gossip` (see
    :class:`repro.sim.process.UniformProtocol` for why factories are
    dataclasses rather than closures)."""

    inner_factory: object
    gossip_kwargs: tuple[tuple[str, object], ...] = ()

    def __call__(self, pid: ProcessId, env: ProcessEnv) -> SuspicionGossip:
        return SuspicionGossip(
            pid, env, self.inner_factory(pid, env), **dict(self.gossip_kwargs)
        )


def with_gossip(inner_factory, **gossip_kwargs):
    """Wrap a protocol factory so every process also gossips suspicions."""
    return GossipProtocol(inner_factory, tuple(sorted(gossip_kwargs.items())))


def convert_weak_to_strong(run: Run) -> Run:
    """Derive, per process, reports = union of own reports and gossip heard.

    The run must have been produced with :func:`with_gossip` (otherwise
    there is no gossip to read and the conversion degrades to
    Prop 2.2's local union).
    """

    def update(state: frozenset, event) -> frozenset:
        if isinstance(event, SuspectEvent) and not event.derived:
            if isinstance(event.report, StandardSuspicion):
                return state | event.report.suspects
        if isinstance(event, ReceiveEvent) and event.message.kind == GOSSIP:
            return state | event.message.payload
        return state

    return _transform_with_state(
        run,
        initial_state=frozenset,
        update=update,
        report_of=lambda state: StandardSuspicion(state),
    )


def convert_system_weak_to_strong(system: System) -> System:
    """Apply Prop 2.1's conversion to every run of a system."""
    return System(
        [convert_weak_to_strong(r) for r in system], context=system.context
    )


# ---------------------------------------------------------------------------
# Section 4: n-useful <-> perfect
# ---------------------------------------------------------------------------


def convert_generalized_to_perfect(run: Run) -> Run:
    """(n-1)-/n-useful -> perfect: a (S, k) report with |S| = k pins every
    member of S as crashed; report the union of such sets."""

    def update(state: frozenset, event) -> frozenset:
        if isinstance(event, SuspectEvent) and not event.derived:
            report = event.report
            if (
                isinstance(report, GeneralizedSuspicion)
                and report.count == len(report.suspects)
            ):
                return state | report.suspects
        return state

    return _transform_with_state(
        run,
        initial_state=frozenset,
        update=update,
        report_of=lambda state: StandardSuspicion(state),
    )


def convert_perfect_to_n_useful(run: Run) -> Run:
    """Perfect -> n-useful: report (S', |S'|) where S' accumulates every
    standard suspicion seen so far."""

    def update(state: frozenset, event) -> frozenset:
        if isinstance(event, SuspectEvent) and not event.derived:
            if isinstance(event.report, StandardSuspicion):
                return state | event.report.suspects
        return state

    return _transform_with_state(
        run,
        initial_state=frozenset,
        update=update,
        report_of=lambda state: GeneralizedSuspicion(state, len(state)),
    )


def convert_system_generalized_to_perfect(system: System) -> System:
    """Apply the n-useful -> perfect conversion to every run."""
    return System(
        [convert_generalized_to_perfect(r) for r in system],
        context=system.context,
    )


def convert_system_perfect_to_n_useful(system: System) -> System:
    """Apply the perfect -> n-useful conversion to every run."""
    return System(
        [convert_perfect_to_n_useful(r) for r in system], context=system.context
    )
