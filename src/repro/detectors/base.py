"""Failure-detector oracle interface and ``Suspects_p(r, m)`` (Section 2.2).

Following Chandra and Toueg, a failure detector is a per-process oracle
with access to the ground truth of failures (their history function H).
The paper models the act of p getting a report as the event
``suspect_p(x)`` in p's history, which is exactly what the executor
records when an oracle emits a report.

The oracle sees a :class:`GroundTruthView`: which processes have
*actually* crashed so far (crash event appended), and which are
*planned* to crash in this run (needed by weak-accuracy detectors, which
must pick a correct process to never suspect).  Protocols never see this
view -- only the reports.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import Iterator

from repro.model.events import (
    ProcessId,
    StandardSuspicion,
    SuspectEvent,
    Suspicion,
)
from repro.model.history import History
from repro.model.run import Run


class GroundTruthView:
    """What an oracle may consult: the failure pattern of the current run."""

    def __init__(
        self,
        processes: tuple[ProcessId, ...],
        planned_faulty: frozenset[ProcessId],
        crash_ticks: dict[ProcessId, int],
    ) -> None:
        self.processes = processes
        self.planned_faulty = planned_faulty
        self._crash_ticks = crash_ticks  # updated by the executor as crashes land

    def crashed_by(self, tick: int) -> frozenset[ProcessId]:
        """Processes whose crash event has been appended at or before ``tick``."""
        return frozenset(
            p for p, t in self._crash_ticks.items() if t <= tick
        )

    def live_by(self, tick: int) -> frozenset[ProcessId]:
        """Processes with no crash event at or before ``tick``."""
        return frozenset(self.processes) - self.crashed_by(tick)

    def planned_correct(self) -> frozenset[ProcessId]:
        """Proc - planned_faulty: the processes correct in this run."""
        return frozenset(self.processes) - self.planned_faulty


class DetectorOracle(ABC):
    """A per-run failure-detector oracle.

    ``poll(pid, tick, truth, rng)`` is called by the executor on ticks
    where process ``pid`` is free to record a failure-detector event; it
    returns a report to emit as ``suspect_pid(report)``, or ``None``.

    ``fresh()`` returns an oracle instance for a new run (oracles may be
    stateful per run, e.g. to implement "permanently suspected").
    """

    #: descriptive name used in Context.detector and in reports
    name: str = "detector"

    @abstractmethod
    def poll(
        self,
        pid: ProcessId,
        tick: int,
        truth: GroundTruthView,
        rng: random.Random,
    ) -> Suspicion | None:
        """Return the report to emit now, or None."""

    def fresh(self) -> "DetectorOracle":
        """Per-run copy; default assumes the oracle is stateless."""
        return self


class NoDetector(DetectorOracle):
    """The absent failure detector (Propositions 2.3, 2.4, Cor 4.2 contexts)."""

    name = "none"

    def poll(
        self,
        pid: ProcessId,
        tick: int,
        truth: GroundTruthView,
        rng: random.Random,
    ) -> Suspicion | None:
        return None


class IntervalOracle(DetectorOracle):
    """Base for oracles that report every ``interval`` ticks per process."""

    def __init__(self, *, interval: int = 3, start_tick: int = 1) -> None:
        if interval < 1:
            raise ValueError("interval must be >= 1")
        self.interval = interval
        self.start_tick = start_tick
        self._last_report: dict[ProcessId, int] = {}

    def due(self, pid: ProcessId, tick: int) -> bool:
        """Has the per-process reporting interval elapsed?"""
        if tick < self.start_tick:
            return False
        last = self._last_report.get(pid)
        return last is None or tick - last >= self.interval

    def mark(self, pid: ProcessId, tick: int) -> None:
        """Record that a report was emitted now (restarts the interval)."""
        self._last_report[pid] = tick

    def fresh(self) -> "IntervalOracle":
        import copy

        clone = copy.copy(self)
        clone._last_report = {}
        return clone


# ---------------------------------------------------------------------------
# Suspects_p(r, m): reading suspicions back out of histories
# ---------------------------------------------------------------------------


def suspects_at(
    history: History, *, derived: bool = False
) -> frozenset[ProcessId]:
    """``Suspects_p(r, m)`` for standard reports: the suspicion set of the
    most recent failure-detector event, or the empty set if none.

    ``derived`` selects the simulated (``suspect'``) events of the P3/P3'
    constructions instead of the original oracle's events.
    """
    event = history.latest_suspicion(derived=derived)
    if event is None:
        return frozenset()
    report = event.report
    if isinstance(report, StandardSuspicion):
        return report.suspects
    raise TypeError(
        f"history's latest report is not standard: {report!r}; use the "
        "generalized accessors for (S, k) reports"
    )


def suspicion_history(
    run: Run, pid: ProcessId, *, derived: bool = False
) -> Iterator[tuple[int, Suspicion]]:
    """All (tick, report) failure-detector events of ``pid`` in ``run``."""
    for tick, event in run.timeline(pid):
        if isinstance(event, SuspectEvent) and event.derived == derived:
            yield tick, event.report


def ever_suspected(
    run: Run, observer: ProcessId, target: ProcessId, *, derived: bool = False
) -> bool:
    """True iff ``target`` is in some standard report of ``observer``."""
    for _, report in suspicion_history(run, observer, derived=derived):
        if isinstance(report, StandardSuspicion) and target in report.suspects:
            return True
    return False


def permanently_suspected_from(
    run: Run, observer: ProcessId, target: ProcessId, *, derived: bool = False
) -> int | None:
    """The earliest time m such that target is in Suspects_observer(r, m')
    for all m' in [m, duration], or None.

    With the final-cut-repeats-forever convention this decides the
    paper's "eventually permanently suspected".
    """
    last_ok: int | None = None
    current: frozenset[ProcessId] = frozenset()
    # Walk the timeline of suspicion changes; between reports the set is
    # constant, so we track intervals where target is suspected.
    changes: list[tuple[int, frozenset[ProcessId]]] = [(0, frozenset())]
    for tick, report in suspicion_history(run, observer, derived=derived):
        if isinstance(report, StandardSuspicion):
            changes.append((tick, report.suspects))
    changes.append((run.duration + 1, None))  # sentinel

    for (tick, suspects), (next_tick, _) in zip(changes, changes[1:]):
        if suspects is None:
            break
        if target in suspects:
            if last_ok is None:
                last_ok = tick
        else:
            last_ok = None
        current = suspects
    if last_ok is not None and target in current:
        return last_ok
    return None
