"""Checkers for the failure-detector properties of Sections 2.2 and 4.

Each checker takes a :class:`~repro.model.run.Run` (or a
:class:`~repro.model.system.System`, which must satisfy the property in
every run) and decides the property *exactly* under the finite-horizon
convention that the final cut repeats forever:

* "eventually" (impermanent completeness) -> at some time <= duration;
* "eventually permanently" (strong/weak completeness) -> from some time
  on through the duration, and still holding at the duration.

``derived=True`` switches all checkers to the ``suspect'`` events of the
P3 / P3' run transformations (Theorems 3.6 and 4.3), which coexist in
transformed runs with the original oracle's events.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator

from repro.detectors.base import (
    ever_suspected,
    permanently_suspected_from,
    suspicion_history,
)
from repro.detectors.generalized import is_t_useful_event
from repro.model.events import GeneralizedSuspicion, ProcessId, StandardSuspicion
from repro.model.run import Run
from repro.model.system import System


@dataclass(frozen=True)
class PropertyVerdict:
    """Outcome of a property check, with the first counterexample found."""

    holds: bool
    witness: str = ""

    def __bool__(self) -> bool:
        return self.holds

    @classmethod
    def ok(cls) -> "PropertyVerdict":
        return cls(True)

    @classmethod
    def fail(cls, witness: str) -> "PropertyVerdict":
        return cls(False, witness)


def _standard_reports(
    run: Run, pid: ProcessId, derived: bool
) -> Iterator[tuple[int, StandardSuspicion]]:
    for tick, report in suspicion_history(run, pid, derived=derived):
        if isinstance(report, StandardSuspicion):
            yield tick, report


def _generalized_reports(
    run: Run, pid: ProcessId, derived: bool
) -> Iterator[tuple[int, GeneralizedSuspicion]]:
    for tick, report in suspicion_history(run, pid, derived=derived):
        if isinstance(report, GeneralizedSuspicion):
            yield tick, report


# ---------------------------------------------------------------------------
# Accuracy
# ---------------------------------------------------------------------------


def strong_accuracy(run: Run, *, derived: bool = False) -> PropertyVerdict:
    """No process is suspected before it crashes."""
    for p in run.processes:
        for tick, report in _standard_reports(run, p, derived):
            for q in report.suspects:
                if not run.crashed_by(q, tick):
                    return PropertyVerdict.fail(
                        f"{p} suspects {q} at time {tick} but {q} has not crashed"
                    )
    return PropertyVerdict.ok()


def weak_accuracy(run: Run, *, derived: bool = False) -> PropertyVerdict:
    """If some process is correct, some correct process is never suspected."""
    correct = run.correct()
    if not correct:
        return PropertyVerdict.ok()  # F(r) = Proc: vacuous
    for q in sorted(correct):
        if not any(
            ever_suspected(run, p, q, derived=derived) for p in run.processes
        ):
            return PropertyVerdict.ok()
    return PropertyVerdict.fail(
        "every correct process is suspected at some point"
    )


# ---------------------------------------------------------------------------
# Completeness
# ---------------------------------------------------------------------------


def strong_completeness(run: Run, *, derived: bool = False) -> PropertyVerdict:
    """All faulty processes eventually permanently suspected by all correct."""
    for q in sorted(run.faulty()):
        for p in sorted(run.correct()):
            if permanently_suspected_from(run, p, q, derived=derived) is None:
                return PropertyVerdict.fail(
                    f"faulty {q} is not permanently suspected by correct {p}"
                )
    return PropertyVerdict.ok()


def weak_completeness(run: Run, *, derived: bool = False) -> PropertyVerdict:
    """Each faulty process eventually permanently suspected by some correct."""
    if not run.correct():
        return PropertyVerdict.ok()  # F(r) = Proc: vacuous
    for q in sorted(run.faulty()):
        if not any(
            permanently_suspected_from(run, p, q, derived=derived) is not None
            for p in run.correct()
        ):
            return PropertyVerdict.fail(
                f"faulty {q} is not permanently suspected by any correct process"
            )
    return PropertyVerdict.ok()


def impermanent_strong_completeness(run: Run, *, derived: bool = False) -> PropertyVerdict:
    """All faulty processes eventually suspected (not necessarily permanently)
    by all correct processes."""
    for q in sorted(run.faulty()):
        for p in sorted(run.correct()):
            if not ever_suspected(run, p, q, derived=derived):
                return PropertyVerdict.fail(
                    f"faulty {q} is never suspected by correct {p}"
                )
    return PropertyVerdict.ok()


def impermanent_weak_completeness(run: Run, *, derived: bool = False) -> PropertyVerdict:
    """Each faulty process eventually suspected by some correct process."""
    if not run.correct():
        return PropertyVerdict.ok()
    for q in sorted(run.faulty()):
        if not any(ever_suspected(run, p, q, derived=derived) for p in run.correct()):
            return PropertyVerdict.fail(
                f"faulty {q} is never suspected by any correct process"
            )
    return PropertyVerdict.ok()


# ---------------------------------------------------------------------------
# Detector classes (conjunctions)
# ---------------------------------------------------------------------------


def is_perfect(run: Run, *, derived: bool = False) -> PropertyVerdict:
    """Strong completeness + strong accuracy."""
    verdict = strong_completeness(run, derived=derived)
    if not verdict:
        return verdict
    return strong_accuracy(run, derived=derived)


def is_strong(run: Run, *, derived: bool = False) -> PropertyVerdict:
    """Strong completeness + weak accuracy."""
    verdict = strong_completeness(run, derived=derived)
    if not verdict:
        return verdict
    return weak_accuracy(run, derived=derived)


def is_weak(run: Run, *, derived: bool = False) -> PropertyVerdict:
    """Weak completeness + weak accuracy."""
    verdict = weak_completeness(run, derived=derived)
    if not verdict:
        return verdict
    return weak_accuracy(run, derived=derived)


def is_impermanent_strong(run: Run, *, derived: bool = False) -> PropertyVerdict:
    """Impermanent strong completeness + weak accuracy."""
    verdict = impermanent_strong_completeness(run, derived=derived)
    if not verdict:
        return verdict
    return weak_accuracy(run, derived=derived)


def is_impermanent_weak(run: Run, *, derived: bool = False) -> PropertyVerdict:
    """Impermanent weak completeness + weak accuracy."""
    verdict = impermanent_weak_completeness(run, derived=derived)
    if not verdict:
        return verdict
    return weak_accuracy(run, derived=derived)


# ---------------------------------------------------------------------------
# Generalized detector properties (Section 4)
# ---------------------------------------------------------------------------


def generalized_strong_accuracy(run: Run, *, derived: bool = False) -> PropertyVerdict:
    """Every (S, k) report is backed by k actual crashes inside S at report time."""
    for p in run.processes:
        for tick, report in _generalized_reports(run, p, derived):
            actually = sum(1 for q in report.suspects if run.crashed_by(q, tick))
            if actually < report.count:
                return PropertyVerdict.fail(
                    f"{p}'s report ({sorted(report.suspects)}, {report.count}) "
                    f"at time {tick} is backed by only {actually} crashes"
                )
    return PropertyVerdict.ok()


def generalized_impermanent_strong_completeness(
    run: Run, t: int, *, derived: bool = False
) -> PropertyVerdict:
    """Every correct process eventually gets a t-useful event for this run."""
    n = len(run.processes)
    faulty = run.faulty()
    for p in sorted(run.correct()):
        useful = any(
            is_t_useful_event(report, faulty, n, t)
            for _, report in _generalized_reports(run, p, derived)
        )
        if not useful:
            return PropertyVerdict.fail(
                f"correct {p} never receives a {t}-useful event "
                f"(F(r) = {sorted(faulty)})"
            )
    return PropertyVerdict.ok()


def is_t_useful(run: Run, t: int, *, derived: bool = False) -> PropertyVerdict:
    """Generalized strong accuracy + t-useful completeness (Section 4)."""
    verdict = generalized_strong_accuracy(run, derived=derived)
    if not verdict:
        return verdict
    return generalized_impermanent_strong_completeness(run, t, derived=derived)


# ---------------------------------------------------------------------------
# ATD99 accuracy (Section 5)
# ---------------------------------------------------------------------------


def atd_accuracy(run: Run, *, derived: bool = False) -> PropertyVerdict:
    """Aguilera-Toueg-Deianov accuracy: if some process is correct then at
    every time, some correct process is not currently suspected by any
    live process (possibly a different one at different times).

    Suspicions of crashed observers are disregarded from their crash
    time on: a crashed process's detector module no longer emits and its
    last report is not a live suspicion.
    """
    correct = run.correct()
    if not correct:
        return PropertyVerdict.ok()
    # Event stream affecting the live-suspicion union: reports (set the
    # observer's current suspicions) and observer crashes (clear them).
    current: dict[ProcessId, frozenset[ProcessId]] = {
        p: frozenset() for p in run.processes
    }
    changes: list[tuple[int, int, ProcessId, frozenset[ProcessId] | None]] = []
    for p in run.processes:
        for tick, report in _standard_reports(run, p, derived):
            changes.append((tick, 0, p, report.suspects))
        crash_tick = run.crash_time(p)
        if crash_tick is not None:
            changes.append((crash_tick, 1, p, None))
    changes.sort(key=lambda c: (c[0], c[1]))

    def some_correct_unsuspected() -> bool:
        union: set[ProcessId] = set()
        for suspects in current.values():
            union |= suspects
        return any(q not in union for q in correct)

    if not some_correct_unsuspected():
        return PropertyVerdict.fail("all correct processes suspected at time 0")
    for tick, _, p, suspects in changes:
        current[p] = frozenset() if suspects is None else suspects
        if not some_correct_unsuspected():
            return PropertyVerdict.fail(
                f"at time {tick} every correct process is suspected by someone"
            )
    return PropertyVerdict.ok()


# ---------------------------------------------------------------------------
# System-level checks
# ---------------------------------------------------------------------------


def system_satisfies(
    system: System,
    checker: Callable[..., PropertyVerdict],
    /,
    *args: object,
    **kwargs: object,
) -> PropertyVerdict:
    """A system satisfies a property iff every run does."""
    for i, run in enumerate(system):
        verdict = checker(run, *args, **kwargs)
        if not verdict:
            return PropertyVerdict.fail(f"run {i}: {verdict.witness}")
    return PropertyVerdict.ok()
