"""Standard failure detectors (Section 2.2).

Oracles here emit :class:`~repro.model.events.StandardSuspicion` reports
("the processes in S are faulty").  Each class realises one of the
paper's detector classes:

==========================  ===============================  =======================
class                       completeness                     accuracy
==========================  ===============================  =======================
:class:`PerfectOracle`      strong                           strong
:class:`StrongOracle`       strong                           weak
:class:`WeakOracle`         weak                             weak
:class:`ImpermanentStrongOracle`  impermanent strong         weak
:class:`ImpermanentWeakOracle`    impermanent weak           weak
:class:`EventuallyWeakOracle`     eventual strong            eventual weak (CT's <>S;
                                                             <>W is equivalent by the
                                                             standard conversion)
:class:`NoisyStrongOracle`  strong                           *violated* at rate eps
                                                             (ablation A13)
:class:`LyingOracle`        none                             none (negative control)
==========================  ===============================  =======================

Reports are emitted *on change*: an oracle stays silent while its
suspicion set is unchanged, which matches the paper's most-recent-report
semantics of ``Suspects_p(r, m)`` and lets runs reach quiescence.

Weak accuracy requires a correct process that is *never* suspected; the
oracles realise it by designating an immune process -- the planned-
correct process with the smallest identifier.  (If every process is
planned to crash, weak accuracy is vacuous and no process is immune.)
"""

from __future__ import annotations

import copy
import random

from repro.detectors.base import GroundTruthView, IntervalOracle
from repro.model.events import ProcessId, StandardSuspicion, Suspicion


def _immune_process(truth: GroundTruthView) -> ProcessId | None:
    """The designated never-suspected correct process (weak accuracy)."""
    correct = truth.planned_correct()
    return min(correct) if correct else None


class ChangeOracle(IntervalOracle):
    """Base class: emit the desired standard set whenever it changes."""

    def __init__(self, *, interval: int = 3, start_tick: int = 1) -> None:
        super().__init__(interval=interval, start_tick=start_tick)
        self._last_emitted: dict[ProcessId, frozenset[ProcessId]] = {}

    def desired(
        self,
        pid: ProcessId,
        tick: int,
        truth: GroundTruthView,
        rng: random.Random,
    ) -> frozenset[ProcessId]:
        """The suspicion set this oracle wants ``pid`` to hold now."""
        raise NotImplementedError

    def poll(self, pid, tick, truth, rng) -> Suspicion | None:
        if not self.due(pid, tick):
            return None
        want = self.desired(pid, tick, truth, rng)
        if want == self._last_emitted.get(pid, frozenset()):
            return None
        self._last_emitted[pid] = want
        self.mark(pid, tick)
        return StandardSuspicion(want)

    def fresh(self):
        clone = copy.copy(self)
        clone._last_report = {}
        clone._last_emitted = {}
        clone._extra_reset()
        return clone

    def _extra_reset(self) -> None:
        """Subclasses clear per-run state here."""


class PerfectOracle(ChangeOracle):
    """Strong completeness + strong accuracy: suspects exactly the crashed."""

    name = "perfect"

    def desired(self, pid, tick, truth, rng):
        return truth.crashed_by(tick)


class StrongOracle(ChangeOracle):
    """Strong completeness + weak accuracy.

    Suspects every crashed process, plus (with probability
    ``false_positive_rate`` per poll) a persistent false suspicion of a
    random process other than the immune one.  With the default rate of
    0.15 runs routinely contain suspicions of correct processes, which is
    what distinguishes a strong detector from a perfect one.
    """

    name = "strong"

    def __init__(
        self,
        *,
        interval: int = 3,
        start_tick: int = 1,
        false_positive_rate: float = 0.15,
        max_false_positives: int = 2,
    ) -> None:
        super().__init__(interval=interval, start_tick=start_tick)
        if not 0.0 <= false_positive_rate <= 1.0:
            raise ValueError("false_positive_rate must be in [0, 1]")
        self.false_positive_rate = false_positive_rate
        self.max_false_positives = max_false_positives
        self._false: dict[ProcessId, set[ProcessId]] = {}

    def _extra_reset(self) -> None:
        self._false = {}

    def desired(self, pid, tick, truth, rng):
        crashed = truth.crashed_by(tick)
        false_set = self._false.setdefault(pid, set())
        if (
            len(false_set) < self.max_false_positives
            and rng.random() < self.false_positive_rate
        ):
            immune = _immune_process(truth)
            candidates = [
                q
                for q in truth.processes
                if q != pid and q != immune and q not in false_set
            ]
            if candidates:
                false_set.add(rng.choice(candidates))
        return crashed | frozenset(false_set)


class WeakOracle(ChangeOracle):
    """Weak completeness + weak accuracy.

    Each faulty process is suspected only by its designated *witness*, a
    deterministically chosen planned-correct process.  Other correct
    processes get no report about it, so strong completeness fails
    whenever there are at least two correct processes.
    """

    name = "weak"

    def _witness(self, target: ProcessId, truth: GroundTruthView) -> ProcessId | None:
        correct = sorted(truth.planned_correct())
        if not correct:
            return None
        # Stable assignment: hash the target name onto the correct list.
        return correct[sum(map(ord, target)) % len(correct)]

    def desired(self, pid, tick, truth, rng):
        return frozenset(
            q for q in truth.crashed_by(tick) if self._witness(q, truth) == pid
        )


class ImpermanentStrongOracle(ChangeOracle):
    """Impermanent strong completeness + weak accuracy.

    Every correct process suspects each crashed process at least once,
    but each suspicion is *retracted* ``retract_after`` ticks later
    (a subsequent report without the process).  Under the most-recent-
    report semantics the process is then no longer suspected, so strong
    (permanent) completeness fails; Proposition 2.2's conversion restores
    it.
    """

    name = "impermanent-strong"

    def __init__(
        self,
        *,
        interval: int = 3,
        start_tick: int = 1,
        retract_after: int = 6,
    ) -> None:
        super().__init__(interval=interval, start_tick=start_tick)
        self.retract_after = retract_after
        self._reported_at: dict[tuple[ProcessId, ProcessId], int] = {}

    def _extra_reset(self) -> None:
        self._reported_at = {}

    def desired(self, pid, tick, truth, rng):
        current = set()
        for q in truth.crashed_by(tick):
            key = (pid, q)
            first = self._reported_at.setdefault(key, tick)
            if tick < first + self.retract_after:
                current.add(q)
        return frozenset(current)


class ImpermanentWeakOracle(ImpermanentStrongOracle):
    """Impermanent weak completeness: only the witness reports, once."""

    name = "impermanent-weak"

    def desired(self, pid, tick, truth, rng):
        witness_oracle = WeakOracle()
        witnessed = witness_oracle.desired(pid, tick, truth, rng)
        current = set()
        for q in witnessed:
            key = (pid, q)
            first = self._reported_at.setdefault(key, tick)
            if tick < first + self.retract_after:
                current.add(q)
        return frozenset(current)


class EventuallyWeakOracle(ChangeOracle):
    """Chandra-Toueg's eventually-strong detector <>S.

    Before ``stabilization_tick`` the oracle emits arbitrary noise
    (random suspicion sets that may well include correct processes).
    From ``stabilization_tick`` on, it behaves like a perfect detector:
    suspects exactly the crashed processes, so eventual weak accuracy and
    eventual strong completeness hold.  <>W is equivalent to <>S by the
    communication conversion, so this single oracle serves as the
    consensus baseline's detector for t < n/2.
    """

    name = "eventually-weak"

    def __init__(
        self,
        *,
        interval: int = 3,
        start_tick: int = 1,
        stabilization_tick: int = 40,
        noise_rate: float = 0.3,
    ) -> None:
        super().__init__(interval=interval, start_tick=start_tick)
        self.stabilization_tick = stabilization_tick
        self.noise_rate = noise_rate

    def desired(self, pid, tick, truth, rng):
        if tick >= self.stabilization_tick:
            return truth.crashed_by(tick)
        noisy = set(truth.crashed_by(tick))
        for q in truth.processes:
            if q != pid and rng.random() < self.noise_rate:
                noisy.add(q)
        return frozenset(noisy)


class NoisyStrongOracle(ChangeOracle):
    """Strong completeness with accuracy violated at rate ``error_rate``.

    Unlike :class:`StrongOracle` there is no immune process: any correct
    process, including all of them, may be (permanently) falsely
    suspected.  Used by ablation A13 to show empirically that accuracy is
    load-bearing for the Prop 3.1 protocol's uniformity.
    """

    name = "noisy-strong"

    def __init__(
        self,
        *,
        interval: int = 3,
        start_tick: int = 1,
        error_rate: float = 0.2,
    ) -> None:
        super().__init__(interval=interval, start_tick=start_tick)
        self.error_rate = error_rate
        self._false: dict[ProcessId, set[ProcessId]] = {}

    def _extra_reset(self) -> None:
        self._false = {}

    def desired(self, pid, tick, truth, rng):
        false_set = self._false.setdefault(pid, set())
        if rng.random() < self.error_rate:
            candidates = [q for q in truth.processes if q != pid and q not in false_set]
            if candidates:
                false_set.add(rng.choice(candidates))
        return truth.crashed_by(tick) | frozenset(false_set)


class ScriptedFalseOracle(ChangeOracle):
    """Strong completeness plus a *fixed* set of false suspicions.

    Unlike :class:`StrongOracle`, the false suspicions are a constructor
    parameter and the oracle never consults the planned failure pattern,
    so its behaviour up to any point is a function of the actual crashes
    and the seed alone.  That makes executions *replayable across crash
    plans* -- the property experiment E05 uses to build genuine A1
    extensions: re-executing with an extended plan reproduces the
    original prefix exactly.

    Weak accuracy holds in a run iff some correct process is outside
    ``false_suspects``; the caller chooses the set to make it hold or
    fail as the experiment requires.
    """

    name = "scripted-false"

    def __init__(
        self,
        false_suspects: frozenset[ProcessId] = frozenset(),
        *,
        interval: int = 3,
        start_tick: int = 1,
    ) -> None:
        super().__init__(interval=interval, start_tick=start_tick)
        self.false_suspects = frozenset(false_suspects)

    def desired(self, pid, tick, truth, rng):
        return truth.crashed_by(tick) | (self.false_suspects - {pid})


class LyingOracle(ChangeOracle):
    """No guarantees at all: a negative control for the property checkers."""

    name = "lying"

    def desired(self, pid, tick, truth, rng):
        return frozenset(
            q for q in truth.processes if q != pid and rng.random() < 0.5
        )
