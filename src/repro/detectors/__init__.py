"""Failure detectors (Sections 2.2 and 4).

* :mod:`repro.detectors.base`        -- the oracle interface, the ground-
  truth view it consults, and ``Suspects_p(r, m)``.
* :mod:`repro.detectors.standard`    -- perfect / strong / weak /
  impermanent / eventually-weak standard detectors, plus deliberately
  inaccurate ones for the negative experiments.
* :mod:`repro.detectors.generalized` -- generalized (S, k) detectors and
  t-usefulness (Section 4).
* :mod:`repro.detectors.gstandard`   -- g-standard report mappings.
* :mod:`repro.detectors.properties`  -- checkers for all six
  accuracy/completeness properties, and for the generalized ones.
* :mod:`repro.detectors.conversions` -- Propositions 2.1 and 2.2, and the
  n-useful <-> perfect conversions of Section 4.
* :mod:`repro.detectors.heartbeat`   -- an ACT97-style heartbeat detector
  (extension; footnote 10 of the paper).
"""

from repro.detectors.atd import AtdRotatingOracle
from repro.detectors.base import (
    DetectorOracle,
    GroundTruthView,
    NoDetector,
    suspects_at,
    suspicion_history,
)
from repro.detectors.hierarchy import (
    classify_system,
    convertible,
    satisfied_classes,
    strongest_class,
)
from repro.detectors.generalized import (
    GeneralizedOracle,
    TrivialSubsetOracle,
    is_t_useful_event,
)
from repro.detectors.standard import (
    EventuallyWeakOracle,
    ImpermanentStrongOracle,
    ImpermanentWeakOracle,
    LyingOracle,
    NoisyStrongOracle,
    PerfectOracle,
    StrongOracle,
    WeakOracle,
)

__all__ = [
    "AtdRotatingOracle",
    "DetectorOracle",
    "EventuallyWeakOracle",
    "GeneralizedOracle",
    "GroundTruthView",
    "ImpermanentStrongOracle",
    "ImpermanentWeakOracle",
    "LyingOracle",
    "NoDetector",
    "NoisyStrongOracle",
    "PerfectOracle",
    "StrongOracle",
    "TrivialSubsetOracle",
    "WeakOracle",
    "classify_system",
    "convertible",
    "is_t_useful_event",
    "satisfied_classes",
    "strongest_class",
    "suspects_at",
    "suspicion_history",
]
