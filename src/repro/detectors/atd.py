"""The Aguilera-Toueg-Deianov weakest detector for UDC (Section 5).

ATD99 characterise the weakest failure detector for uniform reliable
broadcast (isomorphic to UDC) as one satisfying strong completeness plus
an accuracy notion *weaker* than weak accuracy: if there is a correct
process, then **at all times** some correct process is not suspected --
but it may be a different correct process at different times.

:class:`AtdRotatingOracle` realises exactly that gap: it rotates the
"immune" correct process over time, so that (with at least three correct
processes and enough windows) *every* correct process is suspected at
some time -- weak accuracy fails -- while a two-window overlap guarantees
that at every instant at least one correct process is unsuspected by
everyone -- ATD accuracy holds.  Crashed processes are always reported
(strong completeness).

The overlap argument: in window w the oracle leaves {i_w, i_{w+1}}
unsuspected.  At any moment during the w -> w+1 transition some
observers still hold window-w reports and others hold window-(w+1)
reports; both leave i_{w+1} unsuspected, so the ATD condition survives
the transition.
"""

from __future__ import annotations

from repro.detectors.standard import ChangeOracle
from repro.model.events import ProcessId


class AtdRotatingOracle(ChangeOracle):
    """Strong completeness + ATD accuracy, but NOT weak accuracy."""

    name = "atd-rotating"

    def __init__(
        self,
        *,
        interval: int = 3,
        start_tick: int = 1,
        rotation_period: int = 15,
        stop_after_windows: int = 10,
    ) -> None:
        super().__init__(interval=interval, start_tick=start_tick)
        if rotation_period < 1:
            raise ValueError("rotation_period must be >= 1")
        self.rotation_period = rotation_period
        # The rotation freezes after this many windows so that runs
        # quiesce; by then every correct process has been suspected at
        # least once (given enough windows), which is all the weak-
        # accuracy violation needs.  ATD accuracy is unaffected: the
        # final window's immune pair stays unsuspected forever.
        self.stop_after_windows = stop_after_windows

    def _immune_pair(
        self, tick: int, correct: list[ProcessId]
    ) -> set[ProcessId]:
        if not correct:
            return set()
        window = min(tick // self.rotation_period, self.stop_after_windows)
        i_now = correct[window % len(correct)]
        i_next = correct[(window + 1) % len(correct)]
        return {i_now, i_next}

    def desired(self, pid, tick, truth, rng):
        correct = sorted(truth.planned_correct())
        immune = self._immune_pair(tick, correct)
        false_suspects = {
            q for q in correct if q not in immune and q != pid
        }
        return truth.crashed_by(tick) | false_suspects
