"""The experiment registry: one catalogue of every runnable experiment.

The CLIs (``python -m repro.harness``, ``python -m repro``) and the
benchmarks select experiments from here instead of hand-maintained
dispatch tables.  Each entry couples an experiment id (``E01``...``E13``,
``A13``...``A17``) with its runner and a one-line summary scraped from
the runner's docstring.

``register`` is public so downstream work can add experiments without
editing this module.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator

from repro.harness.results import ExperimentResult


@dataclass(frozen=True)
class Experiment:
    """One registered experiment: id, runner, one-line summary."""

    exp_id: str
    runner: Callable[[], ExperimentResult]
    summary: str

    def run(self) -> ExperimentResult:
        return self.runner()


_REGISTRY: dict[str, Experiment] = {}


def register(
    exp_id: str,
    runner: Callable[[], ExperimentResult],
    summary: str | None = None,
) -> Experiment:
    """Add (or replace) a registry entry; returns it."""
    if summary is None:
        summary = (runner.__doc__ or "").strip().splitlines()[0] if runner.__doc__ else ""
    exp = Experiment(exp_id.upper(), runner, summary)
    _REGISTRY[exp.exp_id] = exp
    return exp


def _populate() -> None:
    if _REGISTRY:
        return
    from repro.harness.experiments import ALL_EXPERIMENTS
    from repro.harness.table1 import run_e09

    for exp_id, fn in ALL_EXPERIMENTS.items():
        register(exp_id, fn)
    register("E09", run_e09, "Table 1: detector requirements for UDC vs consensus.")


def get(exp_id: str) -> Experiment:
    """Look up one experiment (case-insensitive)."""
    _populate()
    try:
        return _REGISTRY[exp_id.upper()]
    except KeyError:
        raise ValueError(
            f"unknown experiment {exp_id!r}; known: {experiment_ids()}"
        ) from None


def experiment_ids() -> list[str]:
    """Every registered id, E-series first, each series in order."""
    _populate()
    return sorted(_REGISTRY, key=lambda e: (not e.startswith("E"), e))


def experiments() -> Iterator[Experiment]:
    """Registered experiments, in id order."""
    _populate()
    for exp_id in experiment_ids():
        yield _REGISTRY[exp_id]


def run(exp_id: str) -> ExperimentResult:
    """Run one experiment by id."""
    return get(exp_id).run()


def describe() -> str:
    """A readable id -> summary listing (the CLIs' ``--list`` output)."""
    _populate()
    width = max(len(e) for e in _REGISTRY)
    lines = [f"{exp.exp_id.ljust(width)}  {exp.summary}" for exp in experiments()]
    return "\n".join(lines)
