"""Experiment result records and plain-text rendering."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence


@dataclass
class ExperimentResult:
    """Outcome of one experiment.

    ``passed`` is the headline verdict: did the measured behaviour match
    the paper's claim (including the *negative* halves -- a protocol
    that is supposed to fail without its detector must actually fail)?
    ``rows`` are printable (label, value) pairs; ``details`` carries raw
    numbers for the benchmarks and tests.
    """

    exp_id: str
    title: str
    claim: str
    passed: bool
    rows: list[tuple[str, str]] = field(default_factory=list)
    details: dict = field(default_factory=dict)
    notes: str = ""

    def row(self, label: str, value) -> None:
        """Append one printable (label, value) line."""
        self.rows.append((label, str(value)))

    def require(self, condition: bool, label: str) -> bool:
        """Record a named sub-check; any failure fails the experiment."""
        self.rows.append((label, "PASS" if condition else "FAIL"))
        if not condition:
            self.passed = False
        return condition


def render_result(result: ExperimentResult) -> str:
    """Render one experiment result as indented text."""
    status = "PASS" if result.passed else "FAIL"
    lines = [
        f"[{result.exp_id}] {result.title} ... {status}",
        f"    claim: {result.claim}",
    ]
    width = max((len(label) for label, _ in result.rows), default=0)
    for label, value in result.rows:
        lines.append(f"    {label.ljust(width)}  {value}")
    if result.notes:
        lines.append(f"    note: {result.notes}")
    return "\n".join(lines)


def render_results(results: Sequence[ExperimentResult]) -> str:
    """Render many results plus a pass-count summary."""
    parts = [render_result(r) for r in results]
    passed = sum(1 for r in results if r.passed)
    parts.append(f"\n{passed}/{len(results)} experiments passed")
    return "\n\n".join(parts)
