"""E09: regenerate Table 1.

The paper's Table 1 classifies the failure detector needed for UDC vs
consensus by channel reliability and failure bound:

                     0 < t < n/2   n/2 <= t < n-1   n-1 <= t <= n
  Reliable   UDC     no FD         no FD            no FD
             cons.   <>W           Strong           Perfect
  Unreliable UDC     no FD         t-useful         Perfect
             cons.   <>W           Strong           Perfect

This module executes every cell: it runs the protocol the paper says
suffices with the detector the paper says is needed (checking success),
and, where the paper's row changes detector class at the boundary, also
runs the next-weaker detector (checking failure).  The output preserves
the table's qualitative shape -- who needs what, and where the
crossovers fall.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial
from typing import Sequence

from repro.core.consensus import (
    RotatingCoordinatorConsensus,
    StrongConsensusProcess,
    check_consensus,
    consensus_factory,
)
from repro.core.properties import udc_holds
from repro.core.protocols import (
    GeneralizedFDUDCProcess,
    ReliableUDCProcess,
    StrongFDUDCProcess,
)
from repro.detectors.base import NoDetector
from repro.detectors.generalized import GeneralizedOracle, TrivialSubsetOracle
from repro.detectors.standard import (
    EventuallyWeakOracle,
    PerfectOracle,
    StrongOracle,
)
from repro.model.context import ChannelSemantics, make_process_ids
from repro.runtime import ExecutionBackend, RunSpec, run_ensemble
from repro.sim.executor import ExecutionConfig
from repro.sim.failures import CrashPlan, staggered_plan
from repro.sim.network import ChannelConfig
from repro.sim.process import uniform_protocol
from repro.workloads.generators import single_action


@dataclass
class Cell:
    """One Table 1 cell: the claimed detector, and what we measured."""

    channel: str
    problem: str
    regime: str
    claimed: str
    sufficient_ok: bool
    weaker_detector: str | None = None
    weaker_fails: bool | None = None

    @property
    def verdict(self) -> str:
        ok = "OK" if self.sufficient_ok else "FAIL"
        if self.weaker_detector is None:
            return ok
        nec = "weaker fails" if self.weaker_fails else "weaker SUFFICES?"
        return f"{ok}; {nec}"

    @property
    def matches_paper(self) -> bool:
        return self.sufficient_ok and (self.weaker_fails in (None, True))


@dataclass
class Table1:
    n: int
    cells: list[Cell] = field(default_factory=list)

    @property
    def matches_paper(self) -> bool:
        return all(cell.matches_paper for cell in self.cells)


REGIMES = ("t < n/2", "n/2 <= t < n-1", "t >= n-1")


def _t_for_regime(n: int, regime: str) -> int:
    if regime == "t < n/2":
        return (n - 1) // 2
    if regime == "n/2 <= t < n-1":
        return n - 2
    return n - 1


def _config(channel: ChannelSemantics) -> ExecutionConfig:
    return ExecutionConfig(channel=ChannelConfig(semantics=channel))


def _udc_trial(
    procs,
    protocol_factory,
    detector,
    t: int,
    channel: ChannelSemantics,
    seeds: Sequence[int],
    backend: ExecutionBackend | None = None,
) -> bool:
    """Run UDC trials with t staggered crashes; all runs must satisfy UDC."""
    faulty = list(procs)[-t:] if t else []
    plan = staggered_plan(procs, faulty, first_tick=6) if t else CrashPlan.none()
    workload = single_action("p1", tick=1) + single_action("p2", tick=9, name="b0")
    base = RunSpec(
        processes=tuple(procs),
        protocol=protocol_factory,
        crash_plan=plan,
        workload=workload,
        detector=detector,
        config=_config(channel),
    )
    report = run_ensemble([base.with_(seed=s) for s in seeds], backend=backend)
    return all(bool(udc_holds(run)) for run in report.runs)


def _consensus_trial(
    procs,
    cls,
    detector,
    t: int,
    channel: ChannelSemantics,
    seeds: Sequence[int],
    plan: CrashPlan | None = None,
    backend: ExecutionBackend | None = None,
    **kwargs,
) -> bool:
    values = {p: f"v{i % 2}" for i, p in enumerate(procs)}
    if plan is None:
        faulty = list(procs)[-t:] if t else []
        plan = staggered_plan(procs, faulty, first_tick=6) if t else CrashPlan.none()
    config = ExecutionConfig(
        channel=ChannelConfig(semantics=channel), max_ticks=3000
    )
    base = RunSpec(
        processes=tuple(procs),
        protocol=consensus_factory(cls, values, **kwargs),
        crash_plan=plan,
        detector=detector,
        config=config,
    )
    report = run_ensemble([base.with_(seed=s) for s in seeds], backend=backend)
    return all(check_consensus(run, values) for run in report.runs)


def build_table1(
    n: int = 5,
    seeds: Sequence[int] = (0, 1),
    backend: ExecutionBackend | None = None,
) -> Table1:
    """Execute every Table 1 cell and collect the verdicts.

    ``backend`` selects how each cell's seed sweep executes (defaults to
    the process-wide default backend; see :mod:`repro.runtime`).
    """
    procs = make_process_ids(n)
    table = Table1(n=n)
    _udc = partial(_udc_trial, backend=backend)
    _cons = partial(_consensus_trial, backend=backend)

    for channel in (ChannelSemantics.RELIABLE, ChannelSemantics.FAIR_LOSSY):
        channel_name = (
            "Reliable" if channel is ChannelSemantics.RELIABLE else "Unreliable"
        )
        for regime in REGIMES:
            t = _t_for_regime(n, regime)

            # ---- the UDC row -------------------------------------------------
            if channel is ChannelSemantics.RELIABLE:
                ok = _udc(
                    procs,
                    uniform_protocol(ReliableUDCProcess),
                    NoDetector(),
                    t,
                    channel,
                    seeds,
                )
                table.cells.append(
                    Cell(channel_name, "UDC", regime, "no FD", ok)
                )
            else:
                if regime == "t < n/2":
                    # Gopal-Toueg: the trivial subset detector consults no
                    # ground truth; this is the "no FD" cell.
                    ok = _udc(
                        procs,
                        uniform_protocol(GeneralizedFDUDCProcess, t=t),
                        TrivialSubsetOracle(t),
                        t,
                        channel,
                        seeds,
                    )
                    table.cells.append(
                        Cell(channel_name, "UDC", regime, "no FD", ok)
                    )
                elif regime == "n/2 <= t < n-1":
                    ok = _udc(
                        procs,
                        uniform_protocol(GeneralizedFDUDCProcess, t=t),
                        GeneralizedOracle(t, padding=1),
                        t,
                        channel,
                        seeds,
                    )
                    weaker = _udc(
                        procs,
                        uniform_protocol(GeneralizedFDUDCProcess, t=t),
                        TrivialSubsetOracle(t),
                        t,
                        channel,
                        seeds,
                    )
                    table.cells.append(
                        Cell(
                            channel_name,
                            "UDC",
                            regime,
                            "t-useful",
                            ok,
                            weaker_detector="no FD (trivial subsets)",
                            weaker_fails=not weaker,
                        )
                    )
                else:  # t >= n-1: perfect detectors (Thm 3.6 + Prop 3.4)
                    ok = _udc(
                        procs,
                        uniform_protocol(StrongFDUDCProcess),
                        PerfectOracle(),
                        t,
                        channel,
                        seeds,
                    )
                    weaker = _udc(
                        procs,
                        uniform_protocol(GeneralizedFDUDCProcess, t=t),
                        TrivialSubsetOracle(t),
                        t,
                        channel,
                        seeds,
                    )
                    table.cells.append(
                        Cell(
                            channel_name,
                            "UDC",
                            regime,
                            "Perfect",
                            ok,
                            weaker_detector="no FD (trivial subsets)",
                            weaker_fails=not weaker,
                        )
                    )

            # ---- the consensus row ---------------------------------------------
            if regime == "t < n/2":
                ok = _cons(
                    procs,
                    RotatingCoordinatorConsensus,
                    EventuallyWeakOracle(stabilization_tick=30),
                    t,
                    channel,
                    seeds,
                )
                # Without a detector a crashed round-0 coordinator can
                # never be suspected, so the rounds starve -- the
                # adversarial schedule FLP guarantees to exist.  The
                # impossibility is worst-case, so the probe crashes the
                # first coordinator immediately.
                flp_plan = CrashPlan.of(
                    {p: 2 + i for i, p in enumerate(list(procs)[:t])}
                )
                weaker = _cons(
                    procs,
                    RotatingCoordinatorConsensus,
                    NoDetector(),
                    t,
                    channel,
                    seeds,
                    plan=flp_plan,
                )
                table.cells.append(
                    Cell(
                        channel_name,
                        "consensus",
                        regime,
                        "<>W",
                        ok,
                        weaker_detector="no FD",
                        weaker_fails=not weaker,
                    )
                )
            elif regime == "n/2 <= t < n-1":
                ok = _cons(
                    procs, StrongConsensusProcess, StrongOracle(), t, channel, seeds
                )
                weaker = _cons(
                    procs,
                    RotatingCoordinatorConsensus,
                    EventuallyWeakOracle(stabilization_tick=30),
                    t,
                    channel,
                    seeds,
                )
                table.cells.append(
                    Cell(
                        channel_name,
                        "consensus",
                        regime,
                        "Strong",
                        ok,
                        weaker_detector="<>W",
                        weaker_fails=not weaker,
                    )
                )
            else:
                # t >= n-1: Strong = Perfect (footnote 3 / Prop 3.4).
                ok = _cons(
                    procs, StrongConsensusProcess, StrongOracle(), t, channel, seeds
                )
                table.cells.append(
                    Cell(channel_name, "consensus", regime, "Perfect (=Strong)", ok)
                )
    return table


def render_table1(table: Table1) -> str:
    """Render the measured grid in the paper's shape."""
    lines = [
        f"Table 1 (measured, n={table.n}): failure detector needed for UDC vs consensus",
        "",
    ]
    header = f"{'':12} {'':10}" + "".join(f"{r:^34}" for r in REGIMES)
    lines.append(header)
    for channel in ("Reliable", "Unreliable"):
        for problem in ("UDC", "consensus"):
            row = f"{channel:12} {problem:10}"
            for regime in REGIMES:
                cell = next(
                    c
                    for c in table.cells
                    if c.channel == channel
                    and c.problem == problem
                    and c.regime == regime
                )
                row += f"{cell.claimed + ' [' + cell.verdict + ']':^34}"
            lines.append(row)
    lines.append("")
    lines.append(
        "shape matches paper: " + ("YES" if table.matches_paper else "NO")
    )
    return "\n".join(lines)


def run_e09(n: int = 5, seeds: Sequence[int] = (0, 1)):
    """E09 as an ExperimentResult, for the harness registry."""
    from repro.harness.results import ExperimentResult

    table = build_table1(n=n, seeds=seeds)
    result = ExperimentResult(
        "E09",
        "Table 1: detector requirements for UDC vs consensus",
        "The qualitative grid of Table 1 -- which detector class each "
        "cell needs -- is reproduced by direct execution.",
        passed=True,
    )
    for cell in table.cells:
        result.require(
            cell.matches_paper,
            f"{cell.channel}/{cell.problem}/{cell.regime}: {cell.claimed}",
        )
    result.notes = "run render_table1(build_table1()) for the full grid"
    return result
