"""Human-readable run traces.

``render_run`` prints a run as one line per event, time-ordered, with
per-process columns -- the fastest way to see what a protocol actually
did.  ``summarize_run`` gives the one-paragraph version used by the
examples and failure messages.
"""

from __future__ import annotations

from repro.model.events import (
    CrashEvent,
    DoEvent,
    Event,
    GeneralizedSuspicion,
    InitEvent,
    ReceiveEvent,
    SendEvent,
    StandardSuspicion,
    SuspectEvent,
)
from repro.model.run import Run


def describe_event(event: Event) -> str:
    """One-token rendering of a history event."""
    if isinstance(event, SendEvent):
        return f"send({event.receiver}, {event.message.kind})"
    if isinstance(event, ReceiveEvent):
        return f"recv({event.sender}, {event.message.kind})"
    if isinstance(event, InitEvent):
        return f"init({event.action!r})"
    if isinstance(event, DoEvent):
        return f"do({event.action!r})"
    if isinstance(event, CrashEvent):
        return "CRASH"
    if isinstance(event, SuspectEvent):
        report = event.report
        prefix = "suspect'" if event.derived else "suspect"
        if isinstance(report, StandardSuspicion):
            body = "{" + ",".join(sorted(report.suspects)) + "}"
        elif isinstance(report, GeneralizedSuspicion):
            body = "({" + ",".join(sorted(report.suspects)) + "}, " + str(report.count) + ")"
        else:  # pragma: no cover - future report types
            body = repr(report)
        return f"{prefix}{body}"
    return repr(event)  # pragma: no cover - exhaustive above


def render_run(
    run: Run,
    *,
    limit: int | None = None,
    include_sends: bool = True,
) -> str:
    """Render the run as a time-ordered event table."""
    col_width = max(
        18, max((len(describe_event(e)) for p in run.processes for e in run.events(p)), default=18) + 1
    )
    header = "time  " + "".join(p.ljust(col_width) for p in run.processes)
    lines = [header, "-" * len(header)]
    count = 0
    events_at: dict[int, dict[str, Event]] = {}
    for p in run.processes:
        for t, e in run.timeline(p):
            if not include_sends and isinstance(e, SendEvent):
                continue
            events_at.setdefault(t, {})[p] = e
    for t in sorted(events_at):
        row = f"{t:>4}  "
        for p in run.processes:
            e = events_at[t].get(p)
            cell = describe_event(e) if e is not None else ""
            row += cell.ljust(col_width)
        lines.append(row.rstrip())
        count += 1
        if limit is not None and count >= limit:
            lines.append(f"... ({len(events_at) - count} more ticks)")
            break
    return "\n".join(lines)


def summarize_run(run: Run) -> str:
    """One-paragraph run summary."""
    total = sum(1 for p in run.processes for _ in run.events(p))
    kinds: dict[str, int] = {}
    for p in run.processes:
        for e in run.events(p):
            name = type(e).__name__.removesuffix("Event").lower()
            kinds[name] = kinds.get(name, 0) + 1
    faulty = ", ".join(sorted(run.faulty())) or "none"
    breakdown = ", ".join(f"{k}={v}" for k, v in sorted(kinds.items()))
    return (
        f"{len(run.processes)} processes, duration {run.duration}, "
        f"{total} events ({breakdown}); faulty: {faulty}"
    )
