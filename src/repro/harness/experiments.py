"""Experiments E01-E12 and ablations A13-A15 (DESIGN.md Section 4).

Each function reproduces one claim of the paper -- including the
negative half where the paper asserts necessity (a protocol that should
fail without its detector must be observed failing).  All experiments
are deterministic given their seed lists.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.core.properties import (
    actions_in,
    dc1,
    dc2,
    nudc_holds,
    udc_holds,
)
from repro.core.protocols import (
    AtdUDCProcess,
    GeneralizedFDUDCProcess,
    NUDCProcess,
    ReliableUDCProcess,
    StrongFDUDCProcess,
)
from repro.core.simulation_theorem import (
    simulate_generalized_detectors,
    simulate_perfect_detectors,
)
from repro.detectors.atd import AtdRotatingOracle
from repro.detectors.base import suspicion_history
from repro.detectors.conversions import (
    convert_impermanent_to_permanent,
    convert_weak_to_strong,
    with_gossip,
)
from repro.detectors.generalized import GeneralizedOracle, TrivialSubsetOracle
from repro.detectors.properties import (
    atd_accuracy,
    generalized_impermanent_strong_completeness,
    generalized_strong_accuracy,
    impermanent_weak_completeness,
    is_perfect,
    strong_accuracy,
    strong_completeness,
    weak_accuracy,
)
from repro.detectors.standard import (
    ImpermanentWeakOracle,
    NoisyStrongOracle,
    PerfectOracle,
    ScriptedFalseOracle,
    StrongOracle,
)
from repro.harness.results import ExperimentResult
from repro.knowledge import ModelChecker
from repro.knowledge.paper_formulas import (
    dc1_formula,
    dc2_formula,
    dc3_formula,
    prop_3_5,
)
from repro.model.context import ChannelSemantics, make_process_ids
from repro.model.events import Message, StandardSuspicion
from repro.model.run import r5_violations
from repro.model.system import System
from repro.runtime import RunSpec, run_ensemble, run_spec
from repro.sim.ensembles import a5t_ensemble
from repro.sim.executor import ExecutionConfig, Executor
from repro.sim.failures import CrashPlan, all_crash_plans, staggered_plan
from repro.sim.network import ChannelConfig
from repro.sim.process import uniform_protocol
from repro.workloads.generators import (
    post_crash_workload,
    single_action,
)

RELIABLE = ExecutionConfig(channel=ChannelConfig(semantics=ChannelSemantics.RELIABLE))
FAIR = ExecutionConfig()  # fair-lossy defaults


def _plans_with_jitter(processes, t: int, ticks=(6, 14)) -> list[CrashPlan]:
    plans: list[CrashPlan] = []
    for tick in ticks:
        plans.extend(all_crash_plans(processes, max_failures=t, crash_tick=tick))
    return plans


# ---------------------------------------------------------------------------
# E01: Proposition 2.3 -- nUDC, fair channels, no detector, unbounded failures
# ---------------------------------------------------------------------------


def run_e01(n: int = 4, seeds: Sequence[int] = (0, 1, 2)) -> ExperimentResult:
    """Prop 2.3: nUDC under fair-lossy channels without detectors."""
    result = ExperimentResult(
        "E01",
        "nUDC without failure detectors (Prop 2.3)",
        "nUDC (DC1, DC2', DC3) is attainable under fair-lossy channels with "
        "no detector and no bound on failures; full UDC is not.",
        passed=True,
    )
    procs = make_process_ids(n)
    system = a5t_ensemble(
        procs,
        uniform_protocol(NUDCProcess),
        t=n,  # unbounded: every subset may fail
        workload=single_action("p1", tick=1),
        seeds=seeds,
    )
    ok = sum(1 for r in system if nudc_holds(r))
    result.row("runs", len(system))
    result.require(ok == len(system), f"DC1 & DC2' & DC3 in all runs ({ok}/{len(system)})")

    # The negative half: the same protocol does NOT give uniform DC2 --
    # an initiator that performs and crashes before its messages survive
    # leaves the correct processes empty-handed.  Force it with a crash
    # right after the init and a very lossy channel.
    lossy = FAIR.with_channel(drop_prob=0.8, max_consecutive_drops=8)
    probe = RunSpec(
        processes=procs,
        protocol=uniform_protocol(NUDCProcess),
        crash_plan=CrashPlan.of({"p1": 4}),
        workload=single_action("p1", tick=1),
        config=lossy,
    )
    report = run_ensemble([probe.with_(seed=seed) for seed in range(8)])
    violations = 0
    for run in report.runs:
        action = next(iter(actions_in(run)), None)
        if action is not None and not dc2(run, action):
            violations += 1
    result.row("uniform-DC2 violations with early crash", f"{violations}/8")
    result.require(violations > 0, "non-uniformity witnessed (DC2 fails somewhere)")
    result.details.update(runs=len(system), dc2_violations=violations)
    return result


# ---------------------------------------------------------------------------
# E02: Proposition 2.4 -- UDC, reliable channels, no detector
# ---------------------------------------------------------------------------


def run_e02(n: int = 4, seeds: Sequence[int] = (0, 1, 2)) -> ExperimentResult:
    """Prop 2.4: UDC over reliable channels without detectors."""
    result = ExperimentResult(
        "E02",
        "UDC over reliable channels without detectors (Prop 2.4)",
        "UDC is attainable with reliable channels, no detector, unbounded "
        "failures; the same protocol fails under fair-lossy channels.",
        passed=True,
    )
    procs = make_process_ids(n)
    system = a5t_ensemble(
        procs,
        uniform_protocol(ReliableUDCProcess),
        t=n,
        workload=single_action("p1", tick=1),
        seeds=seeds,
        config=RELIABLE,
    )
    ok = sum(1 for r in system if udc_holds(r))
    result.row("runs (reliable)", len(system))
    result.require(ok == len(system), f"DC1-DC3 in all runs ({ok}/{len(system)})")

    # Necessity of reliability (Table 1, unreliable/no-FD cell): the
    # one-shot protocol loses its single copies on a lossy channel when
    # the performer crashes.
    lossy = FAIR.with_channel(drop_prob=0.8, max_consecutive_drops=8)
    probe = RunSpec(
        processes=procs,
        protocol=uniform_protocol(ReliableUDCProcess),
        crash_plan=CrashPlan.of({"p1": 5}),
        workload=single_action("p1", tick=1),
        config=lossy,
    )
    report = run_ensemble([probe.with_(seed=seed) for seed in range(8)])
    violations = sum(1 for run in report.runs if not udc_holds(run))
    result.row("UDC violations on fair-lossy", f"{violations}/8")
    result.require(violations > 0, "reliable channels are load-bearing")
    result.details.update(runs=len(system), lossy_violations=violations)
    return result


# ---------------------------------------------------------------------------
# E03: Proposition 3.1 -- UDC with strong detectors, fair channels
# ---------------------------------------------------------------------------


def run_e03(n: int = 4, seeds: Sequence[int] = (0, 1, 2)) -> ExperimentResult:
    """Prop 3.1: UDC with strong detectors over fair-lossy channels."""
    result = ExperimentResult(
        "E03",
        "UDC with strong failure detectors (Prop 3.1)",
        "UDC is attainable under fair-lossy channels with a strong detector "
        "(weak accuracy + strong completeness), unbounded failures.",
        passed=True,
    )
    procs = make_process_ids(n)
    system = a5t_ensemble(
        procs,
        uniform_protocol(StrongFDUDCProcess),
        t=n,
        workload=lambda plan: single_action("p1", tick=1)
        + post_crash_workload(procs, plan, actions_per_survivor=1),
        detector=StrongOracle(),
        seeds=seeds,
    )
    ok = sum(1 for r in system if udc_holds(r))
    result.row("runs", len(system))
    result.require(ok == len(system), f"DC1-DC3 in all runs ({ok}/{len(system)})")
    # Sanity: the oracle really is strong (not secretly perfect).
    falsely = sum(1 for r in system if not strong_accuracy(r))
    accuracy = all(weak_accuracy(r) for r in system)
    completeness = all(strong_completeness(r) for r in system)
    result.row("runs with false suspicions", f"{falsely}/{len(system)}")
    result.require(falsely > 0, "detector is strong, not perfect")
    result.require(accuracy, "weak accuracy in all runs")
    result.require(completeness, "strong completeness in all runs")
    result.details.update(runs=len(system), false_runs=falsely)
    return result


# ---------------------------------------------------------------------------
# E04: Corollary 3.2 + Propositions 2.1/2.2 -- conversions
# ---------------------------------------------------------------------------


def run_e04(n: int = 4, seeds: Sequence[int] = (0, 1)) -> ExperimentResult:
    """Cor 3.2 + Props 2.1/2.2: conversions from impermanent-weak detectors."""
    result = ExperimentResult(
        "E04",
        "Impermanent-weak detectors suffice via conversions (Cor 3.2)",
        "Gossiping suspicions converts weak completeness to strong "
        "(Prop 2.1); remembering reports converts impermanent to "
        "permanent (Prop 2.2); accuracy is preserved and UDC follows.",
        passed=True,
    )
    procs = make_process_ids(n)
    system = a5t_ensemble(
        procs,
        with_gossip(uniform_protocol(StrongFDUDCProcess)),
        t=n - 1,
        workload=lambda plan: single_action("p1", tick=1)
        + post_crash_workload(procs, plan, actions_per_survivor=1),
        detector=ImpermanentWeakOracle(),
        seeds=seeds,
    )
    result.row("runs", len(system))
    ok = sum(1 for r in system if udc_holds(r))
    result.require(
        ok == len(system), f"UDC with impermanent-weak detector ({ok}/{len(system)})"
    )
    # The original detector is genuinely impermanent-weak...
    original_weak = all(impermanent_weak_completeness(r) for r in system)
    original_not_strong = sum(1 for r in system if not strong_completeness(r))
    result.require(original_weak, "original: impermanent weak completeness")
    with_failures = sum(1 for r in system if r.faulty())
    result.row("runs with failures", f"{with_failures}/{len(system)}")
    result.require(
        original_not_strong > 0, "original: strong completeness fails somewhere"
    )
    # ... and the converted one is strong-complete with accuracy preserved.
    converted = [
        convert_impermanent_to_permanent(convert_weak_to_strong(r)) for r in system
    ]
    conv_complete = all(strong_completeness(r, derived=True) for r in converted)
    conv_accurate = all(weak_accuracy(r, derived=True) for r in converted)
    result.require(conv_complete, "converted: strong completeness")
    result.require(conv_accurate, "converted: weak accuracy preserved")
    result.details.update(runs=len(system))
    return result


# ---------------------------------------------------------------------------
# E05: Proposition 3.4 -- weak accuracy == strong accuracy under A1 + A5_{n-1}
# ---------------------------------------------------------------------------


def run_e05(n: int = 4) -> ExperimentResult:
    """Prop 3.4: weak accuracy = strong accuracy under A1 + A5_{n-1}."""
    result = ExperimentResult(
        "E05",
        "Weak accuracy = strong accuracy under A1 + A5_{n-1} (Prop 3.4)",
        "Any false suspicion extends (A1) to a run where everyone but the "
        "suspect crashes, violating weak accuracy there; so a weakly "
        "accurate detector over an A1+A5-closed system is strongly accurate.",
        passed=True,
    )
    procs = make_process_ids(n)
    workload = single_action("p1", tick=1) + single_action("p2", tick=12, name="b0")

    def execute(detector, plan, seed):
        return Executor(
            procs,
            uniform_protocol(StrongFDUDCProcess),
            crash_plan=plan,
            workload=workload,
            detector=detector,
            seed=seed,
        ).run()

    # 1. A weakly-but-not-strongly accurate oracle whose behaviour does
    #    not consult the crash plan, so executions replay exactly across
    #    plans (the operational content of A1).  It falsely suspects the
    #    last process; the others are never suspected while correct.
    suspect_target = procs[-1]
    oracle = ScriptedFalseOracle(frozenset({suspect_target}))
    found = None
    for seed in range(12):
        plan = CrashPlan.of({"p3": 8})
        run = execute(oracle, plan, seed)
        for p in procs:
            for tick, report in suspicion_history(run, p):
                if not isinstance(report, StandardSuspicion):
                    continue
                for q in report.suspects:
                    if not run.crashed_by(q, tick) and q not in plan.faulty:
                        found = (seed, plan, p, q, tick, run)
                        break
                if found:
                    break
            if found:
                break
        if found:
            break
    result.require(found is not None, "a false suspicion exists (weak != strong here)")
    if found is None:
        return result
    seed, plan, p, q, tick, run = found
    result.row("false suspicion", f"{p} suspects live {q} at t={tick}")
    result.require(bool(weak_accuracy(run)), "weak accuracy holds in the base run")

    # 2. The A1 extension: replay the same seed with everyone except q
    #    crashing right after the suspicion.  Identical adversary prefix
    #    => a genuine extension of (r, tick).
    extension_crashes = dict(plan.as_dict())
    for other in procs:
        if other != q and other not in extension_crashes:
            extension_crashes[other] = tick + 1
    ext = execute(oracle, CrashPlan.of(extension_crashes), seed)
    agrees = all(
        ext.history(pp, tick) == run.history(pp, tick) for pp in procs
    )
    result.require(agrees, "replayed run extends the original point (A1 witness)")
    result.row("extension F(r')", f"{sorted(ext.faulty())}")
    result.require(
        ext.correct() == frozenset({q}), "the suspect is the sole correct process"
    )
    result.require(
        not weak_accuracy(ext), "weak accuracy is violated in the extension"
    )

    # 3. Control: a perfect oracle has no false suspicions, so weak and
    #    strong accuracy coincide over the whole A5 ensemble.
    ensemble = a5t_ensemble(
        procs,
        uniform_protocol(StrongFDUDCProcess),
        t=n - 1,
        workload=workload,
        detector=PerfectOracle(),
        seeds=(0, 1),
    )
    equivalence = all(
        bool(weak_accuracy(r)) == bool(strong_accuracy(r)) for r in ensemble
    )
    strong_all = all(strong_accuracy(r) for r in ensemble)
    result.require(
        equivalence and strong_all,
        "perfect oracle: weak and strong accuracy coincide over A5 ensemble",
    )
    return result


# ---------------------------------------------------------------------------
# E06: Theorem 3.6 -- simulating perfect detectors from a UDC system
# ---------------------------------------------------------------------------


def run_e06(n: int = 4, seeds: Sequence[int] = (0, 1)) -> ExperimentResult:
    """Thm 3.6: UDC systems simulate perfect failure detectors."""
    result = ExperimentResult(
        "E06",
        "UDC systems simulate perfect failure detectors (Thm 3.6)",
        "Transform f (P1-P3) over a UDC-attaining ensemble satisfying "
        "A5_{n-1} with post-crash initiations yields derived detectors "
        "with strong accuracy AND strong completeness.",
        passed=True,
    )
    procs = make_process_ids(n)
    system = a5t_ensemble(
        procs,
        uniform_protocol(StrongFDUDCProcess),
        t=n - 1,
        workload=lambda plan: post_crash_workload(procs, plan, actions_per_survivor=2),
        detector=PerfectOracle(),
        seeds=seeds,
    )
    result.row("ensemble size", len(system))
    result.require(
        all(udc_holds(r) for r in system), "the ensemble attains UDC"
    )
    rf = simulate_perfect_detectors(system)
    acc = sum(1 for r in rf if strong_accuracy(r, derived=True))
    comp = sum(1 for r in rf if strong_completeness(r, derived=True))
    result.require(acc == len(rf), f"R^f strong accuracy ({acc}/{len(rf)})")
    result.require(comp == len(rf), f"R^f strong completeness ({comp}/{len(rf)})")
    perfect = sum(1 for r in rf if is_perfect(r, derived=True))
    result.row("R^f perfect detector runs", f"{perfect}/{len(rf)}")

    # Ablation: the derived detector's completeness is knowledge, and
    # knowledge is relative to the system.  Add a "phantom twin" of a
    # one-failure run -- identical except the crash never happens (the
    # faulty process's history is truncated before its crash event;
    # nobody else's history changes).  Every observer now considers a
    # crash-free point possible wherever it previously knew of the
    # crash, so K_p(crash(q)) -- and with it completeness -- collapses
    # for the twinned run, while accuracy (veridical by construction)
    # still holds everywhere, including in the phantom itself.
    base = next(r for r in system if len(r.faulty()) == 1)
    victim = next(iter(base.faulty()))
    phantom = _phantom_twin(base, victim)
    polluted = System([*system.runs, phantom])
    rf_polluted = simulate_perfect_detectors(polluted)
    pol_acc = all(strong_accuracy(r, derived=True) for r in rf_polluted)
    base_index = list(polluted.runs).index(base)
    base_f = rf_polluted.runs[base_index]
    result.require(pol_acc, "phantom-twin ensemble: accuracy still holds (veridicality)")
    result.require(
        not strong_completeness(base_f, derived=True),
        "phantom-twin ensemble: completeness collapses for the twinned run",
    )
    result.details.update(runs=len(system), acc=acc, comp=comp)
    return result


def _phantom_twin(run, victim):
    """The run with ``victim``'s crash event deleted; all other histories
    identical.  A logically possible (if unfair-looking) run that ruins
    knowledge of the crash."""
    from repro.model.run import Run

    timelines = {p: list(run.timeline(p)) for p in run.processes}
    crash_tick = run.crash_time(victim)
    timelines[victim] = [
        (t, e) for t, e in run.timeline(victim) if t != crash_tick
    ]
    return Run(
        run.processes,
        timelines,
        duration=run.duration,
        meta={**run.meta, "phantom_of": victim},
    )


# ---------------------------------------------------------------------------
# E07: Proposition 4.1 / Corollary 4.2 -- t-useful generalized detectors
# ---------------------------------------------------------------------------


def run_e07(n: int = 5, seeds: Sequence[int] = (0, 1)) -> ExperimentResult:
    """Prop 4.1 / Cor 4.2: t-useful generalized detectors attain UDC."""
    result = ExperimentResult(
        "E07",
        "UDC with t-useful generalized detectors (Prop 4.1, Cor 4.2)",
        "For every t, a t-useful generalized detector attains UDC with "
        "at most t failures; for t < n/2 the trivial (S, 0) detector "
        "suffices (= no detector, Gopal-Toueg); for t >= n/2 it fails.",
        passed=True,
    )
    procs = make_process_ids(n)
    workload = single_action("p1", tick=1) + single_action("p3", tick=10, name="c0")

    for t in range(0, n):
        system = a5t_ensemble(
            procs,
            uniform_protocol(GeneralizedFDUDCProcess, t=t),
            t=t,
            workload=workload,
            detector=GeneralizedOracle(t, padding=1),
            seeds=seeds,
        )
        ok = sum(1 for r in system if udc_holds(r))
        useful = all(
            generalized_strong_accuracy(r)
            and generalized_impermanent_strong_completeness(r, t)
            for r in system
        )
        result.require(
            ok == len(system) and useful,
            f"t={t}: UDC with t-useful oracle ({ok}/{len(system)})",
        )

    # Gopal-Toueg: the trivial subset detector for t < n/2.
    t_small = (n - 1) // 2
    system = a5t_ensemble(
        procs,
        uniform_protocol(GeneralizedFDUDCProcess, t=t_small),
        t=t_small,
        workload=workload,
        detector=TrivialSubsetOracle(t_small),
        seeds=seeds,
    )
    ok = sum(1 for r in system if udc_holds(r))
    result.require(
        ok == len(system),
        f"t={t_small} < n/2: trivial (S,0) detector attains UDC ({ok}/{len(system)})",
    )

    # Negative: the trivial detector is useless at t >= n/2 -- its (S, 0)
    # reports never satisfy the usefulness inequality, so initiators
    # starve (DC1 fails for the correct initiator).
    t_big = (n + 1) // 2
    run = run_spec(
        RunSpec(
            processes=procs,
            protocol=uniform_protocol(GeneralizedFDUDCProcess, t=t_big),
            workload=single_action("p1", tick=1),
            detector=TrivialSubsetOracle(t_big),
        )
    )
    action = next(iter(actions_in(run)))
    result.require(
        not dc1(run, action),
        f"t={t_big} >= n/2: trivial detector starves (DC1 fails)",
    )
    return result


# ---------------------------------------------------------------------------
# E08: Theorem 4.3 -- simulating t-useful generalized detectors
# ---------------------------------------------------------------------------


def run_e08(n: int = 4, t: int = 2, seeds: Sequence[int] = (0, 1)) -> ExperimentResult:
    """Thm 4.3: UDC systems simulate t-useful generalized detectors."""
    result = ExperimentResult(
        "E08",
        "UDC systems simulate t-useful generalized detectors (Thm 4.3)",
        "Transform f' (P3') over a UDC-attaining ensemble with at most t "
        "failures yields derived generalized detectors satisfying "
        "generalized strong accuracy and t-useful completeness.",
        passed=True,
    )
    procs = make_process_ids(n)
    system = a5t_ensemble(
        procs,
        uniform_protocol(GeneralizedFDUDCProcess, t=t),
        t=t,
        workload=lambda plan: post_crash_workload(
            procs, plan, actions_per_survivor=3
        ),
        detector=GeneralizedOracle(t),
        seeds=seeds,
    )
    result.row("ensemble size", len(system))
    result.require(all(udc_holds(r) for r in system), "the ensemble attains UDC")
    rfp = simulate_generalized_detectors(system)
    acc = sum(1 for r in rfp if generalized_strong_accuracy(r, derived=True))
    comp = sum(
        1
        for r in rfp
        if generalized_impermanent_strong_completeness(r, t, derived=True)
    )
    result.require(acc == len(rfp), f"R^f' generalized strong accuracy ({acc}/{len(rfp)})")
    result.require(comp == len(rfp), f"R^f' t-useful completeness ({comp}/{len(rfp)})")
    result.details.update(runs=len(system), acc=acc, comp=comp)
    return result


# ---------------------------------------------------------------------------
# E10: Section 5 -- the ATD99 weakest detector
# ---------------------------------------------------------------------------


def run_e10(n: int = 5, seeds: Sequence[int] = (0, 1)) -> ExperimentResult:
    """Section 5: UDC with the ATD99 weakest detector."""
    result = ExperimentResult(
        "E10",
        "UDC with the ATD99 weakest detector (Section 5)",
        "A detector with strong completeness and rotating accuracy (at all "
        "times SOME correct process is unsuspected, not always the same "
        "one) is strictly weaker than weak accuracy yet attains UDC.",
        passed=True,
    )
    procs = make_process_ids(n)
    oracle = AtdRotatingOracle(rotation_period=12)
    system = a5t_ensemble(
        procs,
        uniform_protocol(AtdUDCProcess),
        t=n - 2,
        workload=lambda plan: single_action("p1", tick=1)
        + post_crash_workload(procs, plan, actions_per_survivor=1),
        detector=oracle,
        seeds=seeds,
    )
    result.row("runs", len(system))
    ok = sum(1 for r in system if udc_holds(r))
    result.require(ok == len(system), f"UDC in all runs ({ok}/{len(system)})")
    atd_ok = all(atd_accuracy(r) for r in system)
    complete = all(strong_completeness(r) for r in system)
    weak_fails = sum(1 for r in system if not weak_accuracy(r))
    result.require(atd_ok, "ATD accuracy in all runs")
    result.require(complete, "strong completeness in all runs")
    result.row("runs violating weak accuracy", f"{weak_fails}/{len(system)}")
    result.require(weak_fails > 0, "detector is strictly weaker than weak accuracy")
    return result


# ---------------------------------------------------------------------------
# E11: Proposition 3.5 -- the epistemic precondition
# ---------------------------------------------------------------------------


def run_e11(n: int = 4, seeds: Sequence[int] = (0,)) -> ExperimentResult:
    """Prop 3.5: the epistemic precondition, model-checked."""
    result = ExperimentResult(
        "E11",
        "The epistemic precondition of performing (Prop 3.5)",
        "In a UDC ensemble: if p knows alpha was initiated and that every "
        "process will learn of it or crash, then p knows some correct "
        "process knows of it (when anyone is correct at all).",
        passed=True,
    )
    procs = make_process_ids(n)
    system = a5t_ensemble(
        procs,
        uniform_protocol(StrongFDUDCProcess),
        t=n - 1,
        workload=lambda plan: post_crash_workload(procs, plan, actions_per_survivor=1),
        detector=PerfectOracle(),
        seeds=seeds,
    )
    checker = ModelChecker(system)
    actions = sorted({a for r in system for a in actions_in(r)})
    result.row("runs / actions", f"{len(system)} / {len(actions)}")
    checked = 0
    for action in actions[:3]:
        for p in procs:
            formula = prop_3_5(procs, p, action)
            if not result.require(
                checker.valid(formula), f"Prop 3.5 valid for observer {p}, {action!r}"
            ):
                return result
            checked += 1
    # The DC formulas agree with the fast-path checkers.
    for action in actions[:2]:
        temporal = (
            checker.valid(dc1_formula(action))
            and checker.valid(dc2_formula(procs, action))
            and checker.valid(dc3_formula(procs, action))
        )
        fast = all(udc_holds(r, action) for r in system)
        result.require(
            temporal == fast and temporal,
            f"temporal DC formulas agree with checkers for {action!r}",
        )
    result.details["instances"] = checked
    return result


# ---------------------------------------------------------------------------
# E12: the A4 discussion -- full information vs. the paper's counterexample
# ---------------------------------------------------------------------------


def _a4_counterexample_system() -> tuple[System, dict]:
    """The non-FIP system of Section 3's A4 discussion, built by hand.

    Run r: q sends msg to p'; p' relays the disjunction to p as the
    message "crash(q) or send_q(p', msg)" (true because of the send).
    Run r': p' knows q crashed (perfect detector report) and sends p the
    same disjunction (true because of the crash); q never sends.
    At (r, m), p knows the disjunction but neither disjunct -- and no
    point of the system satisfies A4's requirements for
    phi = send_q(p', msg).
    """
    from repro.model.events import (
        CrashEvent,
        ReceiveEvent,
        SendEvent,
        SuspectEvent,
    )
    from repro.model.run import Run

    procs = ("p", "pp", "q")
    msg = Message("m", "payload")
    disj = Message("crash(q) or send_q(pp, m)")
    r = Run(
        procs,
        {
            "q": [(1, SendEvent("q", "pp", msg))],
            "pp": [
                (2, ReceiveEvent("pp", "q", msg)),
                (3, SendEvent("pp", "p", disj)),
            ],
            "p": [(4, ReceiveEvent("p", "pp", disj))],
        },
        duration=6,
    )
    r_prime = Run(
        procs,
        {
            "q": [(1, CrashEvent("q"))],
            "pp": [
                (2, SuspectEvent("pp", StandardSuspicion(frozenset({"q"})))),
                (3, SendEvent("pp", "p", disj)),
            ],
            "p": [(4, ReceiveEvent("p", "pp", disj))],
        },
        duration=6,
    )
    return System([r, r_prime]), {"r": r, "r_prime": r_prime, "msg": msg}


def run_e12(n: int = 4) -> ExperimentResult:
    """Section 3's A4 discussion: the non-FIP counterexample."""
    from repro.knowledge import Crashed, Knows, Or, Sent
    from repro.knowledge.analysis import a4_instance_holds
    from repro.model.run import Point

    result = ExperimentResult(
        "E12",
        "A4 fails without full information (Section 3 discussion)",
        "The paper's hand-built counterexample: p knows a disjunction "
        "without knowing either disjunct, and no point of the system "
        "witnesses A4; in FIP-style ensembles the same A4 instances hold.",
        passed=True,
    )
    system, parts = _a4_counterexample_system()
    checker = ModelChecker(system)
    phi = Sent("q", "pp", parts["msg"])
    disjunction = Or(Crashed("q"), phi)
    point = Point(parts["r"], 4)
    result.require(
        checker.holds(Knows("p", disjunction), point),
        "p knows crash(q) | send_q(pp, msg)",
    )
    result.require(
        not checker.holds(Knows("p", Crashed("q")), point),
        "p does not know crash(q)",
    )
    result.require(
        not checker.holds(Knows("p", phi), point),
        "p does not know send_q(pp, msg)",
    )
    result.require(
        not a4_instance_holds(checker, phi, point, frozenset({"p"})),
        "A4 instance FAILS in the counterexample system",
    )

    # Contrast: in an executor-generated ensemble, A4 instances for
    # init-formulas typically hold -- the protocols carry the relevant
    # information explicitly, not as bare disjunctions.
    from repro.knowledge.formulas import Inited

    procs = make_process_ids(n)
    ensemble = a5t_ensemble(
        procs,
        uniform_protocol(StrongFDUDCProcess),
        t=1,
        workload=single_action("p1", tick=4),
        detector=PerfectOracle(),
        seeds=(0,),
    )
    echecker = ModelChecker(ensemble)
    action = ("p1", "a0")
    init = Inited("p1", action)
    held = 0
    total = 0
    for run in ensemble:
        point = Point(run, 2)  # before anyone can know about the init
        group = frozenset(
            q for q in procs if not echecker.holds(Knows(q, init), point)
        )
        if not group:
            continue
        total += 1
        if a4_instance_holds(echecker, init, point, group):
            held += 1
    result.row("A4 instances in protocol ensemble", f"{held}/{total}")
    result.require(total > 0 and held == total, "A4 instances hold in the ensemble")
    return result


# ---------------------------------------------------------------------------
# A13: ablation -- accuracy is load-bearing for uniformity
# ---------------------------------------------------------------------------


def run_a13(
    n: int = 4,
    error_rates: Sequence[float] = (0.0, 0.4, 0.9),
    seeds: Sequence[int] = tuple(range(30)),
) -> ExperimentResult:
    """Ablation: uniformity-violation rate vs detector error rate."""
    result = ExperimentResult(
        "A13",
        "Detector accuracy sweep (ablation)",
        "Injecting false suspicions into Prop 3.1's protocol lets an "
        "initiator perform before any correct process holds the action; "
        "uniformity (DC2) violations appear as the error rate grows and "
        "vanish at 0.",
        passed=True,
    )
    procs = make_process_ids(n)
    # Moderately lossy channel; the crash lands shortly after the init,
    # while the initiator's first alpha-copies are still at the mercy of
    # the channel.  With an accurate detector the initiator cannot
    # perform before gathering acks or real crashes, so its early death
    # leaves nothing performed and DC2 holds vacuously.  With false
    # suspicions it performs immediately -- and its crash can erase the
    # action.
    lossy = FAIR.with_channel(drop_prob=0.8, max_consecutive_drops=8)
    base = RunSpec(
        processes=procs,
        protocol=uniform_protocol(StrongFDUDCProcess, resend_rounds=60),
        crash_plan=CrashPlan.of({"p1": 12}),
        workload=single_action("p1", tick=1),
        config=lossy,
    )
    rates = []
    for eps in error_rates:
        detector = NoisyStrongOracle(error_rate=eps, start_tick=1, interval=1)
        report = run_ensemble(
            [base.with_(detector=detector, seed=seed) for seed in seeds]
        )
        violations = 0
        for run in report.runs:
            action = next(iter(actions_in(run)), None)
            if action is not None and not dc2(run, action):
                violations += 1
        rate = violations / len(seeds)
        rates.append(rate)
        result.row(f"eps={eps}", f"DC2 violation rate {rate:.2f}")
    result.require(rates[0] == 0.0, "no uniformity violations with an accurate detector")
    result.require(rates[-1] > 0.0, "uniformity violations appear under inaccuracy")
    result.require(
        all(a <= b + 1e-9 for a, b in zip(rates, rates[1:])),
        "violation rate is monotone in the error rate",
    )
    result.details["rates"] = dict(zip(error_rates, rates))
    return result


# ---------------------------------------------------------------------------
# A14: ablation -- R5 fairness is load-bearing
# ---------------------------------------------------------------------------


def run_a14(n: int = 4) -> ExperimentResult:
    """Ablation: R5 fairness is load-bearing."""
    from repro.model.context import ChannelSemantics

    result = ExperimentResult(
        "A14",
        "Channel fairness sweep (ablation)",
        "A blackhole that swallows every message to one process violates "
        "R5 and breaks even non-uniform coordination; restoring the "
        "fairness budget restores nUDC.",
        passed=True,
    )
    procs = make_process_ids(n)
    unfair = ExecutionConfig(
        channel=ChannelConfig(
            semantics=ChannelSemantics.UNFAIR,
            blackhole=lambda s, r, m: r == "p2",
        ),
        validate=False,
    )
    run = Executor(
        procs,
        uniform_protocol(NUDCProcess),
        workload=single_action("p1", tick=1),
        config=unfair,
        seed=0,
    ).run()
    verdict = nudc_holds(run)
    result.require(not verdict, "nUDC violated under the blackhole")
    result.require(
        bool(r5_violations(run)), "the R5 checker flags the unfair run"
    )
    fair_run = Executor(
        procs,
        uniform_protocol(NUDCProcess),
        workload=single_action("p1", tick=1),
        config=FAIR,
        seed=0,
    ).run()
    result.require(bool(nudc_holds(fair_run)), "nUDC restored under fairness")
    result.require(
        not r5_violations(fair_run), "no R5 violations under fairness"
    )
    return result


# ---------------------------------------------------------------------------
# A15: ablation -- the n/2 crossover of the first Table 1 column
# ---------------------------------------------------------------------------


def run_a15(n: int = 5, seeds: Sequence[int] = (0, 1, 2)) -> ExperimentResult:
    """Ablation: the t < n/2 crossover of the detector-free protocol."""
    result = ExperimentResult(
        "A15",
        "Quorum sweep: the t < n/2 crossover (ablation)",
        "Gopal-Toueg's detector-free protocol (trivial subset reports) "
        "attains UDC exactly while t < n/2; the crossover sits at "
        "ceil(n/2).",
        passed=True,
    )
    procs = make_process_ids(n)
    crossover = None
    for t in range(0, n):
        plan = (
            staggered_plan(procs, list(procs)[-t:], first_tick=6)
            if t
            else CrashPlan.none()
        )
        base = RunSpec(
            processes=procs,
            protocol=uniform_protocol(GeneralizedFDUDCProcess, t=t),
            crash_plan=plan,
            workload=single_action("p1", tick=1),
            detector=TrivialSubsetOracle(t),
        )
        report = run_ensemble([base.with_(seed=seed) for seed in seeds])
        ok_all = all(bool(udc_holds(run)) for run in report.runs)
        result.row(f"t={t}", "UDC" if ok_all else "fails")
        if not ok_all and crossover is None:
            crossover = t
    expected = (n + 1) // 2 if n % 2 else n // 2  # first t with 2t >= n
    result.row("observed crossover", str(crossover))
    result.require(
        crossover == expected, f"crossover at t={expected} (first t >= n/2)"
    )
    result.details["crossover"] = crossover
    return result



# ---------------------------------------------------------------------------
# E13: knowledge gain and full information (footnote 5 + the A4/FIP story)
# ---------------------------------------------------------------------------


def run_e13(n: int = 4, seeds: Sequence[int] = (0, 1)) -> ExperimentResult:
    """Footnote 5 + A4: knowledge gain and full-information transfer."""
    from repro.knowledge.chains import has_message_chain, knowledge_gain_violations
    from repro.knowledge.formulas import Inited, Knows
    from repro.model.events import InitEvent
    from repro.model.run import Point
    from repro.sim.fip import with_full_information

    result = ExperimentResult(
        "E13",
        "Knowledge gain and full-information transfer (footnote 5, A4)",
        "In detector-free systems, knowledge of a remote initiation "
        "REQUIRES a message chain from its initiator (knowledge gain); "
        "under a full-information protocol a chain also SUFFICES, so "
        "knowledge of initiations is exactly chain reachability.",
        passed=True,
    )
    procs = make_process_ids(n)
    action = ("p1", "a0")

    def mixed_ensemble(factory):
        with_action = a5t_ensemble(
            procs, factory, t=1,
            workload=single_action("p1", tick=1), seeds=seeds,
        )
        without_action = a5t_ensemble(
            procs, factory, t=1, workload=[], seeds=seeds,
        )
        return with_action.union(without_action)

    # 1. Knowledge gain: no process knows the init without a chain.
    plain = mixed_ensemble(uniform_protocol(NUDCProcess))
    checker = ModelChecker(plain)

    def first_true(run):
        for t, e in run.timeline("p1"):
            if isinstance(e, InitEvent) and e.action == action:
                return t
        return None

    violations = knowledge_gain_violations(
        plain, checker, Inited("p1", action), "p1", first_true
    )
    result.row("runs (plain ensemble)", len(plain))
    result.require(
        not violations, f"knowledge-gain violations: {len(violations)}"
    )

    # 2. Full-information transfer: chains coincide with knowledge.
    fip = mixed_ensemble(with_full_information(uniform_protocol(NUDCProcess)))
    fip_checker = ModelChecker(fip)
    formula = Inited("p1", action)
    agree = 0
    total = 0
    for run in fip:
        init_t = first_true(run)
        if init_t is None:
            continue
        for q in procs:
            if q == "p1":
                continue
            total += 1
            chain = has_message_chain(run, "p1", init_t, q, run.duration)
            knows = fip_checker.holds(
                Knows(q, formula), Point(run, run.duration)
            )
            if chain == knows:
                agree += 1
    result.row("FIP chain/knowledge agreement", f"{agree}/{total}")
    result.require(total > 0 and agree == total, "chains == knowledge under FIP")
    result.details.update(violations=len(violations), agree=agree, total=total)
    return result



# ---------------------------------------------------------------------------
# A16: ablation -- transient partitions
# ---------------------------------------------------------------------------


def run_a16(n: int = 4, seeds: Sequence[int] = (0, 1, 2)) -> ExperimentResult:
    """Ablation: UDC under transient network partitions."""
    from repro.harness.stats import completion_latency
    from repro.sim.network import Partition

    result = ExperimentResult(
        "A16",
        "Transient partitions (ablation)",
        "A finite network partition is just a burst of unfairness: UDC "
        "survives it (retransmission outlasts the partition, R5 in the "
        "limit), at a measurable latency cost that grows with the "
        "partition's length.",
        passed=True,
    )
    procs = make_process_ids(n)
    action = ("p1", "a0")
    group = frozenset(procs[: n // 2])

    def latency(partition_len, seed):
        partitions = (
            (Partition(4, 4 + partition_len, group),) if partition_len else ()
        )
        config = ExecutionConfig(
            channel=ChannelConfig(drop_prob=0.2, partitions=partitions),
            validate=False,  # the finite-R5 heuristic misreads in-partition drops
        )
        run = run_spec(
            RunSpec(
                processes=procs,
                protocol=uniform_protocol(StrongFDUDCProcess, resend_rounds=70),
                crash_plan=CrashPlan.of({procs[-1]: 8}),
                workload=single_action("p1", tick=1),
                detector=PerfectOracle(),
                config=config,
                seed=seed,
            )
        )
        verdict = udc_holds(run)
        return verdict, completion_latency(run, action)

    lengths = (0, 20, 45)
    means = []
    for length in lengths:
        latencies = []
        all_ok = True
        for seed in seeds:
            verdict, lat = latency(length, seed)
            if not verdict or lat is None:
                all_ok = False
                break
            latencies.append(lat)
        result.require(all_ok, f"partition length {length}: UDC holds")
        if not all_ok:
            return result
        mean = sum(latencies) / len(latencies)
        means.append(mean)
        result.row(f"partition length {length}", f"completion latency {mean:.1f}")
    result.require(
        means[0] < means[-1], "longer partitions cost more latency"
    )
    result.details["latencies"] = dict(zip(lengths, means))
    return result


# ---------------------------------------------------------------------------
# A17: ablation -- ensemble size vs knowledge-derived detection
# ---------------------------------------------------------------------------


def run_a17(n: int = 4) -> ExperimentResult:
    """Ablation: ensemble size vs knowledge-derived detection."""
    from repro.harness.stats import detection_latency
    from repro.core.simulation_theorem import transform_run_f

    result = ExperimentResult(
        "A17",
        "Ensemble size vs knowledge-derived detection (ablation)",
        "Theorem 3.6's derived detector is knowledge, which is "
        "ensemble-relative; growing the ensemble can only remove "
        "knowledge, never add it.  Measured: with an oracle that is "
        "accurate ensemble-wide, the knowledge rides on the reports, so "
        "derived completeness AND detection latency are stable across "
        "ensemble sizes (latency never decreases).  What breaks the "
        "report->knowledge link is accuracy failing somewhere in the "
        "ensemble -- E06's phantom-twin ablation shows that collapse.",
        passed=True,
    )
    procs = make_process_ids(n)

    def ensemble(num_seeds):
        return a5t_ensemble(
            procs,
            uniform_protocol(StrongFDUDCProcess),
            t=n - 1,
            workload=lambda plan: post_crash_workload(
                procs, plan, actions_per_survivor=2
            ),
            detector=PerfectOracle(),
            seeds=tuple(range(num_seeds)),
        )

    sizes = (1, 2, 3)
    prev_latency = None
    base_runs = None
    for num_seeds in sizes:
        system = ensemble(num_seeds)
        if base_runs is None:
            base_runs = [r for r in system.runs if len(r.faulty()) == 1][:6]
        latencies = []
        complete = True
        for run in base_runs:
            f_run = transform_run_f(run, system)
            if not strong_completeness(f_run, derived=True):
                complete = False
            lat = detection_latency(f_run, derived=True)
            latencies.extend(lat.values())
        mean = sum(latencies) / len(latencies) if latencies else 0.0
        result.row(
            f"ensemble of {len(system)} runs",
            f"derived detection latency {mean:.1f} ticks",
        )
        result.require(complete, f"{len(system)} runs: derived completeness holds")
        if prev_latency is not None:
            result.require(
                mean >= prev_latency - 1e-9,
                f"latency non-decreasing at {len(system)} runs",
            )
        prev_latency = mean
    return result


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

ALL_EXPERIMENTS: dict[str, Callable[[], ExperimentResult]] = {
    "E01": run_e01,
    "E02": run_e02,
    "E03": run_e03,
    "E04": run_e04,
    "E05": run_e05,
    "E06": run_e06,
    "E07": run_e07,
    "E08": run_e08,
    "E10": run_e10,
    "E11": run_e11,
    "E12": run_e12,
    "E13": run_e13,
    "A13": run_a13,
    "A14": run_a14,
    "A15": run_a15,
    "A16": run_a16,
    "A17": run_a17,
}
# E09 (Table 1) lives in repro.harness.table1.


def run_experiment(exp_id: str) -> ExperimentResult:
    """Run one experiment by id (case-insensitive).

    Delegates to :mod:`repro.harness.registry`, so E09 (Table 1) is also
    reachable here even though it lives in :mod:`repro.harness.table1`.
    """
    from repro.harness import registry

    return registry.run(exp_id)
