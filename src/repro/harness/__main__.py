"""Run every experiment and print the report: ``python -m repro.harness``."""

from __future__ import annotations

import sys
import time

from repro.harness.experiments import ALL_EXPERIMENTS
from repro.harness.results import render_result
from repro.harness.table1 import build_table1, render_table1, run_e09


def main(argv: list[str]) -> int:
    """Run the requested experiments (all by default) and print results."""
    wanted = [a.upper() for a in argv] or [*ALL_EXPERIMENTS, "E09"]
    failed = 0
    for exp_id in wanted:
        start = time.perf_counter()
        if exp_id == "E09":
            result = run_e09()
        else:
            result = ALL_EXPERIMENTS[exp_id]()
        elapsed = time.perf_counter() - start
        print(render_result(result))
        print(f"    ({elapsed:.1f}s)\n")
        if not result.passed:
            failed += 1
        if exp_id == "E09":
            print(render_table1(build_table1()))
            print()
    total = len(wanted)
    print(f"{total - failed}/{total} experiments passed")
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
