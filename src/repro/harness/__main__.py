"""Run experiments from the registry: ``python -m repro.harness``.

Usage::

    python -m repro.harness [--list] [--backend serial|process[:N]] [IDS...]
    python -m repro.harness explore [--n N] [--t T] [--horizon T] [...]
    python -m repro.harness chaos
    python -m repro.harness lint [PATHS...] [--format json] [--select RULE,...]
    python -m repro.harness serve [--host H] [--port P] [--cache DIR]
                                  [--journal-dir DIR] [--max-inflight N]
                                  [--request-deadline S] [...]
    python -m repro.harness bench-serve [--out PATH]
    python -m repro.harness serve-smoke
    python -m repro.harness serve-soak [--seed N] [--clients N] [--rounds N]

With no ids, every registered experiment runs.  ``--backend process``
executes the ensemble sweeps inside each experiment on a worker-process
pool (results are identical to serial; see repro.runtime).

The ``explore`` subcommand runs the bounded exhaustive checker
(:mod:`repro.explore`) instead of a seeded ensemble: it enumerates every
run of the chosen context up to the horizon, reports monitor violations,
and (with ``--shrink``) minimizes the first one to a replayable witness.

The ``chaos`` subcommand is the runtime-hardening smoke test: it runs a
small ensemble under a seeded infrastructure fault plan (one worker
killed mid-batch, one run hung past its deadline, one corrupted disk
cache entry) and exits 0 iff the batch completes *degraded* -- no
exception, the casualties and recoveries as structured
:class:`~repro.runtime.report.FailedRun` records, and a usable System
over the survivors.

The ``lint`` subcommand runs the determinism / pool-safety /
model-invariant static analyzer (:mod:`repro.lint`) over ``src/repro``
(or the given paths) and exits 1 on any error-severity finding.

The ``serve`` family drives the online epistemic query service
(:mod:`repro.serve`): ``serve`` runs the asyncio JSON server (with
optional write-ahead journaling, crash recovery, and admission-control
knobs), ``bench-serve`` records BENCH_serve.json (including the
journaling-overhead section), ``serve-smoke`` is the CI end-to-end
check (boot, mixed query batch, one online ingest pinned against a
fresh rebuild, clean shutdown), and ``serve-soak`` is the chaos soak:
a client fleet driven through a seeded TCP chaos proxy at a supervised
server that is SIGKILLed and respawned mid-soak, asserting zero wrong
answers against an in-process oracle and full post-recovery
bit-equality.
"""

from __future__ import annotations

import sys
import time

from repro.harness import registry
from repro.harness.results import render_result
from repro.harness.table1 import build_table1, render_table1

_EXPLORE_USAGE = """\
usage: python -m repro.harness explore [options]

  --protocol nudc|reliable   joint protocol to check         (default nudc)
  --n N                      number of processes             (default 3)
  --t T                      max crash failures              (default 1)
  --horizon T                exploration bound in ticks      (default 4)
  --crash-ticks A,B,...      candidate crash ticks           (default 1)
  --init PROC:TICK           single-action workload          (default p1:1)
  --lossy                    fair-lossy channel (else reliable)
  --drop-budget K            max consecutive drops per channel (default 2)
  --monitor udc|nudc         uniformity monitor to attach    (default udc)
  --reduction MODE           none|dpor|dpor+symmetry         (default dpor)
  --workers N                frontier shards (process pool)  (default 1)
  --strategy dfs|bfs         frontier discipline             (default dfs)
  --stop-on-violation        halt at the first violation
  --shrink                   minimize the first violation
"""


def _explore_main(argv: list[str]) -> int:
    """``python -m repro.harness explore ...``: exhaustive bounded checking."""
    import warnings

    from repro.core.protocols import NUDCProcess, ReliableUDCProcess
    from repro.explore import (
        ExploreSpec,
        UniformityMonitor,
        explore,
        shrink_violation,
    )
    from repro.model.context import make_process_ids
    from repro.sim.process import uniform_protocol
    from repro.workloads.generators import single_action

    opts = {
        "--protocol": "nudc",
        "--n": "3",
        "--t": "1",
        "--horizon": "4",
        "--crash-ticks": "1",
        "--init": "p1:1",
        "--drop-budget": "2",
        "--monitor": "udc",
        "--reduction": "dpor",
        "--workers": "1",
        "--strategy": "dfs",
    }
    flags = {"--lossy", "--no-por", "--no-fingerprints", "--stop-on-violation",
             "--shrink", "--help", "-h"}
    given: set[str] = set()
    args = list(argv)
    while args:
        arg = args.pop(0)
        if arg in flags:
            given.add(arg)
        elif arg in opts:
            if not args:
                print(f"{arg} needs a value\n{_EXPLORE_USAGE}")
                return 2
            opts[arg] = args.pop(0)
        else:
            print(f"unknown explore option {arg!r}\n{_EXPLORE_USAGE}")
            return 2
    if "--help" in given or "-h" in given:
        print(_EXPLORE_USAGE)
        return 0

    protocols = {"nudc": NUDCProcess, "reliable": ReliableUDCProcess}
    if opts["--protocol"] not in protocols:
        print(f"unknown protocol {opts['--protocol']!r} (nudc | reliable)")
        return 2
    init_proc, _, init_tick = opts["--init"].partition(":")
    reduction = opts["--reduction"]
    for legacy, replacement in (
        ("--no-por", "--reduction none"),
        ("--no-fingerprints", "--reduction dpor"),
    ):
        if legacy in given:
            warnings.warn(
                f"{legacy} is deprecated; use {replacement}",
                DeprecationWarning,
                stacklevel=2,
            )
    if "--no-por" in given:
        reduction = "none"
    try:
        spec = ExploreSpec(
            processes=make_process_ids(int(opts["--n"])),
            protocol=uniform_protocol(protocols[opts["--protocol"]]),
            horizon=int(opts["--horizon"]),
            max_failures=int(opts["--t"]),
            crash_ticks=tuple(
                int(part) for part in opts["--crash-ticks"].split(",") if part
            ),
            workload=single_action(init_proc, tick=int(init_tick or "1")),
            lossy="--lossy" in given,
            max_consecutive_drops=int(opts["--drop-budget"]),
            reduction=reduction,
            strategy=opts["--strategy"],
        )
    except ValueError as exc:
        print(exc)
        return 2
    monitor = UniformityMonitor(uniform=opts["--monitor"] == "udc")
    report = explore(
        spec,
        monitors=[monitor],
        stop_on_violation="--stop-on-violation" in given,
        workers=int(opts["--workers"]),
    )
    print(report.summary())
    if report.violations and "--shrink" in given:
        shrunk = shrink_violation(spec, report.violations[0], monitor=monitor)
        print(
            f"    shrunk witness: crashes={shrunk.crashes} "
            f"trace={list(shrunk.trace)} "
            f"({shrunk.attempts} attempts, {shrunk.reductions} reductions)"
        )
    return 1 if report.violations else 0


def _chaos_main(argv: list[str]) -> int:
    """``python -m repro.harness chaos``: the hardened-runtime smoke test.

    Deterministic chaos: the fault plan is fixed (kill the worker that
    picks up seed 5, hang seed 7 past its 1s deadline, corrupt the disk
    cache entry for seed 0), so the expected degraded report is too.
    """
    import tempfile
    import warnings
    from pathlib import Path

    from repro.core.protocols import NUDCProcess
    from repro.faults import InfraFaultPlan, corrupt_cache_entry, use_infra_faults
    from repro.model.context import make_process_ids
    from repro.runtime import (
        ProcessPoolBackend,
        RetryPolicy,
        RunCache,
        RunSpec,
        run_ensemble,
    )
    from repro.sim.executor import ExecutionConfig
    from repro.sim.process import uniform_protocol
    from repro.workloads.generators import single_action

    if argv:
        print("usage: python -m repro.harness chaos   (no options)")
        return 0 if argv[0] in ("-h", "--help") else 2

    processes = make_process_ids(3)
    config = ExecutionConfig(deadline=1.0)
    specs = [
        RunSpec(
            processes=processes,
            protocol=uniform_protocol(NUDCProcess),
            workload=single_action("p1", tick=1),
            config=config,
            seed=seed,
        )
        for seed in range(10)
    ]

    with tempfile.TemporaryDirectory(prefix="repro-chaos-") as tmp:
        cache_dir = Path(tmp) / "cache"
        state_dir = Path(tmp) / "state"
        state_dir.mkdir()

        # Warm the disk cache with two runs, then corrupt one entry.
        run_ensemble(specs[:2], backend="serial", cache=RunCache(cache_dir))
        digest = specs[0].digest()
        assert digest is not None
        corrupt_cache_entry(cache_dir, digest)

        plan = InfraFaultPlan(
            state_dir=str(state_dir),
            kill_worker_seeds=(5,),
            hangs=((7, 2.5),),
        )
        with use_infra_faults(plan), warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            report = run_ensemble(
                specs,
                backend=ProcessPoolBackend(max_workers=2),
                cache=RunCache(cache_dir),
                retry=RetryPolicy(max_attempts=3, backoff_base=0.05),
            )

    print(report.summary())
    system = report.system()
    records = len(report.failures) + len(report.recoveries)
    checks = [
        ("batch completed degraded (no exception)", not report.complete),
        (
            "hung run recorded as a deadline failure",
            any(f.kind == "deadline" for f in report.failures),
        ),
        (
            "killed worker recovered via pool respawn",
            any(r.kind == "worker-crash" for r in report.recoveries),
        ),
        (
            "corrupt cache entry quarantined and regenerated",
            any(r.kind == "cache-corrupt" for r in report.recoveries),
        ),
        (f">= 3 structured fault records (got {records})", records >= 3),
        (
            "degradation warning issued",
            any(issubclass(w.category, UserWarning) for w in caught),
        ),
        (
            "System built over survivors, marked incomplete",
            not system.complete and system.missing_runs == len(report.failures),
        ),
        (
            "every non-failed spec has a run",
            len(report.runs) == len(specs) - len(report.failures),
        ),
    ]
    ok = True
    for label, passed in checks:
        print(f"    [{'ok' if passed else 'FAIL'}] {label}")
        ok = ok and passed
    print("chaos smoke " + ("passed" if ok else "FAILED"))
    return 0 if ok else 1


def main(argv: list[str]) -> int:
    """Run the requested experiments (all by default) and print results."""
    args = list(argv)
    if args and args[0] == "explore":
        return _explore_main(args[1:])
    if args and args[0] == "chaos":
        return _chaos_main(args[1:])
    if args and args[0] == "lint":
        from repro.lint.cli import main as lint_main

        return lint_main(args[1:])
    if args and args[0] == "serve":
        from repro.harness.servecli import serve_main

        return serve_main(args[1:])
    if args and args[0] == "bench-serve":
        from repro.harness.servecli import bench_serve_main

        return bench_serve_main(args[1:])
    if args and args[0] == "serve-smoke":
        from repro.harness.servecli import serve_smoke_main

        return serve_smoke_main(args[1:])
    if args and args[0] == "serve-soak":
        from repro.harness.servecli import serve_soak_main

        return serve_soak_main(args[1:])
    if "--list" in args:
        print(registry.describe())
        return 0
    backend = None
    if "--backend" in args:
        at = args.index("--backend")
        try:
            backend = args[at + 1]
        except IndexError:
            print("--backend needs a value: serial | process | process:N")
            return 2
        del args[at : at + 2]
    if backend is not None:
        from repro.runtime import set_default_backend

        try:
            set_default_backend(backend)
        except ValueError as exc:
            print(exc)
            return 2

    wanted = [a.upper() for a in args] or registry.experiment_ids()
    unknown = [e for e in wanted if e not in registry.experiment_ids()]
    if unknown:
        print(f"unknown experiment ids: {', '.join(unknown)}")
        print(registry.describe())
        return 2
    failed = 0
    for exp_id in wanted:
        start = time.perf_counter()
        result = registry.run(exp_id)
        elapsed = time.perf_counter() - start
        print(render_result(result))
        print(f"    ({elapsed:.1f}s)\n")
        if not result.passed:
            failed += 1
        if exp_id == "E09":
            print(render_table1(build_table1()))
            print()
    total = len(wanted)
    print(f"{total - failed}/{total} experiments passed")
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
