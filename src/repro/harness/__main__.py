"""Run experiments from the registry: ``python -m repro.harness``.

Usage::

    python -m repro.harness [--list] [--backend serial|process[:N]] [IDS...]

With no ids, every registered experiment runs.  ``--backend process``
executes the ensemble sweeps inside each experiment on a worker-process
pool (results are identical to serial; see repro.runtime).
"""

from __future__ import annotations

import sys
import time

from repro.harness import registry
from repro.harness.results import render_result
from repro.harness.table1 import build_table1, render_table1


def main(argv: list[str]) -> int:
    """Run the requested experiments (all by default) and print results."""
    args = list(argv)
    if "--list" in args:
        print(registry.describe())
        return 0
    backend = None
    if "--backend" in args:
        at = args.index("--backend")
        try:
            backend = args[at + 1]
        except IndexError:
            print("--backend needs a value: serial | process | process:N")
            return 2
        del args[at : at + 2]
    if backend is not None:
        from repro.runtime import set_default_backend

        try:
            set_default_backend(backend)
        except ValueError as exc:
            print(exc)
            return 2

    wanted = [a.upper() for a in args] or registry.experiment_ids()
    unknown = [e for e in wanted if e not in registry.experiment_ids()]
    if unknown:
        print(f"unknown experiment ids: {', '.join(unknown)}")
        print(registry.describe())
        return 2
    failed = 0
    for exp_id in wanted:
        start = time.perf_counter()
        result = registry.run(exp_id)
        elapsed = time.perf_counter() - start
        print(render_result(result))
        print(f"    ({elapsed:.1f}s)\n")
        if not result.passed:
            failed += 1
        if exp_id == "E09":
            print(render_table1(build_table1()))
            print()
    total = len(wanted)
    print(f"{total - failed}/{total} experiments passed")
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
