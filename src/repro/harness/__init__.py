"""Experiment harness: one runnable experiment per claim of the paper.

* :mod:`repro.harness.results`     -- result records and text rendering.
* :mod:`repro.harness.experiments` -- E01-E12 and ablations A13-A15
  (see DESIGN.md Section 4 for the index).
* :mod:`repro.harness.table1`      -- regenerates Table 1.

Run everything with ``python -m repro.harness``.
"""

from repro.harness.results import ExperimentResult, render_result
from repro.harness.experiments import ALL_EXPERIMENTS, run_experiment
from repro.harness.table1 import build_table1, render_table1

__all__ = [
    "ALL_EXPERIMENTS",
    "ExperimentResult",
    "build_table1",
    "render_result",
    "render_table1",
    "run_experiment",
]
