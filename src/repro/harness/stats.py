"""Quantitative run metrics: message cost, latency, detection delay.

The paper reports no measurements (it is a theory paper), so these
metrics characterise the *implementation*: what each protocol costs in
messages and time, how fast knowledge-grade detection happens, and how
the costs scale with the system size and the channel's hostility.  The
cost benchmarks (benchmarks/test_bench_s01/s02) print these series as
the repository's supplementary figures.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass

from repro.model.events import (
    ActionId,
    DoEvent,
    InitEvent,
    ProcessId,
    ReceiveEvent,
    SendEvent,
    SuspectEvent,
)
from repro.model.run import Run


@dataclass(frozen=True)
class RunStats:
    """Aggregate metrics of one run."""

    duration: int
    sends: int
    receives: int
    delivery_ratio: float
    suspect_events: int
    do_events: int
    faulty: int

    @classmethod
    def of(cls, run: Run) -> "RunStats":
        sends = receives = suspects = dos = 0
        for p in run.processes:
            for event in run.events(p):
                if isinstance(event, SendEvent):
                    sends += 1
                elif isinstance(event, ReceiveEvent):
                    receives += 1
                elif isinstance(event, SuspectEvent):
                    suspects += 1
                elif isinstance(event, DoEvent):
                    dos += 1
        return cls(
            duration=run.duration,
            sends=sends,
            receives=receives,
            delivery_ratio=receives / sends if sends else 1.0,
            suspect_events=suspects,
            do_events=dos,
            faulty=len(run.faulty()),
        )


def action_latency(run: Run, action: ActionId) -> dict[ProcessId, int]:
    """Ticks from the action's init to each process's do of it."""
    init_t = None
    for p in run.processes:
        for t, event in run.timeline(p):
            if isinstance(event, InitEvent) and event.action == action:
                init_t = t
                break
        if init_t is not None:
            break
    if init_t is None:
        return {}
    latencies = {}
    for p in run.processes:
        for t, event in run.timeline(p):
            if isinstance(event, DoEvent) and event.action == action:
                latencies[p] = t - init_t
                break
    return latencies


def completion_latency(run: Run, action: ActionId) -> int | None:
    """Ticks until the LAST correct process performs the action."""
    latencies = action_latency(run, action)
    correct = [latencies[p] for p in run.correct() if p in latencies]
    if len(correct) < len(run.correct()):
        return None  # some correct process never performed
    return max(correct, default=None)


def detection_latency(run: Run, *, derived: bool = False) -> dict[ProcessId, int]:
    """Per crashed process: ticks from crash to first suspicion by any
    correct process."""
    out: dict[ProcessId, int] = {}
    for q in sorted(run.faulty()):
        crash_t = run.crash_time(q)
        first = None
        for p in run.correct():
            for t, event in run.timeline(p):
                if (
                    isinstance(event, SuspectEvent)
                    and event.derived == derived
                    and hasattr(event.report, "suspects")
                    and q in event.report.suspects
                    and t >= crash_t
                ):
                    first = t if first is None else min(first, t)
                    break
        if first is not None:
            out[q] = first - crash_t
    return out


def messages_per_action(run: Run) -> float:
    """Total sends divided by the number of initiated actions."""
    stats = RunStats.of(run)
    actions = sum(
        1
        for p in run.processes
        for e in run.events(p)
        if isinstance(e, InitEvent)
    )
    return stats.sends / actions if actions else float(stats.sends)


@dataclass(frozen=True)
class SeriesPoint:
    """One point of a cost curve."""

    x: float
    mean: float
    minimum: float
    maximum: float

    @classmethod
    def of(cls, x: float, samples: list[float]) -> "SeriesPoint":
        return cls(
            x=x,
            mean=statistics.fmean(samples),
            minimum=min(samples),
            maximum=max(samples),
        )


def render_series(title: str, xlabel: str, ylabel: str, points: list[SeriesPoint]) -> str:
    """Plain-text rendering of a cost curve (our 'figures')."""
    lines = [f"{title}", f"  {xlabel:>10}  {ylabel} (mean [min..max])"]
    for pt in points:
        lines.append(
            f"  {pt.x:>10.3g}  {pt.mean:10.2f}  [{pt.minimum:.2f} .. {pt.maximum:.2f}]"
        )
    return "\n".join(lines)
