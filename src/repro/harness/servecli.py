"""Harness subcommands for the epistemic query service.

* ``python -m repro.harness serve``        -- run the server (Ctrl-C stops)
* ``python -m repro.harness bench-serve``  -- the BENCH_serve.json benchmark
* ``python -m repro.harness serve-smoke``  -- CI smoke: boot a server over a
  real cache entry, drive a mixed query batch plus one online ingest, and
  assert the answers (including post-ingest bit-equality with a fresh
  rebuild) and a clean shutdown.
"""

from __future__ import annotations

import asyncio
import json
import os
import threading
import warnings
from typing import Any

_SERVE_USAGE = """\
usage: python -m repro.harness serve [options]

  --host HOST        bind address                       (default 127.0.0.1)
  --port PORT        bind port; 0 = ephemeral           (default 7399)
  --cache DIR        RunCache directory exposed to 'load'
  --preload DIGEST   load a cached exploration at boot (repeatable;
                     session name = the digest)
"""

_BENCH_USAGE = """\
usage: python -m repro.harness bench-serve [--out PATH]

Writes the serve latency/throughput payload (default BENCH_serve.json).
Set REPRO_BENCH_SMOKE=1 for the shrunk CI variant.
"""


def _parse(argv: list[str], opts: dict[str, str], usage: str) -> dict[str, list[str]] | None:
    """Tiny option parser in the harness house style; None = exit 2."""
    repeated: dict[str, list[str]] = {}
    args = list(argv)
    while args:
        arg = args.pop(0)
        if arg in ("-h", "--help"):
            print(usage)
            return None
        if arg in opts or arg == "--preload":
            if not args:
                print(f"{arg} needs a value\n{usage}")
                return None
            value = args.pop(0)
            if arg == "--preload":
                repeated.setdefault(arg, []).append(value)
            else:
                opts[arg] = value
        else:
            print(f"unknown option {arg!r}\n{usage}")
            return None
    return repeated


def serve_main(argv: list[str]) -> int:
    """``python -m repro.harness serve``: run the query service."""
    from repro.runtime.cache import RunCache
    from repro.serve.server import serve_forever
    from repro.serve.state import ServeState

    opts = {"--host": "127.0.0.1", "--port": "7399", "--cache": ""}
    repeated = _parse(argv, opts, _SERVE_USAGE)
    if repeated is None:
        return 2
    cache = RunCache(opts["--cache"]) if opts["--cache"] else None
    state = ServeState(cache)
    for digest in repeated.get("--preload", []):
        state.load_digest(digest, digest)
        print(f"preloaded {digest} ({len(state.sessions[digest].system.runs)} runs)")
    try:
        asyncio.run(
            serve_forever(state, host=opts["--host"], port=int(opts["--port"]))
        )
    except KeyboardInterrupt:
        print("\nrepro.serve stopped")
    return 0


def bench_serve_main(argv: list[str]) -> int:
    """``python -m repro.harness bench-serve``: write BENCH_serve.json."""
    from repro.serve.bench import run_serve_bench

    opts = {"--out": "BENCH_serve.json"}
    if _parse(argv, opts, _BENCH_USAGE) is None:
        return 2
    smoke = bool(os.environ.get("REPRO_BENCH_SMOKE"))
    payload = run_serve_bench(smoke=smoke)
    for key, entry in payload["results"].items():
        print(
            f"serve {key}: p50 {entry['p50_ms']:.2f} ms, "
            f"p95 {entry['p95_ms']:.2f} ms, {entry['qps']:,.0f} q/s"
        )
    ingest = payload["ingest"]
    print(
        f"serve ingest: p50 {ingest['p50_ms']:.2f} ms, "
        f"p95 {ingest['p95_ms']:.2f} ms per {ingest['runs_per_batch']}-run batch"
    )
    print(f"calibration: {payload['calibration']['direct_qps']:,.0f} q/s in-process")
    with open(opts["--out"], "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    print(f"wrote {opts['--out']}")
    return 0


def serve_smoke_main(argv: list[str]) -> int:
    """``python -m repro.harness serve-smoke``: the CI end-to-end check."""
    import random
    import tempfile
    from pathlib import Path

    from repro.core.protocols import NUDCProcess
    from repro.explore import ExploreSpec, explore
    from repro.knowledge import Crashed, GroupChecker, Knows, ModelChecker
    from repro.model.context import make_process_ids
    from repro.model.run import Point
    from repro.model.synthetic import synthetic_run, synthetic_system
    from repro.model.system import System
    from repro.runtime.cache import RunCache
    from repro.serve.client import (
        ServeClient,
        ck_query,
        e_query,
        knows_query,
    )
    from repro.serve.server import EpistemicServer
    from repro.serve.state import ServeState
    from repro.sim.process import uniform_protocol
    from repro.workloads.generators import single_action

    if argv:
        print("usage: python -m repro.harness serve-smoke   (no options)")
        return 0 if argv[0] in ("-h", "--help") else 2

    checks: list[tuple[str, bool]] = []

    with tempfile.TemporaryDirectory(prefix="repro-serve-smoke-") as tmp:
        cache_dir = Path(tmp) / "cache"

        # A real exploration entry for the 'load' path.
        spec = ExploreSpec(
            processes=make_process_ids(3),
            protocol=uniform_protocol(NUDCProcess),
            horizon=3,
            max_failures=1,
            crash_ticks=(1,),
            workload=single_action("p1", tick=1),
        )
        report = explore(spec, cache=RunCache(cache_dir))
        digest = spec.digest()
        assert digest is not None
        checks.append(
            ("exploration cached for load", len(report.runs) > 0)
        )

        # And a deliberately corrupt one for graceful degradation.
        (cache_dir / "explore-deadbeef.json").write_text(
            "{not json", encoding="utf-8"
        )

        state = ServeState(RunCache(cache_dir))
        server = EpistemicServer(state)
        bound: dict[str, Any] = {}
        started = threading.Event()

        def _run() -> None:
            loop = asyncio.new_event_loop()
            try:
                asyncio.set_event_loop(loop)
                bound["addr"] = loop.run_until_complete(server.start())
                started.set()
                loop.run_until_complete(server.run())
            finally:
                loop.close()

        thread = threading.Thread(target=_run, daemon=True)
        thread.start()
        started.wait(timeout=30)
        host, port = bound["addr"]

        with ServeClient.connect(host, port) as client:
            checks.append(("server answers ping", client.ping()))
            info = client.info()
            checks.append(
                ("cache digest discoverable", digest in info["cache_digests"])
            )

            loaded = client.load("explored", digest)
            checks.append(
                (
                    "loaded system is complete by construction",
                    loaded["complete"] is True and loaded["runs"] == len(report.runs),
                )
            )

            group = list(loaded["processes"])
            mixed = client.query_response(
                "explored",
                [
                    knows_query(group[0], Crashed(group[1]), 0, 2),
                    e_query(group, 2, Crashed(group[1]), 0, 2),
                    ck_query(group, Crashed(group[1]), 0, 2),
                ],
            )
            checks.append(
                (
                    "mixed Knows/E^k/C_G batch all answered",
                    all(r["ok"] for r in mixed["results"]),
                )
            )
            checks.append(
                ("complete flag rides the envelope", mixed["complete"] is True)
            )

            # A sampled inline system must surface complete: false.
            sampled = synthetic_system(3, 8, seed=11, duration=5)
            client.create("sampled", sampled.runs, complete=False)
            pre = client.query_response(
                "sampled", [knows_query("p1", Crashed("p2"), 0, 3)]
            )
            checks.append(
                (
                    "sampled system reports complete: false",
                    pre["complete"] is False and pre["results"][0]["ok"],
                )
            )

            # Online ingest, then differential vs a from-scratch rebuild.
            rng = random.Random(23)
            extra = [
                synthetic_run(sampled.processes, rng, duration=5)
                for _ in range(5)
            ]
            ingested = client.ingest("sampled", extra)
            checks.append(
                (
                    "ingest bumps the generation",
                    ingested["generation"] == 1 and ingested["added"] > 0,
                )
            )
            seen = set(sampled.runs)
            fresh = []
            for r in extra:
                if r not in seen:
                    seen.add(r)
                    fresh.append(r)
            with warnings.catch_warnings():
                warnings.simplefilter("ignore")
                rebuilt = System(sampled.runs + tuple(fresh))
                checker = ModelChecker(rebuilt)
                agree = True
                for i, run in enumerate(rebuilt.runs):
                    for m in range(0, run.duration + 1, 2):
                        for p in rebuilt.processes:
                            want = checker.holds(
                                Knows(p, Crashed("p2")), Point(run, m)
                            )
                            got = client.query(
                                "sampled",
                                [knows_query(p, Crashed("p2"), i, m)],
                            )[0]["result"]
                            agree = agree and (want == got)
                grp = GroupChecker(checker)
                want_ck = sorted(
                    grp.common_knowledge_points(
                        list(rebuilt.processes), Crashed("p2")
                    )
                )
                got_ck = [
                    tuple(p)
                    for p in client.query(
                        "sampled",
                        [
                            {
                                "kind": "ck_points",
                                "group": list(rebuilt.processes),
                                "formula": {"op": "crashed", "process": "p2"},
                            }
                        ],
                    )[0]["result"]
                ]
            checks.append(
                ("post-ingest Knows answers match a fresh rebuild", agree)
            )
            checks.append(
                ("post-ingest C_G point set matches a fresh rebuild", want_ck == got_ck)
            )

            corrupt = client.request_raw(
                {"op": "load", "system": "bad", "digest": "deadbeef"}
            )
            checks.append(
                (
                    "corrupt cache entry degrades to corrupt-entry",
                    corrupt.get("ok") is False
                    and corrupt.get("error") == "corrupt-entry",
                )
            )

            client.shutdown()
        thread.join(timeout=30)
        checks.append(("clean shutdown", not thread.is_alive()))

    ok = True
    for label, passed in checks:
        print(f"    [{'ok' if passed else 'FAIL'}] {label}")
        ok = ok and passed
    print("serve smoke " + ("passed" if ok else "FAILED"))
    return 0 if ok else 1
