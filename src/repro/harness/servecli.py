"""Harness subcommands for the epistemic query service.

* ``python -m repro.harness serve``        -- run the server (Ctrl-C stops)
* ``python -m repro.harness bench-serve``  -- the BENCH_serve.json benchmark
* ``python -m repro.harness serve-smoke``  -- CI smoke: boot a server over a
  real cache entry, drive a mixed query batch plus one online ingest, and
  assert the answers (including post-ingest bit-equality with a fresh
  rebuild) and a clean shutdown.
* ``python -m repro.harness serve-soak``   -- the chaos soak: a client
  fleet through a seeded TCP chaos proxy at a supervised, journaled
  server that is SIGKILLed and respawned mid-soak; exits 1 on any wrong
  answer (vs an in-process oracle), unstructured failure, or
  post-recovery divergence.
"""

from __future__ import annotations

import asyncio
import json
import os
import threading
import warnings
from typing import Any

_SERVE_USAGE = """\
usage: python -m repro.harness serve [options]

  --host HOST            bind address                     (default 127.0.0.1)
  --port PORT            bind port; 0 = ephemeral         (default 7399)
  --cache DIR            RunCache directory exposed to 'load'
  --preload DIGEST       load a cached exploration at boot (repeatable;
                         session name = the digest)
  --journal-dir DIR      write-ahead journal root: mutations are durable
                         before they are acknowledged, and sessions are
                         replayed from the journal at boot
  --no-fsync             journal without fsync (faster, crash-unsafe)
  --max-inflight N       concurrent heavy requests          (default 8)
  --max-pending N        admission queue depth beyond that  (default 32)
  --request-deadline S   per-request deadline ceiling, seconds
                         (0 = none; clients may tighten via deadline_ms)
  --idle-timeout S       reap connections idle this long    (default 300)
"""

_BENCH_USAGE = """\
usage: python -m repro.harness bench-serve [--out PATH]

Writes the serve latency/throughput payload (default BENCH_serve.json),
including the journaling-overhead section the serve-journal bench gate
reads.  Set REPRO_BENCH_SMOKE=1 for the shrunk CI variant.
"""

_SOAK_USAGE = """\
usage: python -m repro.harness serve-soak [options]

  --seed N           soak seed: fault schedule, workload, and retry
                     jitter all derive from it               (default 0)
  --clients N        concurrent client threads               (default 4)
  --rounds N         query rounds per client                 (default 24)
  --kill-round N     SIGKILL + respawn the server when a client reaches
                     this round (0 = never)                  (default 12)

Drives a client fleet through a seeded TCP chaos proxy (latency, partial
writes, mid-frame disconnects, byte corruption) at a supervised,
journaled server.  Every successful answer is cross-checked against an
in-process oracle System; after the soak the recovered server must be
bit-identical to the oracle.  Exit 1 on any wrong answer, unstructured
error, or recovery divergence.
"""


def _parse(
    argv: list[str],
    opts: dict[str, str],
    usage: str,
    flags: dict[str, bool] | None = None,
) -> dict[str, list[str]] | None:
    """Tiny option parser in the harness house style; None = exit 2."""
    repeated: dict[str, list[str]] = {}
    args = list(argv)
    while args:
        arg = args.pop(0)
        if arg in ("-h", "--help"):
            print(usage)
            return None
        if flags is not None and arg in flags:
            flags[arg] = True
        elif arg in opts or arg == "--preload":
            if not args:
                print(f"{arg} needs a value\n{usage}")
                return None
            value = args.pop(0)
            if arg == "--preload":
                repeated.setdefault(arg, []).append(value)
            else:
                opts[arg] = value
        else:
            print(f"unknown option {arg!r}\n{usage}")
            return None
    return repeated


def serve_main(argv: list[str]) -> int:
    """``python -m repro.harness serve``: run the query service."""
    from repro.runtime.cache import RunCache
    from repro.serve.journal import ServeJournal
    from repro.serve.server import ServerLimits, serve_forever
    from repro.serve.state import ServeState

    opts = {
        "--host": "127.0.0.1",
        "--port": "7399",
        "--cache": "",
        "--journal-dir": "",
        "--max-inflight": "8",
        "--max-pending": "32",
        "--request-deadline": "0",
        "--idle-timeout": "300",
    }
    flags = {"--no-fsync": False}
    repeated = _parse(argv, opts, _SERVE_USAGE, flags)
    if repeated is None:
        return 2
    cache = RunCache(opts["--cache"]) if opts["--cache"] else None
    journal = None
    if opts["--journal-dir"]:
        journal = ServeJournal(opts["--journal-dir"], fsync=not flags["--no-fsync"])
    state = ServeState(cache, journal=journal)
    if journal is not None:
        report = state.recover()
        if report.recovered or report.skipped:
            print(f"journal replay: {report.summary()}", flush=True)
            for name, status in report.recovered:
                session = state.sessions[name]
                print(
                    f"  recovered {name!r}: {len(session.system.runs)} runs, "
                    f"generation {session.generation} ({status})",
                    flush=True,
                )
            for dirname, reason in report.skipped:
                print(f"  unrecoverable {dirname}: {reason}", flush=True)
    for digest in repeated.get("--preload", []):
        state.load_digest(digest, digest)
        print(f"preloaded {digest} ({len(state.sessions[digest].system.runs)} runs)")
    deadline = float(opts["--request-deadline"])
    limits = ServerLimits(
        max_inflight=int(opts["--max-inflight"]),
        max_pending=int(opts["--max-pending"]),
        request_deadline=deadline if deadline > 0 else None,
        idle_timeout=float(opts["--idle-timeout"]),
    )
    try:
        asyncio.run(
            serve_forever(
                state,
                host=opts["--host"],
                port=int(opts["--port"]),
                limits=limits,
            )
        )
    except KeyboardInterrupt:
        print("\nrepro.serve stopped")
    return 0


def bench_serve_main(argv: list[str]) -> int:
    """``python -m repro.harness bench-serve``: write BENCH_serve.json."""
    from repro.serve.bench import run_serve_bench

    opts = {"--out": "BENCH_serve.json"}
    if _parse(argv, opts, _BENCH_USAGE) is None:
        return 2
    smoke = bool(os.environ.get("REPRO_BENCH_SMOKE"))
    payload = run_serve_bench(smoke=smoke)
    for key, entry in payload["results"].items():
        print(
            f"serve {key}: p50 {entry['p50_ms']:.2f} ms, "
            f"p95 {entry['p95_ms']:.2f} ms, {entry['qps']:,.0f} q/s"
        )
    ingest = payload["ingest"]
    print(
        f"serve ingest: p50 {ingest['p50_ms']:.2f} ms, "
        f"p95 {ingest['p95_ms']:.2f} ms per {ingest['runs_per_batch']}-run batch"
    )
    journal = payload["journal"]
    print(
        f"journal overhead: query p50 {journal['query_overhead']:.3f}x, "
        f"ingest p50 {journal['ingest_overhead']:.3f}x (fsync on)"
    )
    print(f"calibration: {payload['calibration']['direct_qps']:,.0f} q/s in-process")
    with open(opts["--out"], "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    print(f"wrote {opts['--out']}")
    return 0


def serve_smoke_main(argv: list[str]) -> int:
    """``python -m repro.harness serve-smoke``: the CI end-to-end check."""
    import random
    import tempfile
    from pathlib import Path

    from repro.core.protocols import NUDCProcess
    from repro.explore import ExploreSpec, explore
    from repro.knowledge import Crashed, GroupChecker, Knows, ModelChecker
    from repro.model.context import make_process_ids
    from repro.model.run import Point
    from repro.model.synthetic import synthetic_run, synthetic_system
    from repro.model.system import System
    from repro.runtime.cache import RunCache
    from repro.serve.client import (
        ServeClient,
        ck_query,
        e_query,
        knows_query,
    )
    from repro.serve.server import EpistemicServer
    from repro.serve.state import ServeState
    from repro.sim.process import uniform_protocol
    from repro.workloads.generators import single_action

    if argv:
        print("usage: python -m repro.harness serve-smoke   (no options)")
        return 0 if argv[0] in ("-h", "--help") else 2

    checks: list[tuple[str, bool]] = []

    with tempfile.TemporaryDirectory(prefix="repro-serve-smoke-") as tmp:
        cache_dir = Path(tmp) / "cache"

        # A real exploration entry for the 'load' path.
        spec = ExploreSpec(
            processes=make_process_ids(3),
            protocol=uniform_protocol(NUDCProcess),
            horizon=3,
            max_failures=1,
            crash_ticks=(1,),
            workload=single_action("p1", tick=1),
        )
        report = explore(spec, cache=RunCache(cache_dir))
        digest = spec.digest()
        assert digest is not None
        checks.append(
            ("exploration cached for load", len(report.runs) > 0)
        )

        # And a deliberately corrupt one for graceful degradation.
        (cache_dir / "explore-deadbeef.json").write_text(
            "{not json", encoding="utf-8"
        )

        state = ServeState(RunCache(cache_dir))
        server = EpistemicServer(state)
        bound: dict[str, Any] = {}
        started = threading.Event()

        def _run() -> None:
            loop = asyncio.new_event_loop()
            try:
                asyncio.set_event_loop(loop)
                bound["addr"] = loop.run_until_complete(server.start())
                started.set()
                loop.run_until_complete(server.run())
            finally:
                loop.close()

        thread = threading.Thread(target=_run, daemon=True)
        thread.start()
        started.wait(timeout=30)
        host, port = bound["addr"]

        with ServeClient.connect(host, port) as client:
            checks.append(("server answers ping", client.ping()))
            info = client.info()
            checks.append(
                ("cache digest discoverable", digest in info["cache_digests"])
            )

            loaded = client.load("explored", digest)
            checks.append(
                (
                    "loaded system is complete by construction",
                    loaded["complete"] is True and loaded["runs"] == len(report.runs),
                )
            )

            group = list(loaded["processes"])
            mixed = client.query_response(
                "explored",
                [
                    knows_query(group[0], Crashed(group[1]), 0, 2),
                    e_query(group, 2, Crashed(group[1]), 0, 2),
                    ck_query(group, Crashed(group[1]), 0, 2),
                ],
            )
            checks.append(
                (
                    "mixed Knows/E^k/C_G batch all answered",
                    all(r["ok"] for r in mixed["results"]),
                )
            )
            checks.append(
                ("complete flag rides the envelope", mixed["complete"] is True)
            )

            # A sampled inline system must surface complete: false.
            sampled = synthetic_system(3, 8, seed=11, duration=5)
            client.create("sampled", sampled.runs, complete=False)
            pre = client.query_response(
                "sampled", [knows_query("p1", Crashed("p2"), 0, 3)]
            )
            checks.append(
                (
                    "sampled system reports complete: false",
                    pre["complete"] is False and pre["results"][0]["ok"],
                )
            )

            # Online ingest, then differential vs a from-scratch rebuild.
            rng = random.Random(23)
            extra = [
                synthetic_run(sampled.processes, rng, duration=5)
                for _ in range(5)
            ]
            ingested = client.ingest("sampled", extra)
            checks.append(
                (
                    "ingest bumps the generation",
                    ingested["generation"] == 1 and ingested["added"] > 0,
                )
            )
            seen = set(sampled.runs)
            fresh = []
            for r in extra:
                if r not in seen:
                    seen.add(r)
                    fresh.append(r)
            with warnings.catch_warnings():
                warnings.simplefilter("ignore")
                rebuilt = System(sampled.runs + tuple(fresh))
                checker = ModelChecker(rebuilt)
                agree = True
                for i, run in enumerate(rebuilt.runs):
                    for m in range(0, run.duration + 1, 2):
                        for p in rebuilt.processes:
                            want = checker.holds(
                                Knows(p, Crashed("p2")), Point(run, m)
                            )
                            got = client.query(
                                "sampled",
                                [knows_query(p, Crashed("p2"), i, m)],
                            )[0]["result"]
                            agree = agree and (want == got)
                grp = GroupChecker(checker)
                want_ck = sorted(
                    grp.common_knowledge_points(
                        list(rebuilt.processes), Crashed("p2")
                    )
                )
                got_ck = [
                    tuple(p)
                    for p in client.query(
                        "sampled",
                        [
                            {
                                "kind": "ck_points",
                                "group": list(rebuilt.processes),
                                "formula": {"op": "crashed", "process": "p2"},
                            }
                        ],
                    )[0]["result"]
                ]
            checks.append(
                ("post-ingest Knows answers match a fresh rebuild", agree)
            )
            checks.append(
                ("post-ingest C_G point set matches a fresh rebuild", want_ck == got_ck)
            )

            corrupt = client.request_raw(
                {"op": "load", "system": "bad", "digest": "deadbeef"}
            )
            checks.append(
                (
                    "corrupt cache entry degrades to corrupt-entry",
                    corrupt.get("ok") is False
                    and corrupt.get("error") == "corrupt-entry",
                )
            )

            client.shutdown()
        thread.join(timeout=30)
        checks.append(("clean shutdown", not thread.is_alive()))

    ok = True
    for label, passed in checks:
        print(f"    [{'ok' if passed else 'FAIL'}] {label}")
        ok = ok and passed
    print("serve smoke " + ("passed" if ok else "FAILED"))
    return 0 if ok else 1


def _free_port() -> int:
    """A currently-free TCP port (bind-and-release)."""
    import socket

    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        port: int = sock.getsockname()[1]
    return port


class _SupervisedServer:
    """A serve subprocess the soak can SIGKILL and respawn.

    The journal directory and port survive respawns, so the recovered
    process replays the same sessions at the same address.
    """

    def __init__(self, port: int, journal_dir: str) -> None:
        self.port = port
        self.journal_dir = journal_dir
        self.proc: Any = None
        self.boots = 0
        self.log: list[str] = []

    def start(self, timeout: float = 60.0) -> None:
        import subprocess
        import sys
        from pathlib import Path

        import repro

        src_root = str(Path(repro.__file__).resolve().parent.parent)
        env = dict(os.environ)
        env["PYTHONPATH"] = src_root + os.pathsep + env.get("PYTHONPATH", "")
        self.proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.harness",
                "serve",
                "--host",
                "127.0.0.1",
                "--port",
                str(self.port),
                "--journal-dir",
                self.journal_dir,
                "--max-inflight",
                "4",
                "--max-pending",
                "8",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            env=env,
            text=True,
        )
        ready = threading.Event()
        lines: list[str] = []
        self.log = lines  # per-boot log; replaced on every (re)spawn

        def _pump(proc: Any) -> None:
            for line in proc.stdout:
                lines.append(line.rstrip())
                if "listening on" in line:
                    ready.set()
            ready.set()  # EOF: unblock the waiter on a failed boot

        threading.Thread(target=_pump, args=(self.proc,), daemon=True).start()
        ready.wait(timeout)
        if self.proc.poll() is not None or not any(
            "listening on" in line for line in lines
        ):
            raise RuntimeError(
                "soak server failed to boot:\n" + "\n".join(lines[-12:])
            )
        self.boots += 1

    def kill(self) -> None:
        """SIGKILL: no drain, no journal flush -- the crash under test."""
        self.proc.kill()
        self.proc.wait()

    def stop(self) -> None:
        if self.proc is not None and self.proc.poll() is None:
            self.proc.terminate()
            try:
                self.proc.wait(timeout=10)
            except Exception:
                self.proc.kill()
                self.proc.wait()


class _ProxyThread:
    """A ChaosProxy on its own event-loop thread."""

    def __init__(self, proxy: Any) -> None:
        self.proxy = proxy
        self.addr: tuple[str, int] | None = None
        self._loop: Any = None
        self._thread: threading.Thread | None = None

    def start(self) -> tuple[str, int]:
        started = threading.Event()

        def _run() -> None:
            loop = asyncio.new_event_loop()
            self._loop = loop
            asyncio.set_event_loop(loop)
            self.addr = loop.run_until_complete(self.proxy.start())
            started.set()
            loop.run_forever()
            loop.close()

        self._thread = threading.Thread(target=_run, daemon=True)
        self._thread.start()
        if not started.wait(timeout=10) or self.addr is None:
            raise RuntimeError("chaos proxy failed to start")
        return self.addr

    def stop(self) -> None:
        loop = self._loop
        if loop is None:
            return
        try:
            asyncio.run_coroutine_threadsafe(self.proxy.stop(), loop).result(10)
        finally:
            loop.call_soon_threadsafe(loop.stop)
            if self._thread is not None:
                self._thread.join(timeout=10)


def serve_soak_main(argv: list[str]) -> int:
    """``python -m repro.harness serve-soak``: the chaos soak harness."""
    import random
    import tempfile
    import time

    from repro.faults.proxy import ChaosProxy, WireFaultPlan
    from repro.knowledge import Crashed
    from repro.model.synthetic import synthetic_run, synthetic_system
    from repro.model.system import System
    from repro.runtime import RetryPolicy
    from repro.serve.client import (
        ServeClient,
        ServeClientError,
        ck_query,
        e_query,
        holds_query,
        knows_query,
        runs_to_arena_payload,
    )
    from repro.serve.state import SystemSession

    opts = {
        "--seed": "0",
        "--clients": "4",
        "--rounds": "24",
        "--kill-round": "12",
    }
    if _parse(argv, opts, _SOAK_USAGE) is None:
        return 2
    seed = int(opts["--seed"])
    n_clients = int(opts["--clients"])
    rounds = int(opts["--rounds"])
    kill_round = int(opts["--kill-round"])
    if n_clients < 1 or rounds < 1:
        print("--clients and --rounds must be positive")
        return 2
    if kill_round >= rounds:
        print("--kill-round must be below --rounds (or 0 to disable)")
        return 2

    # -- the seeded world: base system, ingest batches, oracle ------------
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        base = synthetic_system(3, 10, seed=seed * 1021 + 7, duration=5)
        oracle = SystemSession("soak", System(base.runs))
    processes = list(base.processes)
    batch_rng = random.Random(f"repro-serve-soak:{seed}:batches")
    ingest_every = max(2, rounds // 6)
    n_batches = max(3, rounds // ingest_every)
    payloads: list[dict[str, Any]] = []
    epochs = {0: oracle.epoch}
    for _ in range(n_batches):
        batch = tuple(
            synthetic_run(base.processes, batch_rng, duration=5) for _ in range(3)
        )
        payload = runs_to_arena_payload(batch)
        payloads.append(payload)
        result = oracle.ingest(payload)
        epochs[result["generation"]] = oracle.epoch

    plan = WireFaultPlan(
        seed=seed,
        latency_prob=0.05,
        max_latency_ms=20,
        partial_write_prob=0.10,
        max_partial_bytes=7,
        disconnect_prob=0.02,
        corrupt_prob=0.02,
    )
    retry = RetryPolicy(
        max_attempts=8,
        backoff_base=0.1,
        backoff_factor=2.0,
        max_backoff=2.0,
        jitter=0.5,
    )

    #: Top-level error codes the robustness contract permits.
    allowed_errors = {
        "overloaded",
        "deadline-exceeded",
        "bad-checksum",
        "bad-json",
        "timeout",
    }

    violations: list[str] = []
    counters: dict[str, int] = {}
    recovered_seen: set[str] = set()
    lock = threading.Lock()
    oracle_lock = threading.Lock()
    kill_gate = threading.Event()
    ingested = {"count": 0}

    def _note(kind: str, n: int = 1) -> None:
        with lock:
            counters[kind] = counters.get(kind, 0) + n

    def _violate(message: str) -> None:
        with lock:
            violations.append(message)

    def _soak_queries(rng: "random.Random") -> list[dict[str, Any]]:
        out = []
        for _ in range(rng.randint(1, 3)):
            kind = rng.choice(("knows", "holds", "e", "ck", "known_crashed"))
            formula = Crashed(rng.choice(processes))
            run_index = rng.randrange(len(base.runs))
            tick = rng.randint(0, 5)
            if kind == "knows":
                out.append(
                    knows_query(rng.choice(processes), formula, run_index, tick)
                )
            elif kind == "holds":
                out.append(holds_query(formula, run_index, tick))
            elif kind == "e":
                out.append(
                    e_query(processes, rng.randint(1, 2), formula, run_index, tick)
                )
            elif kind == "ck":
                out.append(ck_query(processes, formula, run_index, tick))
            else:
                out.append(
                    {
                        "kind": "known_crashed",
                        "process": rng.choice(processes),
                        "run": run_index,
                        "time": tick,
                    }
                )
        return out

    def _check_response(
        queries: list[dict[str, Any]], resp: dict[str, Any]
    ) -> None:
        recovered = resp.get("recovered")
        if recovered is not None:
            recovered_seen.add(str(recovered))
            if recovered != "full":
                _violate(f"unexpected partial recovery surfaced: {recovered!r}")
        generation = resp.get("generation")
        epoch = epochs.get(generation) if isinstance(generation, int) else None
        if epoch is None:
            _violate(f"answer at unknown generation {generation!r}")
            return
        results = resp.get("results")
        if not isinstance(results, list) or len(results) != len(queries):
            _violate("response results do not line up with the batch")
            return
        for query, got in zip(queries, results):
            if not got.get("ok"):
                code = got.get("error")
                if code == "deadline-exceeded":
                    _note("per_query_deadline")
                else:
                    _violate(f"unstructured per-query error {code!r} for {query}")
                continue
            with oracle_lock:
                want = oracle.run_query(query, epoch)
            if got != want:
                _violate(
                    f"WRONG ANSWER at generation {generation}: query {query} "
                    f"got {got} want {want}"
                )
            else:
                _note("answers_checked")

    def _client_worker(idx: int, proxy_addr: tuple[str, int]) -> None:
        rng = random.Random(f"repro-serve-soak:{seed}:client:{idx}")
        client: ServeClient | None = None
        next_batch = 0

        def _connect() -> ServeClient:
            return ServeClient.connect(
                proxy_addr[0],
                proxy_addr[1],
                timeout=5.0,
                retry=retry,
                checksum=True,
                retry_seed=seed * 1000 + idx,
            )

        def _ingest_pending() -> None:
            nonlocal client, next_batch
            while next_batch < len(payloads):
                request = {
                    "op": "ingest",
                    "system": "soak",
                    "arena": payloads[next_batch],
                }
                give_up = time.monotonic() + 90.0
                while True:
                    try:
                        if client is None:
                            client = _connect()
                        client.request(request)
                        with lock:
                            ingested["count"] += 1
                        _note("ingests")
                        break
                    except ServeClientError as exc:
                        if exc.code in allowed_errors:
                            _note(f"shed:{exc.code}")
                        else:
                            _violate(f"ingest failed with {exc.code!r}: {exc}")
                            break
                    except (ConnectionError, OSError):
                        _note("transport_errors")
                        client = None
                    if time.monotonic() > give_up:
                        _violate(f"ingest batch {next_batch} never landed")
                        break
                    time.sleep(0.2)
                next_batch += 1
                if next_batch < len(payloads):
                    return  # one batch per round; spread generations out

        for rnd in range(rounds):
            # Client 0 owns the ingest schedule: one batch every few
            # rounds so generations advance mid-soak (idempotent, so
            # retries across the kill window are safe).
            if idx == 0 and rnd > 0 and rnd % ingest_every == 0:
                _ingest_pending()
            queries = _soak_queries(rng)
            resp: dict[str, Any] | None = None
            for _outer in range(3):
                try:
                    if client is None:
                        client = _connect()
                    resp = client.query_response("soak", queries)
                    break
                except ServeClientError as exc:
                    if exc.code in allowed_errors:
                        _note(f"shed:{exc.code}")
                        time.sleep(0.2)
                        continue
                    _violate(f"unstructured error {exc.code!r}: {exc}")
                    break
                except (ConnectionError, OSError):
                    # Transport failure (mid-frame disconnect, respawn
                    # window): reconnect and try again.
                    _note("transport_errors")
                    client = None
                    time.sleep(0.3)
            if resp is not None:
                _check_response(queries, resp)
                _note("rounds_answered")
            else:
                _note("rounds_unanswered")
            if kill_round and rnd + 1 >= kill_round:
                kill_gate.set()
        if idx == 0:
            # Drain any batches the schedule has not placed yet, so the
            # final equality sweep covers every generation.
            while next_batch < len(payloads):
                _ingest_pending()
        if client is not None:
            client.close()

    # -- run the soak ------------------------------------------------------
    exit_code = 1
    with tempfile.TemporaryDirectory(prefix="repro-serve-soak-") as tmp:
        journal_dir = os.path.join(tmp, "journal")
        server = _SupervisedServer(_free_port(), journal_dir)
        server.start()
        proxy = _ProxyThread(ChaosProxy(plan, "127.0.0.1", server.port))
        proxy_addr = proxy.start()
        try:
            # Create the session over a clean direct connection (create
            # is the one op that is not transport-retry-safe).
            with ServeClient.connect(
                "127.0.0.1", server.port, timeout=30.0, retry=retry, checksum=True
            ) as direct:
                created = direct.request(
                    {
                        "op": "create",
                        "system": "soak",
                        "arena": runs_to_arena_payload(base.runs),
                    }
                )
                assert created["generation"] == 0

            workers = [
                threading.Thread(target=_client_worker, args=(i, proxy_addr))
                for i in range(n_clients)
            ]
            for worker in workers:
                worker.start()

            if kill_round:
                # SIGKILL only after at least two ingest generations
                # exist, so recovery has real refinement work to replay.
                deadline = time.monotonic() + 120.0
                while time.monotonic() < deadline:
                    if kill_gate.is_set() and ingested["count"] >= 2:
                        break
                    time.sleep(0.05)
                server.kill()
                _note("sigkills")
                time.sleep(0.2)
                server.start()  # journal replay happens here

            for worker in workers:
                worker.join(timeout=300)
                if worker.is_alive():
                    _violate("client worker hung past the soak timeout")

            # -- final sweep: direct, chaos-free, full bit-equality -------
            with ServeClient.connect(
                "127.0.0.1", server.port, timeout=30.0, retry=retry, checksum=True
            ) as probe:
                info = probe.info()
                session_info = info["systems"].get("soak", {})
                final_queries: list[dict[str, Any]] = []
                for run_index in range(len(base.runs)):
                    for tick in range(0, 6, 2):
                        for process in processes:
                            final_queries.append(
                                knows_query(
                                    process, Crashed(processes[0]), run_index, tick
                                )
                            )
                final = probe.query_response("soak", final_queries)
                ck_points_wire = probe.query(
                    "soak",
                    [
                        {
                            "kind": "ck_points",
                            "group": processes,
                            "formula": {"op": "crashed", "process": processes[0]},
                        }
                    ],
                )[0]
                with oracle_lock:
                    want_final = [
                        oracle.run_query(q, oracle.epoch) for q in final_queries
                    ]
                    want_ck = oracle.run_query(
                        {
                            "kind": "ck_points",
                            "group": processes,
                            "formula": {"op": "crashed", "process": processes[0]},
                        },
                        oracle.epoch,
                    )
                probe.shutdown()

            checks = [
                (
                    "session survived with the oracle's run count",
                    session_info.get("runs") == len(oracle.system.runs),
                ),
                (
                    "generation matches the oracle",
                    session_info.get("generation") == oracle.generation
                    and final.get("generation") == oracle.generation,
                ),
                (
                    "post-kill answers come from a full journal recovery",
                    kill_round == 0
                    or session_info.get("recovered") == "full",
                ),
                (
                    "final sweep bit-identical to the oracle",
                    final.get("results") == want_final,
                ),
                (
                    "final C_G point set bit-identical to the oracle",
                    ck_points_wire == want_ck,
                ),
                ("zero wrong answers / unstructured errors", not violations),
                (
                    "fleet produced checked answers",
                    counters.get("answers_checked", 0) > 0,
                ),
                (
                    "every ingest generation landed",
                    ingested["count"] >= len(payloads),
                ),
            ]
            ok = True
            for label, passed in checks:
                print(f"    [{'ok' if passed else 'FAIL'}] {label}")
                ok = ok and passed
            exit_code = 0 if ok else 1
        finally:
            proxy.stop()
            server.stop()

    for message in violations[:20]:
        print(f"    violation: {message}")
    summary = ", ".join(f"{k}={v}" for k, v in sorted(counters.items()))
    print(f"soak counters: {summary or 'none'}")
    print(f"proxy faults: {proxy.proxy.summary() or 'none'}")
    print(
        f"server boots: {server.boots} "
        f"(kill_round={kill_round}, seed={seed}, clients={n_clients}, "
        f"rounds={rounds})"
    )
    print("serve soak " + ("passed" if exit_code == 0 else "FAILED"))
    return exit_code
