"""Columnar (struct-of-arrays) encoding of systems and its kernel.

The per-object model (:mod:`repro.model`) keeps every run as a dict of
timelines and every local history as a linked list of events.  That is
the right representation for *constructing* runs, but the epistemic hot
paths -- index build, the Knows sweep, the E^k/C_G fixpoint -- and the
process-pool transfer paths only ever need the *shape* of a run set:
which event happened when, for whom.  This package flattens a batch of
runs into a handful of contiguous ``int64`` buffers (a :class:`RunArena`)
plus two small interning tables (the event alphabet and per-run meta
dicts), and rebuilds the kernel on top of it:

* :mod:`repro.columnar.arena` -- lossless ``encode_runs`` /
  ``decode_runs`` round trips between ``tuple[Run, ...]`` and the arena;
* :mod:`repro.columnar.kernel` -- :class:`ColumnarKernel`, the bulk-array
  evaluation of crash masks, ~_p classes (CSR layout), Knows and the
  C_G/E^k fixpoints, selected by ``System(..., kernel="columnar")``;
* :mod:`repro.columnar.transfer` -- ships arenas to/from pool workers
  via ``multiprocessing.shared_memory`` with a tiny pickled header;
* :mod:`repro.columnar.jsonio` -- stable JSON form of an arena for the
  v4 RunCache exploration entries.

numpy is optional: :mod:`repro.columnar.backend` falls back to
``array('q')`` buffers and Python loops with identical results (the
no-numpy CI leg pins this).  Arena buffers are immutable outside this
package -- lint rule INV004 flags writes from any other module.
"""

from repro.columnar.arena import RunArena, decode_runs, encode_runs, extend_arena
from repro.columnar.backend import numpy_or_none
from repro.columnar.kernel import ColumnarKernel, build_kernel
from repro.columnar.transfer import ShippedRuns, receive_runs, ship_runs

__all__ = [
    "RunArena",
    "encode_runs",
    "decode_runs",
    "extend_arena",
    "ColumnarKernel",
    "build_kernel",
    "ShippedRuns",
    "ship_runs",
    "receive_runs",
    "numpy_or_none",
]
