"""The run arena: a lossless struct-of-arrays encoding of a run batch.

A :class:`RunArena` flattens ``tuple[Run, ...]`` (all over one process
tuple) into four contiguous int64 buffers plus two small tables:

* ``events`` -- the interned event alphabet; timelines store indexes
  into it instead of event objects;
* ``run_durations[i]`` -- duration of run ``i``;
* ``tl_offsets`` -- CSR offsets of length ``n_runs * n + 1``: the
  timeline of run ``i``, process ``j`` occupies the half-open slice
  ``[tl_offsets[i*n+j], tl_offsets[i*n+j+1])`` of the flat arrays;
* ``tl_times`` / ``tl_events`` -- the flattened ``(time, event_id)``
  timeline entries, run-major then process-major then time order;
* ``metas[i]`` -- run ``i``'s meta dict, carried by reference.  The
  arena itself never interprets metas; the transfer layer pickles them
  and the cache layer applies the JSON meta contract.

The encoding is exact: ``decode_runs(encode_runs(runs)) == runs`` with
equal hashes, timelines, durations, and metas.  Times past a run's
duration (events no cut ever sees) round-trip too -- the *kernel*
clamps, the arena does not.

Arena buffers are immutable once built: numpy buffers are flagged
read-only, and lint rule INV004 flags writes to them from any module
outside ``repro.columnar``.
"""

from __future__ import annotations

from itertools import accumulate
from typing import Any, Iterable, Sequence

from repro.columnar.backend import (
    IntBuffer,
    buffer_nbytes,
    buffer_tolist,
    freeze_buffer,
    make_buffer,
    numpy_or_none,
)
from repro.model.events import Event, ProcessId
from repro.model.run import Run

#: The names of the int64 buffers, in serialization order.
BUFFER_FIELDS = ("run_durations", "tl_offsets", "tl_times", "tl_events")


class RunArena:
    """Struct-of-arrays form of a run batch over one process tuple."""

    __slots__ = (
        "processes",
        "events",
        "n_runs",
        "run_durations",
        "tl_offsets",
        "tl_times",
        "tl_events",
        "metas",
        "_column_lists",
    )

    def __init__(
        self,
        *,
        processes: tuple[ProcessId, ...],
        events: tuple[Event, ...],
        n_runs: int,
        run_durations: IntBuffer,
        tl_offsets: IntBuffer,
        tl_times: IntBuffer,
        tl_events: IntBuffer,
        metas: tuple[dict[str, Any], ...],
        column_lists: (
            tuple[list[int], list[int], list[int], list[int]] | None
        ) = None,
    ) -> None:
        self.processes = processes
        self.events = events
        self.n_runs = n_runs
        self.run_durations = freeze_buffer(run_durations)
        self.tl_offsets = freeze_buffer(tl_offsets)
        self.tl_times = freeze_buffer(tl_times)
        self.tl_events = freeze_buffer(tl_events)
        self.metas = metas
        # The plain-list originals of the buffers (BUFFER_FIELDS order),
        # kept when the arena was built in-process: the kernel's trie
        # walk iterates Python ints either way, and round-tripping
        # through the frozen buffers would only add conversion cost.
        self._column_lists = column_lists

    def columns_as_lists(
        self,
    ) -> tuple[list[int], list[int], list[int], list[int]]:
        """The buffers as plain lists, in ``BUFFER_FIELDS`` order."""
        cols = self._column_lists
        if cols is None:
            cols = tuple(  # type: ignore[assignment]
                buffer_tolist(getattr(self, name)) for name in BUFFER_FIELDS
            )
            self._column_lists = cols
        return cols  # type: ignore[return-value]

    @property
    def nbytes(self) -> int:
        """Total byte size of the int64 buffers (tables excluded)."""
        return sum(buffer_nbytes(getattr(self, f)) for f in BUFFER_FIELDS)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RunArena({self.n_runs} runs, n={len(self.processes)}, "
            f"|alphabet|={len(self.events)}, {self.nbytes} buffer bytes)"
        )


def encode_runs(
    runs: Iterable[Run], *, processes: Sequence[ProcessId] | None = None
) -> RunArena:
    """Flatten ``runs`` into a :class:`RunArena` (lossless).

    All runs must share one process tuple; for an empty batch the tuple
    must be supplied explicitly.
    """
    batch = tuple(runs)
    if processes is None:
        if not batch:
            raise ValueError("cannot infer the process tuple of an empty batch")
        procs = batch[0].processes
    else:
        procs = tuple(processes)
    for run in batch:
        if run.processes != procs:
            raise ValueError("all runs in an arena must share a process set")

    # Each run caches its own flattened columns (Run.timeline_columns,
    # warm after the first encode, like Run._prefixes).  Batching then
    # only re-hashes each run's *alphabet* -- a handful of distinct
    # events -- and remaps the occurrence column by C-level list
    # indexing; ids land in first-occurrence order, so the
    # insertion-ordered keys of ``event_ids`` ARE the shared alphabet.
    event_ids: dict[Event, int] = {}
    durations: list[int] = []
    lengths: list[int] = []
    times: list[int] = []
    eids: list[int] = []
    intern = event_ids.setdefault
    times_extend = times.extend
    eids_extend = eids.extend
    lengths_extend = lengths.extend
    for run in batch:
        durations.append(run.duration)
        alphabet_r, times_r, eids_r, lengths_r = run.timeline_columns()
        remap = [intern(e, len(event_ids)) for e in alphabet_r]
        times_extend(times_r)
        eids_extend([remap[x] for x in eids_r])
        lengths_extend(lengths_r)
    offsets: list[int] = [0, *accumulate(lengths)]

    np = numpy_or_none()
    return RunArena(
        processes=procs,
        events=tuple(event_ids),
        n_runs=len(batch),
        run_durations=make_buffer(durations, np),
        tl_offsets=make_buffer(offsets, np),
        tl_times=make_buffer(times, np),
        tl_events=make_buffer(eids, np),
        metas=tuple(run.meta for run in batch),
        column_lists=(durations, offsets, times, eids),
    )


def extend_arena(arena: RunArena, runs: Iterable[Run]) -> RunArena:
    """Append ``runs`` to an arena, reusing its interned alphabet.

    The online-ingestion primitive: returns a new arena whose first
    ``arena.n_runs`` runs are encoded exactly as in the input and whose
    alphabet extends the input's in first-occurrence order -- column for
    column what ``encode_runs`` over the concatenated batch would
    produce, without re-hashing a single event of the existing runs.
    The input arena (and its cached column lists) is never mutated; an
    empty batch returns the input arena itself.
    """
    batch = tuple(runs)
    if not batch:
        return arena
    procs = arena.processes
    for run in batch:
        if run.processes != procs:
            raise ValueError("all runs in an arena must share a process set")

    durs0, offs0, times0, eids0 = arena.columns_as_lists()
    durations = list(durs0)
    offsets = list(offs0)
    times = list(times0)
    eids = list(eids0)
    event_ids: dict[Event, int] = {e: i for i, e in enumerate(arena.events)}
    intern = event_ids.setdefault
    lengths: list[int] = []
    for run in batch:
        durations.append(run.duration)
        alphabet_r, times_r, eids_r, lengths_r = run.timeline_columns()
        remap = [intern(e, len(event_ids)) for e in alphabet_r]
        times.extend(times_r)
        eids.extend([remap[x] for x in eids_r])
        lengths.extend(lengths_r)
    acc = offsets[-1]
    for length in lengths:
        acc += length
        offsets.append(acc)

    np = numpy_or_none()
    return RunArena(
        processes=procs,
        events=tuple(event_ids),
        n_runs=arena.n_runs + len(batch),
        run_durations=make_buffer(durations, np),
        tl_offsets=make_buffer(offsets, np),
        tl_times=make_buffer(times, np),
        tl_events=make_buffer(eids, np),
        metas=arena.metas + tuple(run.meta for run in batch),
        column_lists=(durations, offsets, times, eids),
    )


def decode_runs(arena: RunArena) -> tuple[Run, ...]:
    """Rebuild the original run batch from an arena."""
    procs = arena.processes
    n = len(procs)
    events = arena.events
    durations, offsets, times, eids = arena.columns_as_lists()
    out: list[Run] = []
    for i in range(arena.n_runs):
        timelines: dict[ProcessId, list[tuple[int, Event]]] = {}
        row = i * n
        for j, p in enumerate(procs):
            start, stop = offsets[row + j], offsets[row + j + 1]
            timelines[p] = [(times[k], events[eids[k]]) for k in range(start, stop)]
        out.append(Run(procs, timelines, durations[i], meta=dict(arena.metas[i])))
    return tuple(out)
