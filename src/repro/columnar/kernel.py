"""The columnar epistemic kernel: bulk-array Knows / E^k / C_G.

Where the class kernel (:mod:`repro.model.system`) buckets points into
:class:`~repro.model.system.EquivClass` objects one dict probe at a
time, this kernel derives the same structure as flat arrays over the
global point numbering (point ``(runs[i], m)`` has id ``base[i] + m``):

* ``crash rows``  -- one int crash bitmask per point (bit j = process j
  crashed), taken verbatim from ``Run.crash_masks``;
* ``history ids`` -- each point's local history hash-consed to a trie
  node id; structural History equality == node id equality, so the
  per-process ~_p classes are exactly the distinct node ids;
* ``class tables`` -- per process: a dense ``point -> class`` row
  (classes numbered globally across processes, first-occurrence order
  within each process, matching ``System.classes``) and a CSR layout
  (``class_points_csr`` / ``class_offsets_csr`` / ``class_sizes``) of
  the members of every class, in ascending point-id order;
* ``known masks`` -- per class, the AND of its members' crash rows
  (= {q : K_p crash(q)}), computed in one ``bitwise_and.reduceat``.

One E_G step is then five array operations *total* (gather members,
segment-sum, compare to sizes, gather per point, AND across the group)
instead of a Python loop over classes, and the C_G greatest fixpoint
iterates that step on a boolean point vector.  Without numpy the same
sweeps run over Python-int bitsets (the class kernel's representation)
-- identical results.

Point sets cross the kernel boundary as an opaque ``PointSet`` (numpy
bool vector or int bitset); callers use :meth:`ColumnarKernel.full_set`,
``intersect``, ``sets_equal`` and ``iter_point_ids`` rather than
touching the representation.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import TYPE_CHECKING, Any, Sequence

from repro.columnar.arena import RunArena, encode_runs, extend_arena
from repro.columnar.backend import numpy_or_none
from repro.knowledge.formulas import (
    And,
    Crashed,
    Formula,
    Implies,
    Knows,
    Not,
    Or,
    _Const,
)
from repro.model.events import ProcessId
from repro.model.history import History
from repro.model.run import Point

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.knowledge.semantics import ModelChecker
    from repro.model.system import System

#: Opaque point-set representation: numpy bool[P] or a Python int bitset.
PointSet = Any

#: Crash-mask rows use one int64 lane per point, so vectorized mask work
#: needs the process count to fit in the non-sign bits.
_MASK_LANE_BITS = 62


def build_kernel(system: "System") -> "ColumnarKernel":
    """Encode ``system.runs`` and derive the columnar index."""
    return ColumnarKernel(system)


class ColumnarKernel:
    """Flat-array ~_p index over one :class:`~repro.model.system.System`."""

    def __init__(self, system: "System") -> None:
        self.system = system
        self.np = numpy_or_none()
        self.arena: RunArena = encode_runs(system.runs, processes=system.processes)
        self.n = len(system.processes)
        self.point_total = system.point_count
        # Per-point crash bitmask rows (Python ints; mirrored into an
        # int64 vector when numpy is active and the masks fit a lane).
        crash_rows: list[int] = []
        for run in system.runs:
            crash_rows.extend(run.crash_masks())
        self.crash_rows: list[int] = crash_rows
        np = self.np
        self.crash_mask_rows = (
            np.asarray(crash_rows, dtype=np.int64)
            if np is not None and self.n <= _MASK_LANE_BITS
            else None
        )
        self._build_class_tables()
        self._init_lazy_caches()
        st = system.stats
        st.arena_builds += 1
        st.arena_classes += self.total_classes
        st.arena_bytes += self.arena.nbytes

    @classmethod
    def refined(cls, base: "ColumnarKernel", system: "System") -> "ColumnarKernel":
        """Extend ``base``'s index to ``system`` by incremental class refinement.

        ``system.runs`` must start with ``base.system.runs``; the suffix
        is the freshly ingested batch.  The appended runs are encoded
        into an extended arena (:func:`extend_arena`), walked through
        the trie, and the per-process class tables are re-derived from
        the extended segments -- the shared-prefix runs are never
        re-encoded, their events never re-hashed, their histories never
        re-walked.

        Bit-identity contract: the trie assigns one node per distinct
        history regardless of insertion order, and class ids are
        assigned in per-process first-occurrence order over the run
        sequence -- the same order a from-scratch ``build_kernel(system)``
        uses -- so every derived table (point->class rows, CSR members,
        sizes, known masks) and therefore every query answer is
        bit-identical to a full rebuild over the union.

        Trie sharing: when the batch introduces no new event types the
        base kernel's trie dict is extended in place -- the extra nodes
        are invisible to the base kernel, whose class tables simply do
        not mention them.  When the alphabet grows, the key stride
        (``node * stride + event_id``) changes, so the trie is re-keyed
        into a fresh dict (node ids preserved) and the base kernel's
        dict is left untouched.
        """
        n_old = len(base.system.runs)
        runs = system.runs
        if runs[:n_old] != base.system.runs:
            raise ValueError("refined(): system.runs must extend base.system.runs")
        if system.processes != base.system.processes:
            raise ValueError("refined(): process tuples differ")
        added = runs[n_old:]
        self = cls.__new__(cls)
        self.system = system
        self.np = numpy_or_none()
        self.arena = extend_arena(base.arena, added)
        self.n = base.n
        self.point_total = system.point_count
        crash_rows = list(base.crash_rows)
        for run in added:
            crash_rows.extend(run.crash_masks())
        self.crash_rows = crash_rows
        np = self.np
        self.crash_mask_rows = (
            np.asarray(crash_rows, dtype=np.int64)
            if np is not None and self.n <= _MASK_LANE_BITS
            else None
        )
        old_stride = base._trie_stride
        new_stride = len(self.arena.events) + 1
        if new_stride == old_stride:
            self._trie = base._trie
        else:
            self._trie = {
                (key // old_stride) * new_stride + key % old_stride: node
                for key, node in base._trie.items()
            }
        self._trie_stride = new_stride
        self._event_id_table = None
        # Copy-on-extend the per-process segment state, then walk only
        # the appended runs; class numbering continues where the base
        # kernel's first-occurrence order left off.
        self._seg_nodes = [list(seg) for seg in base._seg_nodes]
        self._seg_counts = [list(seg) for seg in base._seg_counts]
        self._node_to_cid = [dict(table) for table in base._node_to_cid]
        self._seg_cids = [list(seg) for seg in base._seg_cids]
        new_nodes, new_counts = self._history_rows(first_run=base.arena.n_runs)
        for j in range(self.n):
            self._seg_nodes[j].extend(new_nodes[j])
            self._seg_counts[j].extend(new_counts[j])
            table = self._node_to_cid[j]
            setdefault = table.setdefault
            self._seg_cids[j].extend(
                setdefault(nd, len(table)) for nd in new_nodes[j]
            )
        self._derive_tables()
        self._init_lazy_caches()
        st = system.stats
        st.arena_refinements += 1
        st.arena_classes += self.total_classes
        st.arena_bytes += self.arena.nbytes
        return self

    def _init_lazy_caches(self) -> None:
        # Lazy per-class caches serving the System-level API.
        self._known_masks_cache: list[int] | None = None
        self._points_cache: dict[int, list[Point]] = {}
        self._known_set_cache: dict[int, frozenset[ProcessId]] = {}
        self._count_cache: dict[tuple[int, int], int] = {}
        self._class_bits_int: list[int] | None = None

    # -- index construction --------------------------------------------------

    def _history_rows(
        self, first_run: int = 0
    ) -> tuple[list[list[int]], list[list[int]]]:
        """Hash-cons every point's local history into trie node ids.

        Returns per-process ``(nodes, counts)`` run-length segments: for
        process ``j``, repeating ``nodes[j][k]`` ``counts[j][k]`` times
        yields the node id of each point in point-id order.  Events past
        a run's duration never enter any cut, so the walk clamps there.

        The walk runs entirely over the arena's int columns -- event
        identity was already resolved to alphabet ids by ``encode_runs``,
        so no event object is hashed again here.

        ``first_run`` restricts the walk to runs from that index on (the
        incremental-refinement path); node ids for fresh histories
        continue from ``len(trie) + 1``, which is always the next free
        id because every insertion adds exactly one trie entry.
        """
        arena = self.arena
        n = self.n
        durs, offs, times, eids = arena.columns_as_lists()
        # The trie is one flat int-keyed dict (node * stride + event id
        # -> child node): int keys hash trivially and no per-node child
        # dict is ever allocated.
        stride = self._trie_stride
        trie = self._trie
        trie_get = trie.get
        next_node = len(trie) + 1
        hits = misses = 0
        seg_nodes: list[list[int]] = []
        seg_counts: list[list[int]] = []
        n_runs = arena.n_runs
        for j in range(n):
            nodes: list[int] = []
            counts: list[int] = []
            nodes_append = nodes.append
            counts_append = counts.append
            for i in range(first_run, n_runs):
                dur = durs[i]
                node = 0
                prev = 0
                row = i * n + j
                start, stop = offs[row], offs[row + 1]
                # Clamp to the duration up front (strictly increasing
                # times): the walk below then needs no per-event check.
                cut = bisect_right(times, dur, start, stop)
                for t, eid in zip(times[start:cut], eids[start:cut]):
                    if t > prev:
                        nodes_append(node)
                        counts_append(t - prev)
                        prev = t
                    key = node * stride + eid
                    nxt = trie_get(key)
                    if nxt is None:
                        nxt = trie[key] = next_node
                        next_node += 1
                        misses += 1
                    else:
                        hits += 1
                    node = nxt
                nodes_append(node)
                counts_append(dur + 1 - prev)
            seg_nodes.append(nodes)
            seg_counts.append(counts)
        # Hash-cons traffic is canonicalization traffic: surface it on
        # the same counters the HistoryInterner feeds.
        interner = self.system.interner
        interner.hits += hits
        interner.misses += misses
        return seg_nodes, seg_counts

    def _build_class_tables(self) -> None:
        self._trie: dict[int, int] = {}
        self._trie_stride = len(self.arena.events) + 1
        # event object -> alphabet id, built lazily: only foreign-history
        # walks need it, and hashing the alphabet is not free.
        self._event_id_table: dict[Any, int] | None = None
        seg_nodes, seg_counts = self._history_rows()
        self._seg_nodes = seg_nodes
        self._seg_counts = seg_counts
        # Classes are numbered in first-occurrence order (the order
        # System.classes uses).  The per-process node -> local class id
        # tables persist past the build so :meth:`refined` can continue
        # the numbering exactly where this build left off.
        self._node_to_cid: list[dict[int, int]] = []
        self._seg_cids: list[list[int]] = []
        for j in range(self.n):
            table: dict[int, int] = {}
            setdefault = table.setdefault
            self._seg_cids.append(
                [setdefault(nd, len(table)) for nd in seg_nodes[j]]
            )
            self._node_to_cid.append(table)
        self._derive_tables()

    def _derive_tables(self) -> None:
        """Expand the segment state into the dense and CSR class tables.

        Pure function of ``_seg_cids`` / ``_seg_counts`` /
        ``_node_to_cid``: the fresh build and the incremental refinement
        both land here, which is what makes refined tables bit-identical
        to rebuilt ones.  Segments are few, so the numbering runs over
        segments in Python and only the per-point expansion is
        vectorized.
        """
        np = self.np
        P = self.point_total
        self.class_base: list[int] = []
        #: per process: trie node id -> global class id (built on demand:
        #: only foreign-history walks consult it)
        self._node_class: list[dict[int, int] | None] = [None] * self.n
        total = 0
        if np is not None:
            pc_rows = np.empty((self.n, P), dtype=np.int64)
            member_parts = []
            size_parts = []
            for j in range(self.n):
                cids = np.asarray(self._seg_cids[j], dtype=np.int64)
                counts = np.asarray(self._seg_counts[j], dtype=np.int64)
                n_cls = len(self._node_to_cid[j])
                local = np.repeat(cids, counts)
                pc_rows[j] = local + total
                sizes_j = np.zeros(n_cls, dtype=np.int64)
                np.add.at(sizes_j, cids, counts)
                size_parts.append(sizes_j)
                member_parts.append(np.argsort(local, kind="stable"))
                self.class_base.append(total)
                total += n_cls
            self.point_class_rows = pc_rows
            self.class_points_csr = np.concatenate(member_parts)
            sizes = np.concatenate(size_parts).astype(np.int64, copy=False)
            self.class_sizes = sizes
            offsets = np.empty(total + 1, dtype=np.int64)
            offsets[0] = 0
            np.cumsum(sizes, out=offsets[1:])
            self.class_offsets_csr = offsets
            self.total_classes = total
        else:
            pc_rows_l: list[list[int]] = []
            members_flat: list[int] = []
            sizes_l: list[int] = []
            offsets_l: list[int] = [0]
            for j in range(self.n):
                n_cls = len(self._node_to_cid[j])
                members: list[list[int]] = [[] for _ in range(n_cls)]
                local_row: list[int] = []
                pid = 0
                for cid, cnt in zip(self._seg_cids[j], self._seg_counts[j]):
                    bucket = members[cid]
                    gcid = cid + total
                    for _ in range(cnt):
                        bucket.append(pid)
                        local_row.append(gcid)
                        pid += 1
                pc_rows_l.append(local_row)
                for bucket in members:
                    members_flat.extend(bucket)
                    sizes_l.append(len(bucket))
                    offsets_l.append(len(members_flat))
                self.class_base.append(total)
                total += n_cls
            self.point_class_rows = pc_rows_l
            self.class_points_csr = members_flat
            self.class_sizes = sizes_l
            self.class_offsets_csr = offsets_l
            self.total_classes = total

    @property
    def known_masks(self) -> list[int]:
        """Per-class crash-knowledge masks, built on first query.

        The class kernel computes known sets per query, not at build;
        the columnar build matches that laziness so the index-build
        benchmark compares grouping work against grouping work.
        """
        masks = self._known_masks_cache
        if masks is None:
            np = self.np
            if (
                np is not None
                and self.crash_mask_rows is not None
                and self.total_classes
            ):
                known = np.bitwise_and.reduceat(
                    self.crash_mask_rows[self.class_points_csr],
                    self.class_offsets_csr[:-1],
                )
                masks = known.tolist()
            else:
                masks = self._known_masks_fallback(self._csr_slices_list())
            self._known_masks_cache = masks
        return masks

    def _csr_slices_list(self) -> list[tuple[int, int]]:
        offsets = self.class_offsets_csr
        if self.np is not None and not isinstance(offsets, list):
            offsets = offsets.tolist()
        return [
            (offsets[c], offsets[c + 1]) for c in range(self.total_classes)
        ]

    def _known_masks_fallback(
        self, slices: list[tuple[int, int]]
    ) -> list[int]:
        members = self.class_points_csr
        if self.np is not None and not isinstance(members, list):
            members = members.tolist()
        crash = self.crash_rows
        out: list[int] = []
        for start, stop in slices:
            acc = -1
            for k in range(start, stop):
                acc &= crash[members[k]]
            out.append(acc)
        return out

    # -- class lookup --------------------------------------------------------

    def class_of_point(self, j: int, point_id: int) -> int:
        """Global class id of an in-system point for process index ``j``."""
        row = self.point_class_rows[j]
        return int(row[point_id])

    def _node_class_for(self, j: int) -> dict[int, int]:
        """Trie node id -> global class id for process index ``j``."""
        table = self._node_class[j]
        if table is None:
            base = self.class_base[j]
            table = {
                nd: cid + base for nd, cid in self._node_to_cid[j].items()
            }
            self._node_class[j] = table
        return table

    def class_of_history(self, j: int, history: History) -> int | None:
        """Global class id of an arbitrary local history (None if foreign)."""
        node = 0
        trie = self._trie
        stride = self._trie_stride
        event_ids = self._event_id_table
        if event_ids is None:
            event_ids = {e: i for i, e in enumerate(self.arena.events)}
            self._event_id_table = event_ids
        for event in history.events:
            eid = event_ids.get(event)
            if eid is None:
                return None
            nxt = trie.get(node * stride + eid)
            if nxt is None:
                return None
            node = nxt
        return self._node_class_for(j).get(node)

    def class_id_at(self, process: ProcessId, point: Point) -> int | None:
        """The ~_process class of ``point``; foreign histories give None.

        In-system points resolve through the dense point->class row (no
        history materialization); foreign points fall back to walking
        their local history through the hash-cons trie, so a foreign
        point whose history *does* occur in the system still lands in
        the right class -- matching ``System.class_of``.
        """
        system = self.system
        j = system.process_bit(process)
        pid = system.point_id(point)
        if pid is not None:
            return self.class_of_point(j, pid)
        return self.class_of_history(j, point.history(process))

    def member_point_ids(self, cid: int) -> list[int]:
        """The point ids of class ``cid``, ascending."""
        start = self.class_offsets_csr[cid]
        stop = self.class_offsets_csr[cid + 1]
        members = self.class_points_csr[start:stop]
        if isinstance(members, list):
            return members
        return [int(x) for x in members.tolist()]

    def points_of_class(self, cid: int) -> list[Point]:
        """The member Points of class ``cid`` (cached per class)."""
        pts = self._points_cache.get(cid)
        if pts is None:
            point_at = self.system.point_at
            pts = [point_at(pid) for pid in self.member_point_ids(cid)]
            self._points_cache[cid] = pts
        return pts

    # -- per-class knowledge -------------------------------------------------

    def known_mask(self, cid: int) -> int:
        """AND of the class's crash rows: {q : K_p crash(q)} as a bitmask."""
        return self.known_masks[cid]

    def known_set(self, cid: int) -> frozenset[ProcessId]:
        known = self._known_set_cache.get(cid)
        if known is None:
            mask = self.known_masks[cid]
            procs = self.system.processes
            known = frozenset(
                p for b, p in enumerate(procs) if (mask >> b) & 1
            )
            self._known_set_cache[cid] = known
        return known

    def count_min(self, cid: int, subset_mask: int) -> int:
        """min over the class's points of popcount(crash_row & subset)."""
        key = (cid, subset_mask)
        cached = self._count_cache.get(key)
        if cached is None:
            crash = self.crash_rows
            cached = min(
                (crash[pid] & subset_mask).bit_count()
                for pid in self.member_point_ids(cid)
            )
            self._count_cache[key] = cached
        return cached

    # -- point sets ----------------------------------------------------------

    def full_set(self) -> PointSet:
        np = self.np
        if np is not None:
            return np.ones(self.point_total, dtype=bool)
        return (1 << self.point_total) - 1

    def empty_set(self) -> PointSet:
        np = self.np
        if np is not None:
            return np.zeros(self.point_total, dtype=bool)
        return 0

    def intersect(self, a: PointSet, b: PointSet) -> PointSet:
        return a & b

    def sets_equal(self, a: PointSet, b: PointSet) -> bool:
        np = self.np
        if np is not None:
            return bool(np.array_equal(a, b))
        return bool(a == b)

    def iter_point_ids(self, s: PointSet) -> list[int]:
        """The point ids of a set, ascending."""
        np = self.np
        if np is not None:
            return [int(x) for x in np.nonzero(s)[0].tolist()]
        out: list[int] = []
        bits = s
        while bits:
            low = bits & -bits
            out.append(low.bit_length() - 1)
            bits ^= low
        return out

    def _class_bits_list(self) -> list[int]:
        """Fallback representation: each class's member set as an int bitset."""
        bits = self._class_bits_int
        if bits is None:
            bits = []
            for start, stop in self._csr_slices_list():
                acc = 0
                members = self.class_points_csr
                for k in range(start, stop):
                    acc |= 1 << members[k]
                bits.append(acc)
            self._class_bits_int = bits
        return bits

    def class_in_set(self, cid: int | None, s: PointSet) -> bool:
        """Is the class wholly inside the point set?  None = vacuous True."""
        if cid is None:
            return True
        np = self.np
        if np is not None:
            start = int(self.class_offsets_csr[cid])
            stop = int(self.class_offsets_csr[cid + 1])
            return bool(s[self.class_points_csr[start:stop]].all())
        bits = self._class_bits_list()[cid]
        return bits & s == bits

    # -- the E_G step and fixpoints -------------------------------------------

    def e_step(self, members_j: Sequence[int], current: PointSet) -> PointSet:
        """One E_G application over process indexes ``members_j``.

        Keeps exactly the points whose ~_p class is wholly inside
        ``current`` for every p in the group (empty group: all points).
        """
        self.system.stats.ck_fixpoint_iterations += 1
        if not members_j:
            return self.full_set()
        np = self.np
        if np is not None:
            sel = current[self.class_points_csr]
            hits = np.add.reduceat(sel, self.class_offsets_csr[:-1])
            ok = hits == self.class_sizes
            keep = ok[self.point_class_rows[list(members_j)]]
            result: PointSet = keep.all(axis=0)
            return result
        bits_l = self._class_bits_list()
        base = self.class_base
        total = self.total_classes
        acc: int | None = None
        for j in members_j:
            start = base[j]
            stop = base[j + 1] if j + 1 < self.n else total
            keep_bits = 0
            for cid in range(start, stop):
                b = bits_l[cid]
                if b & current == b:
                    keep_bits |= b
            acc = keep_bits if acc is None else acc & keep_bits
        assert acc is not None
        return acc

    def ck_fixpoint(
        self, members_j: Sequence[int], base: PointSet
    ) -> PointSet:
        """Greatest fixpoint of X = E_G(phi and X), starting at [[phi]]."""
        current = base
        while True:
            refined = self.intersect(self.e_step(members_j, current), current)
            if self.sets_equal(refined, current):
                break
            current = refined
        return current

    # -- formula vectorization -----------------------------------------------

    def formula_set(self, checker: "ModelChecker", formula: Formula) -> PointSet:
        """The point set satisfying ``formula``.

        Crash / boolean / Knows nodes evaluate as whole-vector array
        operations; anything else falls back to the model checker's
        ``holds`` per point (memoized there), filling the set directly.
        """
        vec = self._vector_formula(formula)
        if vec is not None:
            return vec
        np = self.np
        holds = checker.holds
        if np is not None:
            out = np.empty(self.point_total, dtype=bool)
            pid = 0
            for run in self.system.runs:
                for m in range(run.duration + 1):
                    out[pid] = holds(formula, Point(run, m))
                    pid += 1
            return out
        bits = 0
        pid = 0
        for run in self.system.runs:
            for m in range(run.duration + 1):
                if holds(formula, Point(run, m)):
                    bits |= 1 << pid
                pid += 1
        return bits

    def _vector_formula(self, formula: Formula) -> PointSet | None:
        np = self.np
        if np is None:
            return None
        if isinstance(formula, _Const):
            return self.full_set() if formula.value else self.empty_set()
        if isinstance(formula, Crashed):
            if self.crash_mask_rows is None:
                return None
            try:
                bit = self.system.process_bit(formula.process)
            except KeyError:
                return None
            result: PointSet = ((self.crash_mask_rows >> bit) & 1).astype(bool)
            return result
        if isinstance(formula, Not):
            child = self._vector_formula(formula.child)
            return None if child is None else ~child
        if isinstance(formula, (And, Or)):
            parts = [self._vector_formula(part) for part in formula.parts]
            if any(part is None for part in parts):
                return None
            if not parts:
                return self.full_set() if isinstance(formula, And) else self.empty_set()
            op = np.logical_and if isinstance(formula, And) else np.logical_or
            return op.reduce(parts)
        if isinstance(formula, Implies):
            a = self._vector_formula(formula.antecedent)
            b = self._vector_formula(formula.consequent)
            if a is None or b is None:
                return None
            return ~a | b
        if isinstance(formula, Knows):
            child = self._vector_formula(formula.child)
            if child is None:
                return None
            try:
                j = self.system.process_bit(formula.process)
            except KeyError:
                return None
            sel = child[self.class_points_csr]
            hits = np.add.reduceat(sel, self.class_offsets_csr[:-1])
            ok = hits == self.class_sizes
            knows_vec: PointSet = ok[self.point_class_rows[j]]
            return knows_vec
        return None
