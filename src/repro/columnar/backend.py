"""Array backend: numpy when importable, ``array('q')`` otherwise.

Everything columnar is expressed over flat signed-64-bit integer
buffers.  With numpy present the kernel sweeps become ufunc calls
(``np.repeat``, ``np.unique``, ``np.add.reduceat`` ...); without it the
same algorithms run as Python loops over ``array('q')`` -- bit-identical
results, just slower.  The serialized byte form is always little-endian
int64 so arenas written on one machine load on any other.

Set ``REPRO_COLUMNAR_NUMPY=0`` to force the stdlib fallback even when
numpy is importable (this is how the no-numpy differential tests run on
machines that do have numpy).
"""

from __future__ import annotations

import os
import sys
from array import array
from typing import Any, Sequence

try:  # pragma: no cover - exercised via both CI legs
    import numpy as _np
except Exception:  # pragma: no cover - the no-numpy leg
    _np = None  # type: ignore[assignment]

#: Either a ``numpy.ndarray[int64]`` or an ``array('q')``.
IntBuffer = Any


def numpy_or_none() -> Any:
    """The numpy module, or None when absent or disabled via env."""
    if _np is None:
        return None
    if os.environ.get("REPRO_COLUMNAR_NUMPY", "").strip() == "0":
        return None
    return _np


def make_buffer(values: Sequence[int], np: Any) -> IntBuffer:
    """A fresh int64 buffer holding ``values`` (backend chosen by ``np``)."""
    if np is not None:
        return np.asarray(values, dtype=np.int64)
    return array("q", values)


def freeze_buffer(buf: IntBuffer) -> IntBuffer:
    """Mark a numpy buffer read-only (no-op for the stdlib fallback)."""
    if _np is not None and isinstance(buf, _np.ndarray):
        buf.flags.writeable = False
    return buf


def buffer_to_bytes(buf: IntBuffer) -> bytes:
    """Serialize a buffer as little-endian int64 bytes."""
    if _np is not None and isinstance(buf, _np.ndarray):
        out: bytes = buf.astype("<i8", copy=False).tobytes()
        return out
    if sys.byteorder == "little":
        return buf.tobytes()
    swapped = array("q", buf)
    swapped.byteswap()
    return swapped.tobytes()


def buffer_from_bytes(data: bytes, np: Any) -> IntBuffer:
    """Deserialize little-endian int64 bytes into a backend buffer."""
    if np is not None:
        return np.frombuffer(data, dtype="<i8").astype(np.int64, copy=False)
    buf = array("q")
    buf.frombytes(data)
    if sys.byteorder == "big":  # pragma: no cover - LE everywhere we run
        buf.byteswap()
    return buf


def buffer_nbytes(buf: IntBuffer) -> int:
    """Byte size of a buffer's payload."""
    if _np is not None and isinstance(buf, _np.ndarray):
        return int(buf.nbytes)
    return len(buf) * buf.itemsize


def buffer_tolist(buf: IntBuffer) -> list[int]:
    """The buffer as a list of Python ints."""
    out: list[int] = buf.tolist()
    return out
