"""Shipping run batches between pool processes via shared memory.

The pickled-object path moves the whole run graph -- every Run, History
event, Message and meta dict -- through the executor's result pipe.
This module moves the *arena* instead: the worker flattens its runs
(:func:`repro.columnar.arena.encode_runs`), writes the int64 buffers
plus the pickled event alphabet and meta dicts into one
``multiprocessing.shared_memory`` block, and returns only a
:class:`ShippedRuns` header (block name + segment table + process
tuple: a few hundred bytes) over the pipe.  The driver attaches,
copies the segments out, unlinks the block, and decodes.

Protocol (Python 3.11/3.12 semantics):

* the *worker* creates the block, copies the payload in, closes its
  mapping, and **unregisters** the block from its ``resource_tracker``
  -- ownership transfers with the header, and only the creating process
  auto-registers;
* the *driver* attaches by name, copies, closes, and ``unlink``\\ s --
  exactly once, in a ``finally`` block, so the segment never outlives
  the result even on decode errors.

When shared memory is unavailable (or creation fails) the payload
travels inline in the header -- same bytes, ordinary pickling, no
zero-copy win but also no behavior change.  ``ship_runs`` never raises
for environmental reasons.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass
from typing import Any, Sequence

from repro.columnar.arena import BUFFER_FIELDS, RunArena, decode_runs, encode_runs
from repro.columnar.backend import (
    buffer_from_bytes,
    buffer_to_bytes,
    numpy_or_none,
)
from repro.model.events import ProcessId
from repro.model.run import Run

#: Segment names beyond the int64 buffers: pickled tables.
_PICKLED_SEGMENTS = ("events", "metas")


@dataclass(frozen=True)
class ShippedRuns:
    """Picklable handle to a run batch parked in shared memory.

    ``segments`` maps each payload segment name to its ``(offset,
    length)`` in the block; ``payload`` carries the same bytes inline
    when shared memory was unavailable (then ``shm_name`` is None).
    """

    processes: tuple[ProcessId, ...]
    n_runs: int
    segments: tuple[tuple[str, int, int], ...]
    total_bytes: int
    shm_name: str | None = None
    payload: bytes | None = None


def _arena_segments(arena: RunArena) -> list[tuple[str, bytes]]:
    parts: list[tuple[str, bytes]] = [
        (name, buffer_to_bytes(getattr(arena, name))) for name in BUFFER_FIELDS
    ]
    parts.append(("events", pickle.dumps(arena.events)))
    parts.append(("metas", pickle.dumps(arena.metas)))
    return parts


def _arena_from_segments(
    shipped: ShippedRuns, blob: "bytes | memoryview"
) -> RunArena:
    np = numpy_or_none()
    table = {name: (off, length) for name, off, length in shipped.segments}

    def segment(name: str) -> bytes:
        off, length = table[name]
        return bytes(blob[off : off + length])

    buffers = {
        name: buffer_from_bytes(segment(name), np) for name in BUFFER_FIELDS
    }
    events: tuple[Any, ...] = pickle.loads(segment("events"))
    metas: tuple[dict[str, Any], ...] = pickle.loads(segment("metas"))
    return RunArena(
        processes=shipped.processes,
        events=events,
        n_runs=shipped.n_runs,
        metas=metas,
        **buffers,
    )


def ship_runs(
    runs: Sequence[Run],
    *,
    processes: Sequence[ProcessId] | None = None,
    prefer_shm: bool = True,
) -> ShippedRuns:
    """Encode ``runs`` and park the payload for another process.

    Call in the *worker*; pass the returned header through the result
    pipe; call :func:`receive_runs` exactly once in the *driver*.
    """
    arena = encode_runs(runs, processes=processes)
    parts = _arena_segments(arena)
    segments: list[tuple[str, int, int]] = []
    offset = 0
    for name, data in parts:
        segments.append((name, offset, len(data)))
        offset += len(data)
    total = offset
    if prefer_shm and total:
        try:
            from multiprocessing import resource_tracker, shared_memory

            block = shared_memory.SharedMemory(create=True, size=total)
            try:
                for (_, off, _), (_, data) in zip(segments, parts):
                    block.buf[off : off + len(data)] = data
                name = block.name
            finally:
                block.close()
            try:
                # Ownership moves with the header: the driver unlinks.
                resource_tracker.unregister(block._name, "shared_memory")  # type: ignore[attr-defined]
            except Exception:  # pragma: no cover - tracker API drift
                pass
            return ShippedRuns(
                processes=arena.processes,
                n_runs=arena.n_runs,
                segments=tuple(segments),
                total_bytes=total,
                shm_name=name,
            )
        except Exception:  # pragma: no cover - no /dev/shm, perms, ...
            pass
    return ShippedRuns(
        processes=arena.processes,
        n_runs=arena.n_runs,
        segments=tuple(segments),
        total_bytes=total,
        shm_name=None,
        payload=b"".join(data for _, data in parts),
    )


def receive_runs(shipped: ShippedRuns) -> tuple[Run, ...]:
    """Decode a shipped batch, releasing its shared-memory block.

    Safe to call exactly once per header; the block is unlinked even
    when decoding fails.
    """
    if shipped.shm_name is None:
        blob = shipped.payload if shipped.payload is not None else b""
        return decode_runs(_arena_from_segments(shipped, blob))
    from multiprocessing import shared_memory

    block = shared_memory.SharedMemory(name=shipped.shm_name, create=False)
    try:
        data = bytes(block.buf)
    finally:
        block.close()
        try:
            block.unlink()
        except FileNotFoundError:  # pragma: no cover - already reclaimed
            pass
    return decode_runs(_arena_from_segments(shipped, data))


def header_bytes(shipped: ShippedRuns) -> int:
    """Bytes this header moves through the result pipe when pickled."""
    return len(pickle.dumps(shipped, protocol=pickle.HIGHEST_PROTOCOL))
