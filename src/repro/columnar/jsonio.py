"""JSON codec for run arenas (the disk-cache representation).

A v4 exploration cache entry stores its run set as one arena instead of
a list of per-run timeline dicts: the int64 buffers travel as
zlib-compressed base64 of their little-endian bytes, the event alphabet
is encoded *once* through the model's tagged event codec, and metas go
through the same JSON meta contract as :func:`repro.model.serialize
.run_to_dict` (scalars, crash plans, traces, renamings survive; other
values drop).  Timelines repeat events heavily, so encoding each
distinct event once -- and every occurrence as a packed integer --
shrinks entries by an order of magnitude at equal fidelity.

The codec is numpy-agnostic: buffers serialize to the same bytes from
either backing representation, and load into whichever backend the
reading process has.
"""

from __future__ import annotations

import base64
import zlib
from typing import Any

from repro.columnar.arena import BUFFER_FIELDS, RunArena
from repro.columnar.backend import (
    buffer_from_bytes,
    buffer_to_bytes,
    numpy_or_none,
)
from repro.model.serialize import (
    _decode_meta,
    _encode_meta,
    decode_event,
    encode_event,
)

#: Schema tag embedded in every arena payload.
ARENA_FORMAT = "repro-arena-v1"


def arena_to_jsonable(arena: RunArena) -> dict[str, Any]:
    """Encode an arena as a JSON-safe dict (exact inverse: :func:`arena_from_jsonable`)."""
    return {
        "format": ARENA_FORMAT,
        "processes": list(arena.processes),
        "n_runs": arena.n_runs,
        "events": [encode_event(e) for e in arena.events],
        "metas": [_encode_meta(m) for m in arena.metas],
        "buffers": {
            name: base64.b64encode(
                zlib.compress(buffer_to_bytes(getattr(arena, name)))
            ).decode("ascii")
            for name in BUFFER_FIELDS
        },
    }


def arena_from_jsonable(data: dict[str, Any]) -> RunArena:
    """Decode :func:`arena_to_jsonable` output back into a RunArena."""
    if data.get("format") != ARENA_FORMAT:
        raise ValueError(f"unsupported arena format {data.get('format')!r}")
    np = numpy_or_none()
    buffers = {
        name: buffer_from_bytes(
            zlib.decompress(base64.b64decode(data["buffers"][name])), np
        )
        for name in BUFFER_FIELDS
    }
    return RunArena(
        processes=tuple(data["processes"]),
        events=tuple(decode_event(e) for e in data["events"]),
        n_runs=int(data["n_runs"]),
        metas=tuple(_decode_meta(m) for m in data["metas"]),
        **buffers,
    )
