"""Event alphabet of the formal model (Section 2.1).

Every entry in a process history is one of the event types defined here.
The paper's events are:

* ``send_p(q, msg)``   -- :class:`SendEvent`
* ``recv_p(q, msg)``   -- :class:`ReceiveEvent`
* ``do_p(alpha)``      -- :class:`DoEvent`
* ``init_p(alpha)``    -- :class:`InitEvent`
* ``crash_p``          -- :class:`CrashEvent`
* ``suspect_p(x)``     -- :class:`SuspectEvent`, carrying either a
  *standard* report ("the processes in S are faulty",
  :class:`StandardSuspicion`) or a *generalized* report ("at least k
  processes in S are faulty", :class:`GeneralizedSuspicion`, Section 4).

All events are immutable and hashable so that histories (and therefore
points) can be used as dictionary keys when building the
indistinguishability index for knowledge evaluation.  Every event class
precomputes its hash at construction (the ``_hash`` slot): events are
hashed far more often than they are created -- history interning and
arena encoding probe dicts keyed by them on every kernel build -- and
the generated dataclass ``__hash__`` would rebuild a field tuple per
call.  The cached hash mixes in the class, which keeps it consistent
with ``__eq__`` (equality already requires identical classes).

Process identifiers are plain strings (``"p1"``, ``"p2"``, ...).  Action
identifiers are also strings; the paper requires the action sets ``A_p``
to be disjoint, which callers realise by tagging actions with the
initiator's name (see :class:`repro.core.actions.ActionId`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Union

ProcessId = str
ActionId = Hashable
Payload = Hashable


@dataclass(frozen=True, slots=True)
class Message:
    """An application message.

    ``kind`` is a short protocol-level tag (e.g. ``"alpha"``, ``"ack"``)
    and ``payload`` is any hashable value.  Messages are compared by
    value: retransmissions of the same logical message are *equal*, which
    is exactly what the fairness condition R5 quantifies over ("if the
    same message is sent ... infinitely often").
    """

    kind: str
    payload: Payload = None
    _hash: int = field(init=False, repr=False, compare=False, default=0)

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "_hash", hash((Message, self.kind, self.payload))
        )

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.payload is None:
            return f"Message({self.kind!r})"
        return f"Message({self.kind!r}, {self.payload!r})"


@dataclass(frozen=True, slots=True)
class SendEvent:
    """``send_p(q, msg)``: process ``sender`` sends ``msg`` to ``receiver``."""

    sender: ProcessId
    receiver: ProcessId
    message: Message
    _hash: int = field(init=False, repr=False, compare=False, default=0)

    def __post_init__(self) -> None:
        object.__setattr__(
            self,
            "_hash",
            hash((SendEvent, self.sender, self.receiver, self.message)),
        )

    def __hash__(self) -> int:
        return self._hash

    @property
    def process(self) -> ProcessId:
        return self.sender


@dataclass(frozen=True, slots=True)
class ReceiveEvent:
    """``recv_q(p, msg)``: process ``receiver`` receives ``msg`` from ``sender``."""

    receiver: ProcessId
    sender: ProcessId
    message: Message
    _hash: int = field(init=False, repr=False, compare=False, default=0)

    def __post_init__(self) -> None:
        object.__setattr__(
            self,
            "_hash",
            hash((ReceiveEvent, self.receiver, self.sender, self.message)),
        )

    def __hash__(self) -> int:
        return self._hash

    @property
    def process(self) -> ProcessId:
        return self.receiver


@dataclass(frozen=True, slots=True)
class DoEvent:
    """``do_p(alpha)``: process ``process`` performs coordination action ``action``."""

    process: ProcessId
    action: ActionId
    _hash: int = field(init=False, repr=False, compare=False, default=0)

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "_hash", hash((DoEvent, self.process, self.action))
        )

    def __hash__(self) -> int:
        return self._hash


@dataclass(frozen=True, slots=True)
class InitEvent:
    """``init_p(alpha)``: process ``process`` initiates action ``action``.

    The paper requires that ``init_p(alpha)`` appears only in p's history
    and at most once per run; :func:`repro.model.run.validate_run`
    enforces this.
    """

    process: ProcessId
    action: ActionId
    _hash: int = field(init=False, repr=False, compare=False, default=0)

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "_hash", hash((InitEvent, self.process, self.action))
        )

    def __hash__(self) -> int:
        return self._hash


@dataclass(frozen=True, slots=True)
class CrashEvent:
    """``crash_p``: the failure of ``process``.

    By R4 this is always the last event in a history.
    """

    process: ProcessId
    _hash: int = field(init=False, repr=False, compare=False, default=0)

    def __post_init__(self) -> None:
        object.__setattr__(self, "_hash", hash((CrashEvent, self.process)))

    def __hash__(self) -> int:
        return self._hash


@dataclass(frozen=True, slots=True)
class StandardSuspicion:
    """A standard failure-detector report: "the processes in S are faulty"."""

    suspects: frozenset[ProcessId]
    _hash: int = field(init=False, repr=False, compare=False, default=0)

    def __post_init__(self) -> None:
        if not isinstance(self.suspects, frozenset):
            object.__setattr__(self, "suspects", frozenset(self.suspects))
        object.__setattr__(
            self, "_hash", hash((StandardSuspicion, self.suspects))
        )

    def __hash__(self) -> int:
        return self._hash


@dataclass(frozen=True, slots=True)
class GeneralizedSuspicion:
    """A generalized report (Section 4): "at least k processes in S are faulty".

    The paper writes this ``suspect_p(S, k)`` with ``k <= |S|``.
    """

    suspects: frozenset[ProcessId]
    count: int
    _hash: int = field(init=False, repr=False, compare=False, default=0)

    def __post_init__(self) -> None:
        if not isinstance(self.suspects, frozenset):
            object.__setattr__(self, "suspects", frozenset(self.suspects))
        if not 0 <= self.count <= len(self.suspects):
            raise ValueError(
                f"generalized suspicion requires 0 <= k <= |S|, "
                f"got k={self.count}, |S|={len(self.suspects)}"
            )
        object.__setattr__(
            self,
            "_hash",
            hash((GeneralizedSuspicion, self.suspects, self.count)),
        )

    def __hash__(self) -> int:
        return self._hash


Suspicion = Union[StandardSuspicion, GeneralizedSuspicion]


@dataclass(frozen=True, slots=True)
class SuspectEvent:
    """``suspect_p(x)``: process ``process`` gets report ``report`` from its detector.

    ``derived`` distinguishes the *simulated* detector events
    (``suspect'`` in the paper's P3/P3' constructions) from the original
    oracle's events; the two kinds coexist in transformed runs and the
    property checkers must not conflate them.
    """

    process: ProcessId
    report: Suspicion
    derived: bool = field(default=False)
    _hash: int = field(init=False, repr=False, compare=False, default=0)

    def __post_init__(self) -> None:
        object.__setattr__(
            self,
            "_hash",
            hash((SuspectEvent, self.process, self.report, self.derived)),
        )

    def __hash__(self) -> int:
        return self._hash


Event = Union[SendEvent, ReceiveEvent, DoEvent, InitEvent, CrashEvent, SuspectEvent]

#: Event types that describe externally-visible protocol activity (used by
#: the executor's quiescence detection: a tick in which only futile
#: retransmissions occur makes no "progress").
PROGRESS_EVENT_TYPES = (ReceiveEvent, DoEvent, InitEvent, CrashEvent, SuspectEvent)


def event_process(event: Event) -> ProcessId:
    """Return the process whose history the event belongs to."""
    return event.process
