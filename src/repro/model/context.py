"""Contexts (Section 2.1).

A context, for this paper, is (i) a bound on the number of processes
that can fail, (ii) a specification of failure-detector properties, and
(iii) a specification of communication properties.  A joint protocol run
in a context generates a system: the set of all runs satisfying R1--R5
and the context's constraints that are consistent with the protocol.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.model.events import ProcessId


class ChannelSemantics(enum.Enum):
    """Communication guarantees of the context.

    * ``RELIABLE``  -- every message sent to a correct process is
      eventually delivered (used by Proposition 2.4).
    * ``FAIR_LOSSY`` -- messages may be lost, but R5 holds: a message
      sent infinitely often to a correct process is received infinitely
      often.  This is the paper's default assumption.
    * ``UNFAIR``    -- the adversary may drop everything; violates R5.
      Only used by the fairness ablation (A14); systems generated under
      it are *not* systems in the paper's sense.
    """

    RELIABLE = "reliable"
    FAIR_LOSSY = "fair_lossy"
    UNFAIR = "unfair"


def make_process_ids(n: int) -> tuple[ProcessId, ...]:
    """The canonical process set Proc = {p1, ..., pn}."""
    if n < 1:
        raise ValueError("a system needs at least one process")
    return tuple(f"p{i}" for i in range(1, n + 1))


@dataclass(frozen=True)
class Context:
    """The execution context a joint protocol runs in.

    Parameters
    ----------
    processes:
        The process set Proc.
    failure_bound:
        Maximum number of processes that may crash (the paper's ``t``).
        ``None`` means no bound, i.e. t = n (all processes may fail).
    channels:
        Communication semantics; see :class:`ChannelSemantics`.
    detector:
        Name of the failure-detector class available in this context
        (``None`` if no detector); purely descriptive -- the executor
        binds the actual oracle.
    """

    processes: tuple[ProcessId, ...]
    failure_bound: int | None = None
    channels: ChannelSemantics = ChannelSemantics.FAIR_LOSSY
    detector: str | None = None
    extra: tuple[tuple[str, object], ...] = field(default=())

    def __post_init__(self) -> None:
        if len(set(self.processes)) != len(self.processes):
            raise ValueError("duplicate process identifiers")
        if self.failure_bound is not None and not (
            0 <= self.failure_bound <= len(self.processes)
        ):
            raise ValueError(
                f"failure bound {self.failure_bound} out of range for "
                f"{len(self.processes)} processes"
            )

    @classmethod
    def of(
        cls,
        n: int,
        *,
        failure_bound: int | None = None,
        channels: ChannelSemantics = ChannelSemantics.FAIR_LOSSY,
        detector: str | None = None,
    ) -> "Context":
        return cls(
            processes=make_process_ids(n),
            failure_bound=failure_bound,
            channels=channels,
            detector=detector,
        )

    @property
    def n(self) -> int:
        return len(self.processes)

    @property
    def t(self) -> int:
        """The effective failure bound: n when unbounded."""
        return self.failure_bound if self.failure_bound is not None else self.n

    @property
    def unbounded_failures(self) -> bool:
        return self.failure_bound is None or self.failure_bound >= self.n

    def majority_correct(self) -> bool:
        """True iff fewer than half the processes can fail (t < n/2)."""
        return 2 * self.t < self.n
