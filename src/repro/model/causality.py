"""Causal structure of runs: happens-before, consistent cuts (Lamport).

The paper's cuts are *time* cuts (tuples of prefixes at one global
time), which condition R3 makes automatically consistent: every receive
inside the cut has its send inside.  This module makes the causal
structure explicit:

* :func:`causal_graph` -- the happens-before DAG over a run's events
  (local-order edges plus matched send->receive edges), as a
  :class:`networkx.DiGraph` for downstream analysis;
* :func:`happens_before` -- Lamport's relation, by reachability;
* :func:`is_consistent_cut` -- arbitrary per-process prefix vectors,
  checked for causal closure;
* :func:`lamport_timestamps` -- classic logical clocks, for tests and
  traces.

The message-chain relation of :mod:`repro.knowledge.chains` is the
process-level projection of this graph; the property tests check the
two agree.
"""

from __future__ import annotations

import networkx as nx

from repro.knowledge.chains import match_sends_to_receives
from repro.model.events import ProcessId, ReceiveEvent
from repro.model.run import Run

#: A node is (process, tick): by R2 at most one event per process-tick.
Node = tuple[ProcessId, int]


def causal_graph(run: Run) -> "nx.DiGraph":
    """The happens-before DAG of the run's events."""
    graph = nx.DiGraph()
    for p in run.processes:
        previous: Node | None = None
        for t, event in run.timeline(p):
            node: Node = (p, t)
            graph.add_node(node, event=event)
            if previous is not None:
                graph.add_edge(previous, node, kind="local")
            previous = node
    for (recv_p, recv_t), (send_p, send_t) in match_sends_to_receives(run).items():
        graph.add_edge((send_p, send_t), (recv_p, recv_t), kind="message")
    return graph


def happens_before(run: Run, a: Node, b: Node) -> bool:
    """Lamport's happened-before: a path in the causal graph (strict)."""
    graph = causal_graph(run)
    if a not in graph or b not in graph:
        raise KeyError(f"no event at {a!r} or {b!r}")
    return a != b and bool(nx.has_path(graph, a, b))


def concurrent(run: Run, a: Node, b: Node) -> bool:
    """Neither happens before the other."""
    graph = causal_graph(run)
    if a not in graph or b not in graph:
        raise KeyError(f"no event at {a!r} or {b!r}")
    if a == b:
        return False
    return not bool(nx.has_path(graph, a, b)) and not bool(nx.has_path(graph, b, a))


def is_consistent_cut(run: Run, frontier: dict[ProcessId, int]) -> bool:
    """Is the per-process prefix vector causally closed?

    ``frontier[p]`` is the number of events of p inside the cut.  The
    cut is consistent iff every receive inside has its matched send
    inside.
    """
    for p in run.processes:
        count = frontier.get(p, 0)
        if not 0 <= count <= len(run.timeline(p)):
            raise ValueError(f"frontier for {p} out of range")
    included: set[Node] = set()
    for p in run.processes:
        for t, _ in run.timeline(p)[: frontier.get(p, 0)]:
            included.add((p, t))
    matching = match_sends_to_receives(run)
    for p in run.processes:
        for t, event in run.timeline(p)[: frontier.get(p, 0)]:
            if isinstance(event, ReceiveEvent):
                send = matching.get((p, t))
                if send is not None and send not in included:
                    return False
    return True


def time_cut_frontier(run: Run, time: int) -> dict[ProcessId, int]:
    """The frontier of the paper's cut r(time)."""
    return {
        p: sum(1 for t, _ in run.timeline(p) if t <= time)
        for p in run.processes
    }


def lamport_timestamps(run: Run) -> dict[Node, int]:
    """Classic Lamport clocks: C(b) > C(a) whenever a happens-before b."""
    graph = causal_graph(run)
    clocks: dict[Node, int] = {}
    for node in nx.topological_sort(graph):
        preds = [clocks[p] for p in graph.predecessors(node)]
        clocks[node] = (max(preds) + 1) if preds else 1
    return clocks


def vector_timestamps(run: Run) -> dict[Node, dict[ProcessId, int]]:
    """Vector clocks: V(a) < V(b) iff a happens-before b (the strong
    clock condition Lamport clocks lack)."""
    graph = causal_graph(run)
    clocks: dict[Node, dict[ProcessId, int]] = {}
    for node in nx.topological_sort(graph):
        p, _ = node
        merged = {q: 0 for q in run.processes}
        for pred in graph.predecessors(node):
            for q, value in clocks[pred].items():
                if value > merged[q]:
                    merged[q] = value
        merged[p] += 1
        clocks[node] = merged
    return clocks


def vector_less(
    a: dict[ProcessId, int], b: dict[ProcessId, int]
) -> bool:
    """The strict vector order: a <= b pointwise and a != b."""
    return all(a[q] <= b[q] for q in a) and a != b
