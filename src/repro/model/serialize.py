"""JSON serialization for runs and systems.

Ensembles are expensive to regenerate and useful to archive (they are
the 'datasets' of this reproduction); this module provides a stable
round-trip:

    save_system(system, path) / load_system(path)
    run_to_dict(run) / run_from_dict(data)

Event payloads are arbitrary hashable values (tuples, frozensets,
scalars); they are encoded with a small tagged codec so the round-trip
is exact (tuples stay tuples, frozensets stay frozensets -- plain JSON
would flatten both to lists and break history hashing).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.model.events import (
    CrashEvent,
    DoEvent,
    Event,
    GeneralizedSuspicion,
    InitEvent,
    Message,
    ReceiveEvent,
    SendEvent,
    StandardSuspicion,
    SuspectEvent,
    Suspicion,
)
from repro.model.run import Run
from repro.model.system import System

FORMAT_VERSION = 1


# -- value codec ----------------------------------------------------------------


def encode_value(value: object) -> Any:
    """Encode a payload value into JSON-safe tagged form."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, tuple):
        return {"__t": "tuple", "v": [encode_value(v) for v in value]}
    if isinstance(value, frozenset):
        encoded = [encode_value(v) for v in sorted(value, key=repr)]
        return {"__t": "frozenset", "v": encoded}
    raise TypeError(f"cannot serialize payload of type {type(value).__name__}")


def decode_value(data: Any) -> Any:
    """Inverse of :func:`encode_value`."""
    if isinstance(data, dict):
        tag = data.get("__t")
        if tag == "tuple":
            return tuple(decode_value(v) for v in data["v"])
        if tag == "frozenset":
            return frozenset(decode_value(v) for v in data["v"])
        raise ValueError(f"unknown value tag {tag!r}")
    return data


# -- event codec -------------------------------------------------------------------


def encode_event(event: Event) -> dict[str, Any]:
    """Encode one history event as a JSON-safe dict."""
    if isinstance(event, SendEvent):
        return {
            "e": "send",
            "p": event.sender,
            "to": event.receiver,
            "kind": event.message.kind,
            "payload": encode_value(event.message.payload),
        }
    if isinstance(event, ReceiveEvent):
        return {
            "e": "recv",
            "p": event.receiver,
            "from": event.sender,
            "kind": event.message.kind,
            "payload": encode_value(event.message.payload),
        }
    if isinstance(event, InitEvent):
        return {"e": "init", "p": event.process, "action": encode_value(event.action)}
    if isinstance(event, DoEvent):
        return {"e": "do", "p": event.process, "action": encode_value(event.action)}
    if isinstance(event, CrashEvent):
        return {"e": "crash", "p": event.process}
    if isinstance(event, SuspectEvent):
        report = event.report
        if isinstance(report, StandardSuspicion):
            body = {"r": "std", "suspects": sorted(report.suspects)}
        elif isinstance(report, GeneralizedSuspicion):
            body = {
                "r": "gen",
                "suspects": sorted(report.suspects),
                "k": report.count,
            }
        else:  # pragma: no cover - future report types
            raise TypeError(f"cannot serialize report {report!r}")
        return {
            "e": "suspect",
            "p": event.process,
            "derived": event.derived,
            **body,
        }
    raise TypeError(f"cannot serialize event {event!r}")  # pragma: no cover


def decode_event(data: dict[str, Any]) -> Event:
    """Inverse of :func:`encode_event`."""
    kind = data["e"]
    if kind == "send":
        return SendEvent(
            data["p"], data["to"], Message(data["kind"], decode_value(data["payload"]))
        )
    if kind == "recv":
        return ReceiveEvent(
            data["p"],
            data["from"],
            Message(data["kind"], decode_value(data["payload"])),
        )
    if kind == "init":
        return InitEvent(data["p"], decode_value(data["action"]))
    if kind == "do":
        return DoEvent(data["p"], decode_value(data["action"]))
    if kind == "crash":
        return CrashEvent(data["p"])
    if kind == "suspect":
        report: Suspicion
        if data["r"] == "std":
            report = StandardSuspicion(frozenset(data["suspects"]))
        else:
            report = GeneralizedSuspicion(frozenset(data["suspects"]), data["k"])
        return SuspectEvent(data["p"], report, derived=data["derived"])
    raise ValueError(f"unknown event kind {kind!r}")


# -- run / system -------------------------------------------------------------------


def _encode_meta(meta: dict[str, Any]) -> dict[str, Any]:
    """Encode JSON-safe meta entries plus tagged crash plans.

    Crash plans are the one structured meta value the analyses read back
    (``run.meta["crash_plan"]``), and the runtime's disk cache
    (:class:`repro.runtime.RunCache`) needs them to survive the
    round-trip; other non-scalar entries are dropped.
    """
    from repro.sim.failures import CrashPlan  # local: model must not need sim

    out: dict[str, Any] = {}
    for key, value in meta.items():
        if isinstance(value, (type(None), bool, int, float, str)):
            out[key] = value
        elif isinstance(value, CrashPlan):
            out[key] = {"__t": "crash_plan", "crashes": [list(c) for c in value.crashes]}
        elif isinstance(value, tuple) and all(
            isinstance(item, int) for item in value
        ):
            # Explorer choice traces: run.meta["trace"] must survive the
            # round-trip for cached violations to stay replayable.
            out[key] = {"__t": "int_tuple", "items": list(value)}
        elif (
            isinstance(value, tuple)
            and value
            and all(
                isinstance(item, tuple)
                and len(item) == 2
                and all(isinstance(part, str) for part in item)
                for item in value
            )
        ):
            # Symmetry renamings: run.meta["renaming"] must survive for
            # mirrored runs to stay replayable from the cache.
            out[key] = {"__t": "str_pairs", "items": [list(item) for item in value]}
    return out


def _decode_meta(meta: dict[str, Any]) -> dict[str, Any]:
    """Inverse of :func:`_encode_meta` (tolerates pre-tag archives)."""
    from repro.sim.failures import CrashPlan

    out: dict[str, Any] = {}
    for key, value in meta.items():
        if isinstance(value, dict) and value.get("__t") == "crash_plan":
            out[key] = CrashPlan(tuple((p, t) for p, t in value["crashes"]))
        elif isinstance(value, dict) and value.get("__t") == "int_tuple":
            out[key] = tuple(int(item) for item in value["items"])
        elif isinstance(value, dict) and value.get("__t") == "str_pairs":
            out[key] = tuple(
                (str(a), str(b)) for a, b in value["items"]
            )
        else:
            out[key] = value
    return out


def run_to_dict(run: Run) -> dict[str, Any]:
    """Encode a run (timelines, duration, JSON-safe meta)."""
    return {
        "version": FORMAT_VERSION,
        "processes": list(run.processes),
        "duration": run.duration,
        "meta": _encode_meta(run.meta),
        "timelines": {
            p: [[t, encode_event(e)] for t, e in run.timeline(p)]
            for p in run.processes
        },
    }


def run_from_dict(data: dict[str, Any]) -> Run:
    """Inverse of :func:`run_to_dict`; validates the format version."""
    if data.get("version") != FORMAT_VERSION:
        raise ValueError(f"unsupported format version {data.get('version')!r}")
    timelines = {
        p: [(t, decode_event(e)) for t, e in entries]
        for p, entries in data["timelines"].items()
    }
    return Run(
        tuple(data["processes"]),
        timelines,
        duration=data["duration"],
        meta=_decode_meta(data.get("meta", {})),
    )


def save_run(run: Run, path: str | Path) -> None:
    """Write a run to a JSON file."""
    Path(path).write_text(json.dumps(run_to_dict(run)))


def load_run(path: str | Path) -> Run:
    """Read a run back from :func:`save_run` output."""
    return run_from_dict(json.loads(Path(path).read_text()))


def system_to_dict(system: System) -> dict[str, Any]:
    """Encode every run of a system."""
    return {
        "version": FORMAT_VERSION,
        "runs": [run_to_dict(r) for r in system.runs],
    }


def system_from_dict(data: dict[str, Any]) -> System:
    """Inverse of :func:`system_to_dict`."""
    if data.get("version") != FORMAT_VERSION:
        raise ValueError(f"unsupported format version {data.get('version')!r}")
    return System([run_from_dict(r) for r in data["runs"]])


def save_system(system: System, path: str | Path) -> None:
    """Write a system to a JSON file."""
    Path(path).write_text(json.dumps(system_to_dict(system)))


def load_system(path: str | Path) -> System:
    """Read a system back from :func:`save_system` output."""
    return system_from_dict(json.loads(Path(path).read_text()))
