"""Formal model of asynchronous distributed systems (Section 2.1 of the paper).

This package implements the paper's run-based model verbatim:

* :mod:`repro.model.events` -- the event alphabet: ``send``, ``recv``,
  ``do``, ``init``, ``crash``, and failure-detector ``suspect`` events.
* :mod:`repro.model.history` -- per-process histories and cuts.
* :mod:`repro.model.run` -- runs (functions from time to cuts), points,
  and validators for conditions R1--R5.
* :mod:`repro.model.system` -- systems (sets of runs) with the
  class-based indistinguishability kernel (interned histories,
  equivalence classes, crash bitmasks) used for knowledge evaluation.
* :mod:`repro.model.context` -- contexts: failure bounds, channel
  semantics, and failure-detector specifications.
"""

from repro.model.context import ChannelSemantics, Context
from repro.model.events import (
    CrashEvent,
    DoEvent,
    Event,
    GeneralizedSuspicion,
    InitEvent,
    Message,
    ReceiveEvent,
    SendEvent,
    StandardSuspicion,
    SuspectEvent,
)
from repro.model.history import Cut, History, HistoryInterner
from repro.model.run import Point, Run, RunValidationError, validate_run
from repro.model.system import EquivClass, KernelStats, System

__all__ = [
    "ChannelSemantics",
    "Context",
    "CrashEvent",
    "Cut",
    "DoEvent",
    "EquivClass",
    "Event",
    "GeneralizedSuspicion",
    "History",
    "HistoryInterner",
    "KernelStats",
    "InitEvent",
    "Message",
    "Point",
    "ReceiveEvent",
    "Run",
    "RunValidationError",
    "SendEvent",
    "StandardSuspicion",
    "SuspectEvent",
    "System",
    "validate_run",
]
