"""Synthetic run/system generators for kernel testing and benchmarking.

The epistemic kernel's differential tests and microbenchmarks need
systems whose indistinguishability structure is rich (many runs sharing
local-history prefixes, crashes at varied times) but whose construction
is cheap and deterministic.  Executing real protocols for that is
overkill; these generators draw per-process timelines from a small
shared event alphabet instead, so equal histories across runs are
common and the ~_p class tables have non-trivial shape.

Generated runs respect R1/R2/R4 structurally (events start at tick 1,
one per tick, crash last); R3/R5 are *not* enforced -- the knowledge
semantics never needs them, and the run validator is not invoked here.
"""

from __future__ import annotations

import random

from repro.model.context import make_process_ids
from repro.model.events import (
    CrashEvent,
    DoEvent,
    Event,
    Message,
    ProcessId,
    ReceiveEvent,
    SendEvent,
)
from repro.model.run import Run
from repro.model.system import System


def synthetic_run(
    processes: tuple[ProcessId, ...],
    rng: random.Random,
    *,
    duration: int = 8,
    crash_prob: float = 0.3,
    event_prob: float = 0.5,
    alphabet: int = 2,
) -> Run:
    """One random run over ``processes``.

    Each process may crash (probability ``crash_prob``) at a uniform
    time; before crashing it emits, per tick with probability
    ``event_prob``, an event drawn from a ``3 * alphabet``-symbol
    alphabet (do / send-to-neighbour / recv-from-neighbour).  The small
    alphabet is deliberate: it makes equal histories across independent
    runs likely, which is what exercises the class machinery.
    """
    n = len(processes)
    timelines: dict[ProcessId, list[tuple[int, Event]]] = {}
    for i, p in enumerate(processes):
        crash_at = (
            rng.randint(1, duration) if rng.random() < crash_prob else None
        )
        neighbour = processes[(i + 1) % n]
        events: list[tuple[int, Event]] = []
        for tick in range(1, duration + 1):
            if crash_at is not None and tick >= crash_at:
                events.append((tick, CrashEvent(p)))
                break
            if rng.random() >= event_prob:
                continue
            kind = rng.randrange(3)
            symbol = rng.randrange(alphabet)
            if kind == 0:
                events.append((tick, DoEvent(p, (p, f"a{symbol}"))))
            elif kind == 1:
                events.append((tick, SendEvent(p, neighbour, Message(f"m{symbol}"))))
            else:
                events.append(
                    (tick, ReceiveEvent(p, neighbour, Message(f"m{symbol}")))
                )
        timelines[p] = events
    return Run(processes, timelines, duration)


def synthetic_system(
    n: int,
    runs: int,
    *,
    seed: int = 0,
    duration: int = 8,
    crash_prob: float = 0.3,
    event_prob: float = 0.5,
    alphabet: int = 2,
) -> System:
    """A deterministic random system with ``runs`` runs over n processes."""
    rng = random.Random(seed)
    processes = make_process_ids(n)
    return System(
        synthetic_run(
            processes,
            rng,
            duration=duration,
            crash_prob=crash_prob,
            event_prob=event_prob,
            alphabet=alphabet,
        )
        for _ in range(runs)
    )
