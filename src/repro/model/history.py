"""Process histories and cuts (Section 2.1).

A *history* for process p is a finite sequence of events performed by p.
A *cut* is a tuple of histories, one per process.  Histories are immutable
and hashable: the indistinguishability relation ``(r,m) ~_p (r',m')`` of
the knowledge semantics is literally equality of p's histories, so we use
histories as dictionary keys.

Representation: a persistent singly-linked list (each history node holds
its last event and its predecessor), so that :meth:`History.append` is
O(1) and the per-time prefix histories of a run share structure instead
of copying.  The hash is maintained incrementally; equality first
compares hash and length, then walks the chains with an identity
shortcut (prefixes of the same run share nodes, so comparisons between
related histories terminate at the shared spine).
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, Mapping, Type, TypeVar, overload

from repro.model.events import (
    ActionId,
    CrashEvent,
    DoEvent,
    Event,
    InitEvent,
    Message,
    ProcessId,
    ReceiveEvent,
    SendEvent,
    SuspectEvent,
)

E = TypeVar("E", bound=Event)

_EMPTY_HASH = hash(("history", 0))


class History:
    """An immutable sequence of events at a single process."""

    __slots__ = ("_parent", "_event", "_len", "_hash")

    def __init__(self, events: Iterable[Event] = ()) -> None:
        tip: History | None = None
        for event in events:
            if tip is not None and tip.crashed:
                raise ValueError("cannot append events after a crash event (R4)")
            node = History.__new__(History)
            node._parent = tip
            node._event = event
            node._len = (tip._len if tip is not None else 0) + 1
            node._hash = hash(((tip._hash if tip is not None else _EMPTY_HASH), event))
            tip = node
        if tip is None:
            self._parent = None
            self._event = None
            self._len = 0
            self._hash = _EMPTY_HASH
        else:
            self._parent = tip._parent
            self._event = tip._event
            self._len = tip._len
            self._hash = tip._hash

    # -- construction -------------------------------------------------------

    def append(self, event: Event) -> "History":
        """Return a new history with ``event`` appended (R2 step); O(1)."""
        if self.crashed:
            raise ValueError("cannot append events after a crash event (R4)")
        new = History.__new__(History)
        new._parent = self if self._len else None
        new._event = event
        new._len = self._len + 1
        new._hash = hash((self._hash, event))
        return new

    # -- sequence protocol -----------------------------------------------------

    def __len__(self) -> int:
        return self._len

    def _walk_back(self) -> Iterator[Event]:
        """Events in reverse order."""
        node: History | None = self
        while node is not None and node._len:
            event = node._event
            assert event is not None  # _len > 0 implies a stored event
            yield event
            node = node._parent

    @property
    def events(self) -> tuple[Event, ...]:
        """The events in history order (materialized on demand)."""
        return tuple(reversed(list(self._walk_back())))

    def __iter__(self) -> Iterator[Event]:
        return iter(self.events)

    @overload
    def __getitem__(self, index: int) -> Event: ...

    @overload
    def __getitem__(self, index: slice) -> "History": ...

    def __getitem__(self, index: int | slice) -> "Event | History":
        if isinstance(index, slice):
            return History(self.events[index])
        return self.events[index]

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, History):
            return NotImplemented
        if self._hash != other._hash or self._len != other._len:
            return False
        a: History | None = self
        b: History | None = other
        while a is not None and b is not None and a._len:
            if a is b:
                return True  # shared spine: the rest is identical
            if a._event != b._event:
                return False
            a, b = a._parent, b._parent
        return True

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"History({list(self.events)!r})"

    # -- queries -----------------------------------------------------------

    @property
    def last(self) -> Event | None:
        return self._event if self._len else None

    @property
    def crashed(self) -> bool:
        """True iff the history ends in a crash event (R4 makes it last)."""
        return self._len > 0 and isinstance(self._event, CrashEvent)

    def is_prefix_of(self, other: "History") -> bool:
        """True iff ``self`` is a (not necessarily strict) prefix of ``other``."""
        if self._len > other._len:
            return False
        node: History | None = other
        while node is not None and node._len > self._len:
            node = node._parent
        if node is None:
            return self._len == 0
        return self == node

    def prefix(self, length: int) -> "History":
        """The prefix with the given number of events (shares structure)."""
        if not 0 <= length <= self._len:
            raise ValueError(f"prefix length {length} out of range")
        if length == 0:
            return EMPTY_HISTORY
        node: History = self
        while node._len > length:
            parent = node._parent
            assert parent is not None  # _len > length >= 1 implies a parent
            node = parent
        return node

    def events_of_type(self, event_type: Type[E]) -> Iterator[E]:
        """Iterate over the events of the given type, in history order."""
        for event in self.events:
            if isinstance(event, event_type):
                yield event

    def count(self, event: Event) -> int:
        """Number of occurrences of ``event`` (used by the R5 checker)."""
        total = 0
        for e in self._walk_back():
            if e == event:
                total += 1
        return total

    def contains(self, event: Event) -> bool:
        """True iff ``event`` occurs anywhere in the history."""
        return any(e == event for e in self._walk_back())

    def index_of(self, event: Event) -> int | None:
        """Index of the first occurrence of ``event``, or None."""
        found: int | None = None
        index = self._len - 1
        for e in self._walk_back():
            if e == event:
                found = index
            index -= 1
        return found

    def find(self, predicate: Callable[[Event], bool]) -> Event | None:
        """First event satisfying ``predicate``, or None."""
        for event in self.events:
            if predicate(event):
                return event
        return None

    # -- paper-specific helpers ---------------------------------------------

    def did(self, action: ActionId) -> bool:
        """True iff ``do(action)`` appears in this history."""
        return any(
            isinstance(e, DoEvent) and e.action == action for e in self._walk_back()
        )

    def inited(self, action: ActionId) -> bool:
        """True iff ``init(action)`` appears in this history."""
        return any(
            isinstance(e, InitEvent) and e.action == action for e in self._walk_back()
        )

    def sent(self, receiver: ProcessId, message: Message | None = None) -> bool:
        """True iff this process sent (any message, or ``message``) to ``receiver``."""
        return any(
            isinstance(e, SendEvent)
            and e.receiver == receiver
            and (message is None or e.message == message)
            for e in self._walk_back()
        )

    def received(self, sender: ProcessId, message: Message | None = None) -> bool:
        """True iff this process received (any message, or ``message``) from ``sender``."""
        return any(
            isinstance(e, ReceiveEvent)
            and e.sender == sender
            and (message is None or e.message == message)
            for e in self._walk_back()
        )

    def latest_suspicion(self, derived: bool = False) -> SuspectEvent | None:
        """Most recent suspect event, restricted to derived / original ones.

        This realises the paper's ``Suspects_p(r, m)`` convention: the
        *most recent* failure-detector event determines the current
        suspicions.
        """
        for event in self._walk_back():
            if isinstance(event, SuspectEvent) and event.derived == derived:
                return event
        return None


EMPTY_HISTORY = History()


class HistoryInterner:
    """A canonicalization table mapping equal histories to one representative.

    The indistinguishability kernel buckets points by local history; with
    interning, every history that occurs in a system resolves to a single
    canonical :class:`History` node, so equality degrades to an ``is``
    check (the fast path at the top of :meth:`History.__eq__`) and dict
    probes on canonical keys never walk event chains.

    Invariant: for histories ``a``, ``b`` interned through the *same*
    table, ``a == b`` iff ``intern(a) is intern(b)``.  Tables are
    per-system (shared with subsystems built by ``restrict``/``union``);
    interning through unrelated tables gives no identity guarantee.
    """

    __slots__ = ("_table", "hits", "misses")

    def __init__(self) -> None:
        self._table: dict[History, History] = {EMPTY_HISTORY: EMPTY_HISTORY}
        self.hits = 0
        self.misses = 0

    def intern(self, history: History) -> History:
        """The canonical representative of ``history`` (first one wins)."""
        canonical = self._table.get(history)
        if canonical is None:
            self._table[history] = history
            self.misses += 1
            return history
        self.hits += 1
        return canonical

    def __len__(self) -> int:
        return len(self._table)

    def __contains__(self, history: History) -> bool:
        return history in self._table


class Cut:
    """A tuple of finite process histories, one per process (Section 2.1).

    ``processes`` fixes the ordering; cuts over the same process set are
    comparable and hashable.
    """

    __slots__ = ("_processes", "_histories", "_hash")

    def __init__(
        self,
        processes: tuple[ProcessId, ...],
        histories: Mapping[ProcessId, History],
    ) -> None:
        self._processes = tuple(processes)
        missing = [p for p in self._processes if p not in histories]
        if missing:
            raise ValueError(f"cut is missing histories for {missing}")
        self._histories = tuple(histories[p] for p in self._processes)
        self._hash = hash((self._processes, self._histories))

    @classmethod
    def initial(cls, processes: Iterable[ProcessId]) -> "Cut":
        """The empty cut of R1: every history is empty."""
        procs = tuple(processes)
        return cls(procs, {p: EMPTY_HISTORY for p in procs})

    @property
    def processes(self) -> tuple[ProcessId, ...]:
        return self._processes

    def history(self, process: ProcessId) -> History:
        """This cut's history component for ``process``."""
        try:
            return self._histories[self._processes.index(process)]
        except ValueError:
            raise KeyError(f"unknown process {process!r}") from None

    def __getitem__(self, process: ProcessId) -> History:
        return self.history(process)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Cut):
            return NotImplemented
        return (
            self._hash == other._hash
            and self._processes == other._processes
            and self._histories == other._histories
        )

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = ", ".join(
            f"{p}: {len(h)} events" for p, h in zip(self._processes, self._histories)
        )
        return f"Cut({parts})"

    def with_history(self, process: ProcessId, history: History) -> "Cut":
        """Return a new cut with ``process``'s history replaced."""
        mapping = dict(zip(self._processes, self._histories))
        mapping[process] = history
        return Cut(self._processes, mapping)
