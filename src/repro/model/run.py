"""Runs, points, and the R1--R5 well-formedness conditions (Section 2.1).

A run is a function from time (natural numbers) to cuts.  We represent a
run compactly by each process's *timeline* -- the sequence of
``(time, event)`` pairs at which its history grows -- together with a
finite ``duration`` (the horizon up to which the run was observed).  By
condition R2 a process appends at most one event per tick, so timelines
have strictly increasing times.

Finite-horizon convention
-------------------------
The paper's runs are infinite.  Our simulated runs are finite prefixes
driven to *quiescence* (see :mod:`repro.sim.executor`); all temporal
operators are evaluated with the convention that the final cut repeats
forever.  This is exact for the stable formulas the paper's properties
are built from (``send``, ``recv``, ``crash``, ``do``, ``init`` are all
stable), and DESIGN.md Section 3 records the substitution.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import Any, Iterable, Iterator, Mapping

from repro.model.events import (
    ActionId,
    CrashEvent,
    Event,
    InitEvent,
    Message,
    ProcessId,
    ReceiveEvent,
    SendEvent,
)
from repro.model.history import Cut, EMPTY_HISTORY, History

Timeline = tuple[tuple[int, Event], ...]


class RunValidationError(ValueError):
    """Raised when a run violates one of R1--R5."""


class Run:
    """A finite-horizon run: per-process timelines plus a duration.

    ``meta`` carries executor ground truth (random seed, planned failure
    set, detector class, ...) and is deliberately excluded from equality
    and hashing: two runs are the same run iff they assign the same cut to
    every time.
    """

    __slots__ = (
        "_processes",
        "_timelines",
        "_duration",
        "meta",
        "_hash",
        "_prefixes",
        "_crash_masks",
        "_timeline_columns",
    )

    def __init__(
        self,
        processes: Iterable[ProcessId],
        timelines: Mapping[ProcessId, Iterable[tuple[int, Event]]],
        duration: int,
        meta: dict[str, Any] | None = None,
    ) -> None:
        self._processes: tuple[ProcessId, ...] = tuple(processes)
        self._timelines: dict[ProcessId, Timeline] = {
            p: tuple(timelines.get(p, ())) for p in self._processes
        }
        if duration < 0:
            raise ValueError("duration must be non-negative")
        self._duration = duration
        self.meta: dict[str, Any] = dict(meta or {})
        self._hash = hash(
            (
                self._processes,
                tuple(self._timelines[p] for p in self._processes),
                self._duration,
            )
        )
        # R4 at construction time (History.append would also raise, but
        # the prefix index is built lazily now): crash ends the timeline.
        for p, timeline in self._timelines.items():
            for _, event in timeline[:-1]:
                if isinstance(event, CrashEvent):
                    raise ValueError(f"{p} has events after its crash (R4)")
        # Per-process incremental prefix histories: _prefixes[p] is a list
        # where entry i is the history after the first i timeline events.
        # Built lazily per process: the explorer constructs (and dedups)
        # far more runs than the knowledge kernel ever queries.
        self._prefixes: dict[ProcessId, list[History]] = {}
        self._crash_masks: tuple[int, ...] | None = None
        self._timeline_columns: (
            tuple[tuple[Event, ...], list[int], list[int], list[int]] | None
        ) = None

    # -- identity ----------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Run):
            return NotImplemented
        return (
            self._hash == other._hash
            and self._processes == other._processes
            and self._duration == other._duration
            and self._timelines == other._timelines
        )

    def __hash__(self) -> int:
        return self._hash

    def __reduce__(
        self,
    ) -> tuple[type["Run"], tuple[object, ...]]:
        # Runs cross process boundaries (repro.runtime's pool backend
        # returns them from workers); rebuild from the constructor args
        # rather than shipping the derived prefix-history index.
        return (Run, (self._processes, self._timelines, self._duration, self.meta))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        total = sum(len(t) for t in self._timelines.values())
        return f"Run(n={len(self._processes)}, events={total}, duration={self._duration})"

    # -- basic accessors -----------------------------------------------------

    @property
    def processes(self) -> tuple[ProcessId, ...]:
        return self._processes

    @property
    def duration(self) -> int:
        return self._duration

    def timeline(self, process: ProcessId) -> Timeline:
        """The (time, event) pairs of one process, in time order."""
        return self._timelines[process]

    def events(self, process: ProcessId) -> Iterator[Event]:
        """The events of one process, in history order."""
        for _, event in self._timelines[process]:
            yield event

    def all_events(self) -> Iterator[tuple[int, Event]]:
        """All (time, event) pairs across processes, sorted by time."""
        merged = [
            (t, p, e) for p in self._processes for (t, e) in self._timelines[p]
        ]
        merged.sort(key=lambda item: item[0])
        for t, _, e in merged:
            yield t, e

    # -- the run-as-function view --------------------------------------------

    def _event_count_at(self, process: ProcessId, time: int) -> int:
        """Number of events in ``process``'s history at ``time``."""
        timeline = self._timelines[process]
        # times are strictly increasing; count entries with t <= time
        times = [t for t, _ in timeline]
        return bisect_right(times, time)

    def history(self, process: ProcessId, time: int | None = None) -> History:
        """p's history in the cut r(time); the final history if time is None.

        Times beyond the duration return the final history (the
        final-cut-repeats-forever convention).
        """
        if time is None:
            time = self._duration
        if time < 0:
            raise ValueError("time must be non-negative")
        count = self._event_count_at(process, min(time, self._duration))
        return self._prefix_list(process)[count]

    def final_history(self, process: ProcessId) -> History:
        """The process's complete history at the run's duration."""
        return self._prefix_list(process)[-1]

    def _prefix_list(self, process: ProcessId) -> list[History]:
        prefixes = self._prefixes.get(process)
        if prefixes is None:
            prefixes = [EMPTY_HISTORY]
            for _, event in self._timelines[process]:
                prefixes.append(prefixes[-1].append(event))
            self._prefixes[process] = prefixes
        return prefixes

    def cut(self, time: int) -> Cut:
        """The cut r(time)."""
        return Cut(
            self._processes,
            {p: self.history(p, time) for p in self._processes},
        )

    def points(self) -> Iterator["Point"]:
        """All points (r, m) for 0 <= m <= duration."""
        for m in range(self._duration + 1):
            yield Point(self, m)

    # -- failure queries -------------------------------------------------------

    def faulty(self) -> frozenset[ProcessId]:
        """F(r): the processes whose history contains a crash event."""
        return frozenset(
            p for p in self._processes if self.final_history(p).crashed
        )

    def correct(self) -> frozenset[ProcessId]:
        """Proc - F(r): the processes that never crash."""
        return frozenset(self._processes) - self.faulty()

    def crash_time(self, process: ProcessId) -> int | None:
        """The time of ``process``'s crash event, or None if correct."""
        timeline = self._timelines[process]
        if timeline and isinstance(timeline[-1][1], CrashEvent):
            return timeline[-1][0]
        return None

    def crashed_by(self, process: ProcessId, time: int) -> bool:
        """True iff crash_process is in r_process(time)."""
        ct = self.crash_time(process)
        return ct is not None and ct <= min(time, self._duration)

    def crash_masks(self) -> tuple[int, ...]:
        """Per-time crash bitmasks: ``masks[m]`` has bit ``i`` set iff
        ``processes[i]`` has crashed by time m.

        Bit positions follow the run's process order; :class:`System`
        requires one process tuple per system, so the masks of all its
        runs share a bit layout.  Computed once per run and cached (the
        masks are monotone, so the sweep is O(duration + crashes)).
        """
        masks = self._crash_masks
        if masks is None:
            crash_bits = sorted(
                (ct, 1 << i)
                for i, p in enumerate(self._processes)
                if (ct := self.crash_time(p)) is not None
            )
            out = []
            acc = 0
            j = 0
            for m in range(self._duration + 1):
                while j < len(crash_bits) and crash_bits[j][0] <= m:
                    acc |= crash_bits[j][1]
                    j += 1
                out.append(acc)
            masks = self._crash_masks = tuple(out)
        return masks

    def timeline_columns(
        self,
    ) -> tuple[tuple[Event, ...], list[int], list[int], list[int]]:
        """Flattened timeline columns, cached per run.

        Returns ``(alphabet, times, event_ids, lengths)``: the run's
        distinct events in first-occurrence order, the flat ``(time,
        event_id)`` entries in process order, and each process's entry
        count.  :mod:`repro.columnar` batches runs into arenas by
        remapping these *local* ids into a shared alphabet -- only the
        (small) alphabet is re-hashed per batch, never each occurrence.
        Callers must not mutate the returned lists.
        """
        cols = self._timeline_columns
        if cols is None:
            ids: dict[Event, int] = {}
            intern = ids.setdefault
            times: list[int] = []
            eids: list[int] = []
            lengths: list[int] = []
            for p in self._processes:
                tl = self._timelines[p]
                if tl:
                    times.extend([t for t, _ in tl])
                    eids.extend([intern(e, len(ids)) for _, e in tl])
                lengths.append(len(tl))
            cols = self._timeline_columns = (tuple(ids), times, eids, lengths)
        return cols

    # -- prefix relations -------------------------------------------------------

    def extends(self, other: "Run", time: int) -> bool:
        """True iff this run agrees with ``other`` on all cuts up to ``time``.

        This is the paper's "r' extends (r, m)" relation restricted to
        observed horizons.
        """
        if self._processes != other._processes:
            return False
        horizon = min(time, other._duration)
        if horizon > self._duration:
            return False
        for p in self._processes:
            for m in range(horizon + 1):
                if self.history(p, m) != other.history(p, m):
                    return False
        return True


@dataclass(frozen=True)
class Point:
    """A point (r, m): a run together with a time."""

    run: Run
    time: int

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError("time must be non-negative")

    def history(self, process: ProcessId) -> History:
        """The process's local history at this point."""
        return self.run.history(process, self.time)

    def cut(self) -> Cut:
        """The cut r(m) at this point."""
        return self.run.cut(self.time)

    def indistinguishable_to(self, process: ProcessId, other: "Point") -> bool:
        """The relation (r, m) ~_p (r', m'): equality of p's local histories."""
        return self.history(process) == other.history(process)


# ---------------------------------------------------------------------------
# R1--R5 validation
# ---------------------------------------------------------------------------


def validate_run(
    run: Run,
    *,
    r5_send_threshold: int = 5,
    check_r5: bool = True,
) -> None:
    """Check the well-formedness conditions R1--R5 of Section 2.1.

    R1 and R2 are enforced structurally by the :class:`Run`
    representation (histories start empty and grow one event per tick);
    this function checks the cross-process conditions:

    * R2 (per-event ownership): every event in p's timeline belongs to p.
    * R3: every receive has a corresponding earlier-or-simultaneous send.
    * R4: a crash event is the last event in its history.
    * R5 (finite variant): if p sent the same message to a live q at
      least ``r5_send_threshold`` times *and kept sending it until the
      end of the run*, q received it at least once.  On infinite runs R5
      says "sent infinitely often implies received infinitely often"; the
      finite variant checks the consequence the paper's proofs actually
      use -- persistent retransmission to a correct process succeeds.

    Additionally checks the init uniqueness requirement of Section 2.4:
    ``init_p(alpha)`` appears at most once per run and only at p.

    Raises :class:`RunValidationError` on the first violation.
    """
    procs = set(run.processes)

    # R1 + ownership + R4 + R2 monotone times.
    for p in run.processes:
        last_time = 0
        timeline = run.timeline(p)
        for i, (t, event) in enumerate(timeline):
            if t < 1:
                raise RunValidationError(
                    f"{p} has an event at time {t}; r(0) must be the empty cut (R1)"
                )
            if event.process != p:
                raise RunValidationError(
                    f"event {event!r} at time {t} recorded in {p}'s history"
                )
            if t <= last_time:
                raise RunValidationError(
                    f"{p} has two events at/after time {t} in one tick (R2)"
                )
            last_time = t
            if isinstance(event, CrashEvent) and i != len(timeline) - 1:
                raise RunValidationError(f"{p} has events after its crash (R4)")

    # R3: receives matched by sends.  A receive of msg from p at time t
    # requires that the number of sends of msg by p to q at times <= t is
    # at least the number of receives so far (counting multiplicity).
    # One pass over every timeline collects the sorted send times per
    # channel key; each receive then costs one bisect, not a rescan.
    send_times: dict[tuple[ProcessId, ProcessId, Message], list[int]] = {}
    for p in run.processes:
        for t, event in run.timeline(p):
            if isinstance(event, SendEvent):
                send_times.setdefault(
                    (p, event.receiver, event.message), []
                ).append(t)
    for q in run.processes:
        recv_counts: dict[tuple[ProcessId, ProcessId, Message], int] = {}
        for t, event in run.timeline(q):
            if not isinstance(event, ReceiveEvent):
                continue
            if event.sender not in procs:
                raise RunValidationError(
                    f"receive from unknown process {event.sender!r}"
                )
            key = (event.sender, q, event.message)
            count = recv_counts.get(key, 0) + 1
            recv_counts[key] = count
            # timelines are time-ordered, so the send list is sorted
            sends = bisect_right(send_times.get(key, ()), t)
            if sends < count:
                raise RunValidationError(
                    f"{q} received {event.message!r} from {event.sender} at "
                    f"time {t} without a matching send (R3)"
                )

    # Init uniqueness (Section 2.4).
    seen_inits: set[ActionId] = set()
    for p in run.processes:
        for event in run.events(p):
            if isinstance(event, InitEvent):
                if event.process != p:
                    raise RunValidationError(
                        f"init event for {event.process} in {p}'s history"
                    )
                if event.action in seen_inits:
                    raise RunValidationError(
                        f"action {event.action!r} initiated twice"
                    )
                seen_inits.add(event.action)

    if check_r5:
        violations = r5_violations(run, send_threshold=r5_send_threshold)
        if violations:
            sender, receiver, message, count = violations[0]
            raise RunValidationError(
                f"{sender} sent {message!r} to live process {receiver} "
                f"{count} times with no receipt (R5 finite variant)"
            )


def r5_violations(
    run: Run, *, send_threshold: int = 5
) -> list[tuple[ProcessId, ProcessId, object, int]]:
    """Return the finite-R5 violations in ``run``.

    A violation is a (sender, receiver, message, send_count) tuple where
    the sender sent the same message at least ``send_threshold`` times,
    the last send was still "recent" relative to the end of the run
    (i.e. the sender never gave up, so on the infinite extension it would
    send infinitely often), the receiver never crashed, and the receiver
    never received the message.
    """
    violations: list[tuple[ProcessId, ProcessId, object, int]] = []
    for p in run.processes:
        send_counts: dict[tuple[ProcessId, object], list[int]] = {}
        for t, event in run.timeline(p):
            if isinstance(event, SendEvent):
                send_counts.setdefault((event.receiver, event.message), []).append(t)
        for (q, message), times in send_counts.items():
            if q not in run.processes or len(times) < send_threshold:
                continue
            if run.crash_time(q) is not None:
                continue
            received = run.final_history(q).received(p, message)
            if not received:
                violations.append((p, q, message, len(times)))
    return violations
