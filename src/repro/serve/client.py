"""A small synchronous client for the epistemic query service.

The wire protocol is newline-delimited JSON, so the client is a socket,
a buffered reader, and a request counter.  It exists for tests, the
serve benchmark, the chaos soak, and scripted smoke sessions; any
language with sockets and JSON can speak to the server without it.

Robustness:

* **Read timeouts.**  ``connect(..., timeout=)`` bounds the *whole*
  connection, not just the TCP handshake: reads that stall past the
  timeout raise :class:`ServeTimeout` (a typed
  :class:`ServeClientError` with code ``timeout``) instead of hanging
  forever.
* **Bounded retry.**  Pass a :class:`~repro.runtime.RetryPolicy` and
  the client retries with exponential backoff plus seeded jitter.
  ``overloaded`` / ``deadline-exceeded`` / ``bad-checksum`` responses
  are shed *before any work* server-side, so they are retried for every
  op (honoring the server's ``retry_after_ms`` hint when it is larger
  than the backoff).  Transport failures (timeout, reset, refused) are
  retried -- with a reconnect -- only for ops that are safe to re-send
  after partial execution: ``ping``/``info``/``query`` are read-only
  and ``ingest`` is idempotent (the server's duplicate filter makes a
  re-sent batch a no-op), while a re-sent ``create`` could collide with
  its own first attempt, so it surfaces the transport error instead.
* **End-to-end integrity.**  With ``checksum=True`` every request is
  stamped with :func:`~repro.serve.protocol.wire_checksum` and every
  response is verified, so bytes corrupted in flight (in either
  direction) become structured, retryable errors rather than silently
  wrong answers.

Convenience encoders accept model-level objects (runs, formulas) and do
the wire encoding on the client side, so test code reads at the level
of the paper's constructs::

    with ServeClient.connect(host, port) as client:
        client.create("demo", runs)
        [answer] = client.query("demo", [knows_query("p1", Crashed("p2"), 0, 3)])
"""

from __future__ import annotations

import random
import socket
import time
from typing import Any, Iterable, Sequence

from repro.columnar.arena import encode_runs
from repro.columnar.jsonio import arena_to_jsonable
from repro.knowledge.formulas import Formula
from repro.knowledge.wire import formula_to_jsonable
from repro.model.run import Run
from repro.runtime import RetryPolicy
from repro.serve.protocol import (
    MAX_MESSAGE_BYTES,
    WireError,
    decode_message,
    encode_message,
    verify_checksum,
    wire_checksum,
)

#: Error codes that mean "the server shed this request before doing any
#: work" -- safe to retry regardless of the operation.  ``bad-json``
#: belongs here because a request this client sent was well-formed when
#: it left: the server failing to parse it means the bytes were mangled
#: in flight.
SHED_ERROR_CODES = frozenset(
    {"overloaded", "deadline-exceeded", "bad-checksum", "bad-json"}
)

#: Ops safe to re-send after a transport failure mid-request (the first
#: attempt may or may not have executed): reads, plus idempotent ingest.
RETRY_SAFE_OPS = frozenset({"ping", "info", "query", "ingest"})


class ServeClientError(RuntimeError):
    """An ``ok: false`` response, surfaced with its wire error code."""

    def __init__(
        self, code: str, message: str, *, retry_after_ms: int | None = None
    ) -> None:
        super().__init__(f"{code}: {message}")
        self.code = code
        self.retry_after_ms = retry_after_ms


class ServeTimeout(ServeClientError):
    """A request whose response did not arrive within the read timeout."""

    def __init__(self, message: str) -> None:
        super().__init__("timeout", message)


def runs_to_arena_payload(runs: Iterable[Run]) -> dict[str, Any]:
    """Encode runs as the wire arena payload ``create``/``ingest`` expect."""
    return arena_to_jsonable(encode_runs(tuple(runs)))


def _formula_field(formula: Formula | dict[str, Any]) -> dict[str, Any]:
    if isinstance(formula, Formula):
        return formula_to_jsonable(formula)
    return formula


def holds_query(formula: Formula | dict[str, Any], run: int, time: int) -> dict[str, Any]:
    return {"kind": "holds", "formula": _formula_field(formula), "run": run, "time": time}


def knows_query(
    process: str, formula: Formula | dict[str, Any], run: int, time: int
) -> dict[str, Any]:
    return {
        "kind": "knows",
        "process": process,
        "formula": _formula_field(formula),
        "run": run,
        "time": time,
    }


def e_query(
    group: Sequence[str],
    depth: int,
    formula: Formula | dict[str, Any],
    run: int,
    time: int,
) -> dict[str, Any]:
    return {
        "kind": "e",
        "group": list(group),
        "depth": depth,
        "formula": _formula_field(formula),
        "run": run,
        "time": time,
    }


def ck_query(
    group: Sequence[str], formula: Formula | dict[str, Any], run: int, time: int
) -> dict[str, Any]:
    return {
        "kind": "ck",
        "group": list(group),
        "formula": _formula_field(formula),
        "run": run,
        "time": time,
    }


class ServeClient:
    """One connection to an :class:`~repro.serve.server.EpistemicServer`."""

    def __init__(
        self,
        sock: socket.socket,
        *,
        retry: RetryPolicy | None = None,
        checksum: bool = False,
        retry_seed: int = 0,
    ) -> None:
        self._sock: socket.socket | None = sock
        self._reader = sock.makefile("rb")
        self._retry = retry
        self._checksum = checksum
        # Seeded jitter: retry schedules are replayable per client.
        self._rng = random.Random(f"repro-serve-client:{retry_seed}")
        # Set by connect(); enables reconnect-on-transport-failure.
        self._address: tuple[str, int] | None = None
        self._timeout: float | None = sock.gettimeout()

    @classmethod
    def connect(
        cls,
        host: str,
        port: int,
        *,
        timeout: float = 30.0,
        retry: RetryPolicy | None = None,
        checksum: bool = False,
        retry_seed: int = 0,
    ) -> "ServeClient":
        sock = socket.create_connection((host, port), timeout=timeout)
        # create_connection's timeout governs the connect *and* stays as
        # the socket timeout, but make the contract explicit: every read
        # on this connection is bounded too (-> ServeTimeout), never a
        # silent hang on a stalled server.
        sock.settimeout(timeout)
        client = cls(sock, retry=retry, checksum=checksum, retry_seed=retry_seed)
        client._address = (host, port)
        return client

    def close(self) -> None:
        try:
            self._reader.close()
        finally:
            if self._sock is not None:
                self._sock.close()
                self._sock = None

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # -- the wire ------------------------------------------------------------

    def request(self, payload: dict[str, Any]) -> dict[str, Any]:
        """One request -> its response dict; raises on ``ok: false``.

        With a retry policy configured, sheddable failures are retried
        (see the module docstring for the exact rules) before an error
        is surfaced.
        """
        response = self._request_with_retry(payload)
        if not response.get("ok", False):
            retry_after = response.get("retry_after_ms")
            raise ServeClientError(
                str(response.get("error", "unknown")),
                str(response.get("message", "")),
                retry_after_ms=retry_after if isinstance(retry_after, int) else None,
            )
        return response

    def request_raw(self, payload: dict[str, Any]) -> dict[str, Any]:
        """One request -> its response dict, errors included (no retry)."""
        if self._sock is None:
            self._reconnect()
            assert self._sock is not None
        if self._checksum:
            payload = dict(payload)
            payload["checksum"] = wire_checksum(payload)
        try:
            self._sock.sendall(encode_message(payload))
            line = self._reader.readline(MAX_MESSAGE_BYTES + 2)
        except TimeoutError as exc:  # socket.timeout
            raise ServeTimeout(
                f"no response within {self._timeout}s for op "
                f"{payload.get('op')!r}"
            ) from exc
        if not line:
            raise ConnectionError("server closed the connection")
        try:
            response = decode_message(line)
        except WireError as exc:
            # An unparseable response line means the stream may be
            # desynchronized (e.g. a corrupted newline): treat it as a
            # transport failure so the retry layer reconnects.
            raise ConnectionError(f"undecodable response line: {exc.message}") from exc
        if self._checksum and not verify_checksum(response):
            # The response bytes were corrupted in flight; the op may
            # or may not have executed -- same contract as a transport
            # failure, so surface it as one.
            raise ConnectionError("response checksum does not match its body")
        return response

    def _request_with_retry(self, payload: dict[str, Any]) -> dict[str, Any]:
        attempts = self._retry.max_attempts if self._retry is not None else 1
        op = payload.get("op")
        for attempt in range(1, attempts + 1):
            try:
                response = self.request_raw(payload)
            except (ServeTimeout, OSError):
                # Transport failure: the request may have partially
                # executed.  Only re-send when that is provably safe.
                self._drop_connection()
                if (
                    attempt >= attempts
                    or op not in RETRY_SAFE_OPS
                    or self._address is None
                ):
                    raise
                self._backoff(attempt, None)
                continue
            if (
                response.get("ok", False)
                or response.get("error") not in SHED_ERROR_CODES
                or attempt >= attempts
            ):
                return response
            # A shed: the server did no work, retry after its hint.
            retry_after = response.get("retry_after_ms")
            self._backoff(
                attempt, retry_after if isinstance(retry_after, (int, float)) else None
            )
        raise AssertionError("unreachable: retry loop always returns or raises")

    def _backoff(self, attempt: int, retry_after_ms: float | None) -> None:
        delay = self._retry.delay(attempt, self._rng) if self._retry else 0.0
        if retry_after_ms is not None:
            delay = max(delay, float(retry_after_ms) / 1000.0)
        if delay > 0:
            time.sleep(delay)

    def _drop_connection(self) -> None:
        try:
            self.close()
        except OSError:
            pass

    def _reconnect(self) -> None:
        if self._address is None:
            raise ConnectionError(
                "connection lost and this client has no address to reconnect"
            )
        sock = socket.create_connection(
            self._address, timeout=self._timeout if self._timeout else 30.0
        )
        sock.settimeout(self._timeout)
        self._sock = sock
        self._reader = sock.makefile("rb")

    # -- operation helpers ---------------------------------------------------

    def ping(self) -> bool:
        return bool(self.request({"op": "ping"}).get("pong"))

    def info(self) -> dict[str, Any]:
        return self.request({"op": "info"})

    def create(
        self,
        system: str,
        runs: Iterable[Run],
        *,
        complete: bool = False,
        missing_runs: int = 0,
    ) -> dict[str, Any]:
        return self.request(
            {
                "op": "create",
                "system": system,
                "arena": runs_to_arena_payload(runs),
                "complete": complete,
                "missing_runs": missing_runs,
            }
        )

    def load(self, system: str, digest: str) -> dict[str, Any]:
        return self.request({"op": "load", "system": system, "digest": digest})

    def ingest(self, system: str, runs: Iterable[Run]) -> dict[str, Any]:
        return self.request(
            {"op": "ingest", "system": system, "arena": runs_to_arena_payload(runs)}
        )

    def query_response(
        self,
        system: str,
        queries: Sequence[dict[str, Any]],
        *,
        deadline_ms: int | None = None,
    ) -> dict[str, Any]:
        """The full query response envelope (completeness fields included)."""
        request: dict[str, Any] = {
            "op": "query",
            "system": system,
            "queries": list(queries),
        }
        if deadline_ms is not None:
            request["deadline_ms"] = deadline_ms
        return self.request(request)

    def query(
        self, system: str, queries: Sequence[dict[str, Any]]
    ) -> list[dict[str, Any]]:
        """Just the per-query results of :meth:`query_response`."""
        results = self.query_response(system, queries)["results"]
        assert isinstance(results, list)
        return results

    def shutdown(self) -> None:
        self.request({"op": "shutdown"})
