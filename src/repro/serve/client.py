"""A small synchronous client for the epistemic query service.

The wire protocol is newline-delimited JSON, so the client is a socket,
a buffered reader, and a request counter.  It exists for tests, the
serve benchmark, and scripted smoke sessions; any language with sockets
and JSON can speak to the server without it.

Convenience encoders accept model-level objects (runs, formulas) and do
the wire encoding on the client side, so test code reads at the level
of the paper's constructs::

    with ServeClient.connect(host, port) as client:
        client.create("demo", runs)
        [answer] = client.query("demo", [knows_query("p1", Crashed("p2"), 0, 3)])
"""

from __future__ import annotations

import socket
from typing import Any, Iterable, Sequence

from repro.columnar.arena import encode_runs
from repro.columnar.jsonio import arena_to_jsonable
from repro.knowledge.formulas import Formula
from repro.knowledge.wire import formula_to_jsonable
from repro.model.run import Run
from repro.serve.protocol import MAX_MESSAGE_BYTES, decode_message, encode_message


class ServeClientError(RuntimeError):
    """An ``ok: false`` response, surfaced with its wire error code."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(f"{code}: {message}")
        self.code = code


def runs_to_arena_payload(runs: Iterable[Run]) -> dict[str, Any]:
    """Encode runs as the wire arena payload ``create``/``ingest`` expect."""
    return arena_to_jsonable(encode_runs(tuple(runs)))


def _formula_field(formula: Formula | dict[str, Any]) -> dict[str, Any]:
    if isinstance(formula, Formula):
        return formula_to_jsonable(formula)
    return formula


def holds_query(formula: Formula | dict[str, Any], run: int, time: int) -> dict[str, Any]:
    return {"kind": "holds", "formula": _formula_field(formula), "run": run, "time": time}


def knows_query(
    process: str, formula: Formula | dict[str, Any], run: int, time: int
) -> dict[str, Any]:
    return {
        "kind": "knows",
        "process": process,
        "formula": _formula_field(formula),
        "run": run,
        "time": time,
    }


def e_query(
    group: Sequence[str],
    depth: int,
    formula: Formula | dict[str, Any],
    run: int,
    time: int,
) -> dict[str, Any]:
    return {
        "kind": "e",
        "group": list(group),
        "depth": depth,
        "formula": _formula_field(formula),
        "run": run,
        "time": time,
    }


def ck_query(
    group: Sequence[str], formula: Formula | dict[str, Any], run: int, time: int
) -> dict[str, Any]:
    return {
        "kind": "ck",
        "group": list(group),
        "formula": _formula_field(formula),
        "run": run,
        "time": time,
    }


class ServeClient:
    """One connection to an :class:`~repro.serve.server.EpistemicServer`."""

    def __init__(self, sock: socket.socket) -> None:
        self._sock = sock
        self._reader = sock.makefile("rb")

    @classmethod
    def connect(cls, host: str, port: int, *, timeout: float = 30.0) -> "ServeClient":
        return cls(socket.create_connection((host, port), timeout=timeout))

    def close(self) -> None:
        try:
            self._reader.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # -- the wire ------------------------------------------------------------

    def request(self, payload: dict[str, Any]) -> dict[str, Any]:
        """One request -> its response dict; raises on ``ok: false``."""
        response = self.request_raw(payload)
        if not response.get("ok", False):
            raise ServeClientError(
                str(response.get("error", "unknown")),
                str(response.get("message", "")),
            )
        return response

    def request_raw(self, payload: dict[str, Any]) -> dict[str, Any]:
        """One request -> its response dict, errors included."""
        self._sock.sendall(encode_message(payload))
        line = self._reader.readline(MAX_MESSAGE_BYTES + 2)
        if not line:
            raise ConnectionError("server closed the connection")
        return decode_message(line)

    # -- operation helpers ---------------------------------------------------

    def ping(self) -> bool:
        return bool(self.request({"op": "ping"}).get("pong"))

    def info(self) -> dict[str, Any]:
        return self.request({"op": "info"})

    def create(
        self,
        system: str,
        runs: Iterable[Run],
        *,
        complete: bool = False,
        missing_runs: int = 0,
    ) -> dict[str, Any]:
        return self.request(
            {
                "op": "create",
                "system": system,
                "arena": runs_to_arena_payload(runs),
                "complete": complete,
                "missing_runs": missing_runs,
            }
        )

    def load(self, system: str, digest: str) -> dict[str, Any]:
        return self.request({"op": "load", "system": system, "digest": digest})

    def ingest(self, system: str, runs: Iterable[Run]) -> dict[str, Any]:
        return self.request(
            {"op": "ingest", "system": system, "arena": runs_to_arena_payload(runs)}
        )

    def query_response(
        self, system: str, queries: Sequence[dict[str, Any]]
    ) -> dict[str, Any]:
        """The full query response envelope (completeness fields included)."""
        return self.request(
            {"op": "query", "system": system, "queries": list(queries)}
        )

    def query(
        self, system: str, queries: Sequence[dict[str, Any]]
    ) -> list[dict[str, Any]]:
        """Just the per-query results of :meth:`query_response`."""
        results = self.query_response(system, queries)["results"]
        assert isinstance(results, list)
        return results

    def shutdown(self) -> None:
        self.request({"op": "shutdown"})
