"""Per-session write-ahead journals: serve state that survives a SIGKILL.

Sessions built over the wire (``create``/``load``/``ingest``) exist
only in server memory; this module makes them durable.  Every mutating
operation is appended to a per-session journal *before* it is applied
and acknowledged, so a crashed server replays its journals at boot and
rebuilds each session through the exact code path that built it live
(:meth:`repro.model.system.System.extend` /
:meth:`~repro.columnar.kernel.ColumnarKernel.refined`) -- the
differential suite pins the recovered answers bit-identical to the
uninterrupted session's, on both the numpy and stdlib backends.

Journal layout, borrowing the RunCache's integrity idiom:

* one directory per session (named by a sha256 prefix of the session
  name, which itself travels inside every record);
* one *segment file* per operation, ``seg-00000000.json`` onward, each
  written atomically (tmp + ``os.replace``; with ``fsync=True``, the
  default, the segment and its directory are fsynced before the rename
  is considered durable);
* every segment embeds a sha256 over its canonical record body,
  verified on replay.

Arena payloads ride in the segments verbatim in the v4 cache codec
(:mod:`repro.columnar.jsonio` format -- compressed column buffers, the
event alphabet encoded once), so a journaled ingest costs what a cache
write costs, not a re-serialization design.

Failure policy: replay applies the longest verifiable prefix.  The
first segment that is missing, torn, checksum-corrupt, or out of
sequence ends the prefix; it and everything after it are renamed to
``*.quarantined`` (preserved for forensics, never re-read) and the
session surfaces ``recovered: "partial"`` in its response envelopes.
A session whose *base* record (the leading ``create``/``load``) is
unrecoverable is skipped entirely and reported, never a crash.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator

#: Schema tag embedded in every segment envelope.
JOURNAL_FORMAT = "repro-serve-journal-v1"

#: Operations a journal records (the mutating subset of the wire ops).
JOURNAL_OPS = ("create", "load", "ingest")

_SEGMENT_PREFIX = "seg-"
_SEGMENT_SUFFIX = ".json"
_QUARANTINE_SUFFIX = ".quarantined"


def _body_sha256(body: Any) -> str:
    serial = json.dumps(body, separators=(",", ":"), sort_keys=True)
    return hashlib.sha256(serial.encode("utf-8")).hexdigest()


def session_dirname(name: str) -> str:
    """Directory name for a session: filesystem-safe, collision-free.

    Session names are arbitrary client strings; the directory name is a
    sha256 prefix and the real name travels inside every record.
    """
    return "s-" + hashlib.sha256(name.encode("utf-8")).hexdigest()[:16]


def _segment_path(directory: Path, seq: int) -> Path:
    return directory / f"{_SEGMENT_PREFIX}{seq:08d}{_SEGMENT_SUFFIX}"


def _fsync_dir(directory: Path) -> None:
    fd = os.open(directory, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


@dataclass
class JournalReplay:
    """What replaying one session journal yielded."""

    #: verified records, in append order (the replayable prefix)
    records: list[dict[str, Any]] = field(default_factory=list)
    #: "full" (every segment verified), "partial" (tail quarantined),
    #: or "empty" (no segments at all)
    status: str = "empty"
    #: why the prefix ended early, for partial replays
    reason: str | None = None
    #: segment filenames renamed to ``*.quarantined``
    quarantined: list[str] = field(default_factory=list)

    @property
    def session_name(self) -> str | None:
        """The session name recorded in the base segment, if any."""
        if not self.records:
            return None
        name = self.records[0].get("system")
        return name if isinstance(name, str) else None


class SessionJournal:
    """Append-only, checksummed journal of one session's mutations."""

    def __init__(self, directory: Path, *, fsync: bool = True) -> None:
        self.directory = Path(directory)
        self.fsync = fsync
        self._lock = threading.Lock()
        self._next_seq = self._scan_next_seq()

    def _scan_next_seq(self) -> int:
        if not self.directory.is_dir():
            return 0
        top = -1
        for seq in self._segment_seqs():
            top = max(top, seq)
        return top + 1

    def _segment_seqs(self) -> Iterator[int]:
        for entry in self.directory.iterdir():
            name = entry.name
            if not (
                name.startswith(_SEGMENT_PREFIX)
                and name.endswith(_SEGMENT_SUFFIX)
            ):
                continue
            stem = name[len(_SEGMENT_PREFIX) : -len(_SEGMENT_SUFFIX)]
            if stem.isdigit():
                yield int(stem)

    # -- writing -------------------------------------------------------------

    def append(self, record: dict[str, Any]) -> int:
        """Durably append one operation record; returns its sequence number.

        The write is atomic (tmp + rename in the same directory) and,
        with ``fsync`` on, durable before this method returns -- the
        write-ahead contract: an operation is only acknowledged to the
        client after its record would survive a crash.
        """
        if record.get("op") not in JOURNAL_OPS:
            raise ValueError(f"unjournalable op {record.get('op')!r}")
        with self._lock:
            seq = self._next_seq
            body = {"seq": seq, **record}
            envelope = {
                "format": JOURNAL_FORMAT,
                "sha256": _body_sha256(body),
                "record": body,
            }
            self.directory.mkdir(parents=True, exist_ok=True)
            path = _segment_path(self.directory, seq)
            tmp = path.with_name(path.name + ".tmp")
            with open(tmp, "w", encoding="utf-8") as fh:
                json.dump(envelope, fh, separators=(",", ":"), sort_keys=True)
                if self.fsync:
                    fh.flush()
                    os.fsync(fh.fileno())
            os.replace(tmp, path)
            if self.fsync:
                _fsync_dir(self.directory)
            self._next_seq = seq + 1
            return seq

    # -- replaying -----------------------------------------------------------

    def _verify_segment(self, path: Path, want_seq: int) -> dict[str, Any]:
        """One segment's record, or raises ValueError naming the defect."""
        try:
            envelope = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError) as exc:
            raise ValueError(f"{path.name}: unreadable ({exc})") from exc
        if not isinstance(envelope, dict) or envelope.get("format") != JOURNAL_FORMAT:
            raise ValueError(f"{path.name}: not a {JOURNAL_FORMAT} segment")
        body = envelope.get("record")
        if _body_sha256(body) != envelope.get("sha256"):
            raise ValueError(
                f"{path.name}: body does not match its recorded sha256 "
                f"(torn write, bit rot, or tampering)"
            )
        if not isinstance(body, dict) or body.get("seq") != want_seq:
            raise ValueError(
                f"{path.name}: sequence mismatch (want {want_seq}, "
                f"got {body.get('seq') if isinstance(body, dict) else body!r})"
            )
        return body

    def replay(self) -> JournalReplay:
        """Verify and return the longest good prefix; quarantine the rest.

        Stray ``*.tmp`` files (writes that never committed their rename)
        are deleted -- by construction no acknowledged operation ever
        lives in one.
        """
        replay = JournalReplay()
        if not self.directory.is_dir():
            return replay
        for stray in self.directory.glob("*.tmp"):
            stray.unlink(missing_ok=True)
        seqs = sorted(self._segment_seqs())
        if not seqs:
            return replay
        bad_from: int | None = None
        for index, seq in enumerate(seqs):
            path = _segment_path(self.directory, seq)
            if seq != index:
                replay.reason = (
                    f"{path.name}: sequence gap (expected seg {index:08d})"
                )
                bad_from = index
                break
            try:
                replay.records.append(self._verify_segment(path, seq))
            except ValueError as exc:
                replay.reason = str(exc)
                bad_from = index
                break
        if bad_from is None:
            replay.status = "full"
        else:
            replay.status = "partial" if replay.records else "empty"
            for seq in seqs[bad_from:]:
                path = _segment_path(self.directory, seq)
                if path.exists():
                    quarantined = path.with_name(path.name + _QUARANTINE_SUFFIX)
                    os.replace(path, quarantined)
                    replay.quarantined.append(quarantined.name)
        self._next_seq = len(replay.records)
        return replay


class ServeJournal:
    """The journal root: one directory of per-session journals."""

    def __init__(self, root: str | Path, *, fsync: bool = True) -> None:
        self.root = Path(root)
        self.fsync = fsync
        self.root.mkdir(parents=True, exist_ok=True)
        self._sessions: dict[str, SessionJournal] = {}

    def session(self, name: str) -> SessionJournal:
        """The (possibly fresh) journal for one session name."""
        dirname = session_dirname(name)
        journal = self._sessions.get(dirname)
        if journal is None:
            journal = SessionJournal(self.root / dirname, fsync=self.fsync)
            self._sessions[dirname] = journal
        return journal

    def discover(self) -> Iterator[SessionJournal]:
        """Every on-disk session journal, in stable (dirname) order."""
        for entry in sorted(self.root.iterdir()):
            if entry.is_dir() and entry.name.startswith("s-"):
                journal = self._sessions.get(entry.name)
                if journal is None:
                    journal = SessionJournal(entry, fsync=self.fsync)
                    self._sessions[entry.name] = journal
                yield journal

    def sync(self) -> None:
        """Force-sync every journal to disk (the graceful-drain flush).

        With ``fsync=True`` every append is already durable and this
        only settles the directories; with ``fsync=False`` it is the
        one durability point a clean shutdown gets.
        """
        for entry in sorted(self.root.iterdir()):
            if not (entry.is_dir() and entry.name.startswith("s-")):
                continue
            for segment in sorted(entry.glob(f"{_SEGMENT_PREFIX}*{_SEGMENT_SUFFIX}")):
                fd = os.open(segment, os.O_RDONLY)
                try:
                    os.fsync(fd)
                finally:
                    os.close(fd)
            _fsync_dir(entry)
        _fsync_dir(self.root)

    def describe(self) -> dict[str, Any]:
        """The ``info`` op's journal section."""
        return {
            "root": str(self.root),
            "fsync": self.fsync,
            "sessions": len([p for p in self.root.iterdir() if p.is_dir()]),
        }
