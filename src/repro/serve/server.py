"""The asyncio service: newline-JSON requests over TCP, one task per client.

Built on stdlib asyncio streams only -- no web framework, no new
dependencies.  The epistemic kernel is CPU-bound pure-Python, so the
server runs queries inline on the event loop (a worker pool would add
latency without adding parallelism under the GIL); the *disk-touching*
ops (``load``, journal appends, and the cache scan inside ``info``) go
through ``loop.run_in_executor`` so a slow filesystem never stalls
connected clients.  Lint rules ASY001 (no blocking calls in
coroutines) and ASY002 (no fire-and-forget tasks) pin the invariants
statically.

Overload protection.  Admission control bounds the work the loop will
accept: at most ``max_inflight`` heavy requests run concurrently and at
most ``max_pending`` more may queue for a slot; anything beyond that is
*shed* immediately with a structured ``overloaded`` error carrying
``retry_after_ms``, so a burst degrades into cheap, honest rejections
instead of unbounded queueing.  Per-request cooperative deadlines
(``deadline_ms`` on the wire, ``request_deadline`` server-side,
whichever is sooner -- mirroring ``ExecutionConfig.deadline`` in the
runtime) turn stalls into ``deadline-exceeded``; inside a query batch
the deadline is checked per query, so one expensive query sheds the
*rest* of its batch, not the whole connection.  Slow clients are bounded
by a write timeout, idle ones are reaped, and shutdown drains: the
listener closes, in-flight requests finish (or shed) within
``drain_timeout``, already-pipelined lines get a ``drain_grace`` window,
and the journals are fsynced last.

Consistency.  A query batch captures its session's
:class:`~repro.serve.state.SessionEpoch` once, then yields to the loop
between queries -- a concurrent ingest swaps the epoch without
disturbing the batch, and every answer matches the ``generation`` its
envelope reports.  Mutations follow the write-ahead discipline
(prepare on the loop, journal on the executor, commit on the loop)
under a per-session lock so journal order is apply order.
"""

from __future__ import annotations

import asyncio
import contextlib
from dataclasses import asdict, dataclass
from typing import Any

from repro.runtime import Deadline
from repro.serve.protocol import (
    MAX_MESSAGE_BYTES,
    WireError,
    decode_message,
    encode_message,
    error_payload,
    verify_checksum,
    wire_checksum,
)
from repro.serve.state import ServeState

#: Operations the dispatcher accepts.
OPERATIONS = ("ping", "info", "create", "load", "query", "ingest", "shutdown")

#: Operations that pass through admission control.  ``ping`` stays
#: admission-free so liveness probes work *because of* overload, and
#: ``shutdown`` so an overloaded server can still be drained.
ADMITTED_OPERATIONS = ("info", "create", "load", "query", "ingest")


@dataclass(frozen=True)
class ServerLimits:
    """Admission-control and robustness knobs of one server.

    The defaults suit an interactive single-host deployment; the soak
    harness tightens them to force the shedding paths.
    """

    #: Heavy requests allowed to run concurrently.
    max_inflight: int = 8
    #: Heavy requests allowed to *wait* for a slot before shedding.
    max_pending: int = 32
    #: Longest a request may wait for admission before it is shed.
    admission_timeout: float = 2.0
    #: Backoff hint stamped on ``overloaded`` responses.
    retry_after_ms: int = 50
    #: Server-side ceiling on per-request deadlines (None: unbounded).
    request_deadline: float | None = None
    #: Longest a response write may stall on a slow client.
    write_timeout: float = 15.0
    #: Idle-connection reap threshold.
    idle_timeout: float = 300.0
    #: Post-shutdown window for requests a client already pipelined.
    drain_grace: float = 0.25
    #: Longest ``stop()`` waits for in-flight connections to finish.
    drain_timeout: float = 5.0

    def __post_init__(self) -> None:
        if self.max_inflight < 1:
            raise ValueError("max_inflight must be at least 1")
        if self.max_pending < 0:
            raise ValueError("max_pending must be non-negative")
        if self.retry_after_ms < 0:
            raise ValueError("retry_after_ms must be non-negative")
        for name in (
            "admission_timeout",
            "write_timeout",
            "idle_timeout",
            "drain_grace",
            "drain_timeout",
        ):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        if self.request_deadline is not None and self.request_deadline <= 0:
            raise ValueError("request_deadline must be positive (or None)")


class EpistemicServer:
    """A :class:`ServeState` behind a TCP listener."""

    def __init__(
        self,
        state: ServeState,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        limits: ServerLimits | None = None,
    ) -> None:
        self.state = state
        self.host = host
        self.port = port
        self.limits = limits or ServerLimits()
        self._server: asyncio.base_events.Server | None = None
        self._stopping = asyncio.Event()
        self._gate = asyncio.Semaphore(self.limits.max_inflight)
        self._pending = 0
        self._conn_tasks: set[asyncio.Task[None]] = set()
        self._session_locks: dict[str, asyncio.Lock] = {}
        self.metrics: dict[str, int] = {
            "requests": 0,
            "shed": 0,
            "deadline_exceeded": 0,
            "bad_checksum": 0,
            "reaped_idle": 0,
            "timed_out_writes": 0,
        }

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> tuple[str, int]:
        """Bind and listen; returns the bound (host, port)."""
        self._server = await asyncio.start_server(
            self._handle_client,
            self.host,
            self.port,
            limit=MAX_MESSAGE_BYTES,
        )
        sock = self._server.sockets[0]
        self.host, self.port = sock.getsockname()[:2]
        return self.host, self.port

    async def wait_stopped(self) -> None:
        await self._stopping.wait()

    async def stop(self) -> None:
        """Graceful drain: close the listener, let in-flight work land,
        cancel stragglers, then settle the journals on disk."""
        self._stopping.set()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._conn_tasks:
            draining = set(self._conn_tasks)
            _done, pending = await asyncio.wait(
                draining, timeout=self.limits.drain_timeout
            )
            for task in pending:
                task.cancel()
            if pending:
                await asyncio.wait(pending, timeout=1.0)
        if self.state.journal is not None:
            await asyncio.get_running_loop().run_in_executor(
                None, self.state.journal.sync
            )

    async def run(self) -> None:
        """start(), serve until a shutdown request, then drain and close."""
        if self._server is None:
            await self.start()
        try:
            await self.wait_stopped()
        finally:
            await self.stop()

    # -- connection handling -------------------------------------------------

    async def _next_line(self, reader: asyncio.StreamReader) -> bytes:
        """One request line, racing shutdown and the idle timeout.

        Returns ``b""`` to close the connection (EOF, or the drain
        grace expired); raises :class:`asyncio.TimeoutError` for an
        idle reap; propagates readline's oversize ``ValueError``.
        """
        if self._stopping.is_set():
            # Drain mode: only lines the client already pipelined.
            return await asyncio.wait_for(
                reader.readline(), timeout=self.limits.drain_grace
            )
        read = asyncio.ensure_future(reader.readline())
        stop = asyncio.ensure_future(self._stopping.wait())
        try:
            done, _pending = await asyncio.wait(
                {read, stop},
                timeout=self.limits.idle_timeout,
                return_when=asyncio.FIRST_COMPLETED,
            )
        except BaseException:
            read.cancel()
            stop.cancel()
            raise
        if read in done:
            stop.cancel()
            return read.result()
        if stop in done:
            # Shutdown arrived while this connection idled: grant the
            # drain grace to bytes already in flight, then close.
            try:
                return await asyncio.wait_for(
                    read, timeout=self.limits.drain_grace
                )
            except asyncio.TimeoutError:
                return b""
        # Idle timeout: reap.
        read.cancel()
        stop.cancel()
        with contextlib.suppress(asyncio.CancelledError):
            await read
        raise asyncio.TimeoutError

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        assert task is not None
        self._conn_tasks.add(task)
        try:
            while True:
                try:
                    line = await self._next_line(reader)
                except asyncio.TimeoutError:
                    if self._stopping.is_set():
                        break  # drain grace expired: clean close
                    self.metrics["reaped_idle"] += 1
                    break
                except (ValueError, asyncio.LimitOverrunError):
                    # A line beyond the stream limit: answer and drop the
                    # connection (the stream cannot resynchronize).
                    writer.write(
                        encode_message(
                            error_payload(
                                "too-large",
                                f"request line exceeds {MAX_MESSAGE_BYTES} bytes",
                            )
                        )
                    )
                    await writer.drain()
                    break
                if not line:
                    break  # EOF: client hung up
                if not line.strip():
                    continue  # blank keep-alive line
                response = await self._respond(line)
                writer.write(encode_message(response))
                try:
                    await asyncio.wait_for(
                        writer.drain(), timeout=self.limits.write_timeout
                    )
                except asyncio.TimeoutError:
                    # Slow client: its socket buffer stayed full past the
                    # write timeout.  Drop it rather than hold memory.
                    self.metrics["timed_out_writes"] += 1
                    break
                if response.get("stopping"):
                    self._stopping.set()
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass  # client vanished mid-write; nothing to answer
        finally:
            self._conn_tasks.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, asyncio.TimeoutError):
                pass

    async def _respond(self, line: bytes) -> dict[str, Any]:
        self.metrics["requests"] += 1
        request: dict[str, Any] | None = None
        try:
            request = decode_message(line)
            if not verify_checksum(request):
                self.metrics["bad_checksum"] += 1
                raise WireError(
                    "bad-checksum",
                    "request checksum does not match its body "
                    "(bytes corrupted in flight; safe to retry)",
                )
            response = await self._dispatch(request)
            response.setdefault("ok", True)
        except WireError as exc:
            response = error_payload(exc.code, exc.message, extra=exc.extra)
        except Exception as exc:  # never let one request kill the connection
            response = error_payload("internal", f"{type(exc).__name__}: {exc}")
        if request is not None and "id" in request:
            response["id"] = request["id"]
        if request is not None and "checksum" in request:
            # The client opted into end-to-end integrity: stamp the
            # response so it can verify our bytes survived the wire.
            response["checksum"] = wire_checksum(response)
        return response

    # -- admission control ---------------------------------------------------

    def _overloaded(self, message: str) -> WireError:
        self.metrics["shed"] += 1
        return WireError(
            "overloaded",
            message,
            extra={"retry_after_ms": self.limits.retry_after_ms},
        )

    async def _admit(self) -> None:
        """Acquire an in-flight slot or shed the request."""
        if not self._gate.locked():
            # A slot is free: acquire() returns synchronously (we are on
            # the loop thread, so nothing can race the check).
            await self._gate.acquire()
            return
        # All slots busy: this request must wait -- but only
        # ``max_pending`` requests may, the rest are shed immediately.
        if self._pending >= self.limits.max_pending:
            raise self._overloaded(
                f"admission queue is full ({self.limits.max_pending} pending); "
                f"request shed before any work"
            )
        self._pending += 1
        try:
            await asyncio.wait_for(
                self._gate.acquire(), timeout=self.limits.admission_timeout
            )
        except asyncio.TimeoutError:
            raise self._overloaded(
                f"no execution slot freed within "
                f"{self.limits.admission_timeout}s; request shed before any work"
            ) from None
        finally:
            self._pending -= 1

    def _deadline_for(self, request: dict[str, Any]) -> Deadline:
        """The effective deadline: sooner of the client's and the server's."""
        ms = request.get("deadline_ms")
        if ms is not None and (
            not isinstance(ms, (int, float)) or isinstance(ms, bool) or ms < 0
        ):
            raise WireError(
                "bad-request", "'deadline_ms' must be a non-negative number"
            )
        seconds = [
            s
            for s in (
                self.limits.request_deadline,
                None if ms is None else float(ms) / 1000.0,
            )
            if s is not None
        ]
        return Deadline.after(min(seconds) if seconds else None)

    def _session_lock(self, name: str) -> asyncio.Lock:
        """The per-session mutation lock (journal order == apply order)."""
        lock = self._session_locks.get(name)
        if lock is None:
            lock = asyncio.Lock()
            self._session_locks[name] = lock
        return lock

    async def _journal_append(self, record: dict[str, Any]) -> None:
        """The write-ahead step, off the loop (it fsyncs)."""
        if self.state.journal is None:
            return
        await asyncio.get_running_loop().run_in_executor(
            None, self.state.journal_append, record
        )

    # -- the operations ------------------------------------------------------

    async def _dispatch(self, request: dict[str, Any]) -> dict[str, Any]:
        op = request.get("op")
        if not isinstance(op, str) or op not in OPERATIONS:
            raise WireError(
                "unknown-op", f"unknown op {op!r}; expected one of {list(OPERATIONS)}"
            )
        self.state.count(op)
        if op == "ping":
            return {"pong": True}
        if op == "shutdown":
            return {"stopping": True}
        deadline = self._deadline_for(request)
        await self._admit()
        try:
            if deadline.expired:
                self.metrics["deadline_exceeded"] += 1
                raise WireError(
                    "deadline-exceeded",
                    "request deadline expired while queued for admission; "
                    "no work was done",
                )
            return await self._serve_admitted(op, request, deadline)
        finally:
            self._gate.release()

    async def _serve_admitted(
        self, op: str, request: dict[str, Any], deadline: Deadline
    ) -> dict[str, Any]:
        state = self.state
        loop = asyncio.get_running_loop()
        if op == "info":
            # describe() scans the cache directory -- executor, not loop.
            payload = await loop.run_in_executor(None, state.describe)
            payload["server"] = {
                "limits": asdict(self.limits),
                "metrics": dict(self.metrics),
                "connections": len(self._conn_tasks),
            }
            return payload
        if op == "create":
            # Write-ahead: prepare (claims the name; every validation
            # rejection fires here), journal, then commit.  No session
            # lock needed -- the claim serializes creates, and ingests
            # cannot target the name until commit registers it.
            prepared = state.prepare_create(
                request.get("system"),
                request.get("arena"),
                complete=bool(request.get("complete", False)),
                missing_runs=int(request.get("missing_runs", 0)),
            )
            try:
                await self._journal_append(prepared.record)
            except BaseException:
                state.release(prepared.name)
                raise
            session = state.commit_create(prepared)
            return {"created": session.name, **session.describe()}
        if op == "load":
            # Claim the name on the loop thread, do the disk work (cache
            # read + journal append) off it.
            name = state.claim(request.get("system", request.get("digest")))
            try:
                session = await loop.run_in_executor(
                    None, state.load_into, name, request.get("digest")
                )
            except BaseException:
                state.release(name)
                raise
            return {"loaded": session.name, **session.describe()}
        if op == "ingest":
            session = state.session(request.get("system"))
            async with self._session_lock(session.name):
                prepared = state.prepare_ingest(
                    session.name, request.get("arena")
                )
                await self._journal_append(prepared.record)
                result = state.commit_ingest(prepared)
            return {**session.envelope(), **result}
        # op == "query"
        session = state.session(request.get("system"))
        queries = request.get("queries")
        if not isinstance(queries, list):
            raise WireError("bad-request", "'queries' must be a list")
        # One epoch for the whole batch: the yields below let other
        # connections (including ingests) interleave without this batch
        # ever seeing a half-switched system.
        epoch = session.epoch
        results: list[dict[str, Any]] = []
        for query in queries:
            if deadline.expired:
                # Deadline isolation: shed the *remaining* queries, keep
                # every answer already computed.
                self.metrics["deadline_exceeded"] += 1
                results.append(
                    {
                        "ok": False,
                        "error": "deadline-exceeded",
                        "message": "request deadline exceeded before this query ran",
                    }
                )
                continue
            results.append(session.run_query(query, epoch))
            await asyncio.sleep(0)  # cooperative yield between batch queries
        return {**session.envelope(epoch), "results": results}


async def serve_forever(
    state: ServeState,
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    limits: ServerLimits | None = None,
) -> None:
    """Convenience entry point used by the harness ``serve`` subcommand."""
    server = EpistemicServer(state, host=host, port=port, limits=limits)
    bound_host, bound_port = await server.start()
    print(f"repro.serve listening on {bound_host}:{bound_port}", flush=True)
    await server.run()
