"""The asyncio service: newline-JSON requests over TCP, one task per client.

Built on stdlib asyncio streams only -- no web framework, no new
dependencies.  The epistemic kernel is CPU-bound pure-Python, so the
server runs queries inline on the event loop (a worker pool would add
latency without adding parallelism under the GIL); the *disk-touching*
ops (``load`` and the cache scan inside ``info``) go through
``loop.run_in_executor`` so a slow filesystem never stalls connected
clients.  Lint rule ASY001 pins the no-blocking-calls-in-coroutines
invariant statically.

Concurrency note: the executor ops mutate :class:`ServeState` from a
worker thread, but each request is awaited to completion before its
connection reads the next line, and name claiming (``_claim_name``)
happens-before the executor hop on the loop thread -- two concurrent
loads cannot race one name.
"""

from __future__ import annotations

import asyncio
from typing import Any

from repro.serve.protocol import (
    MAX_MESSAGE_BYTES,
    WireError,
    decode_message,
    encode_message,
    error_payload,
)
from repro.serve.state import ServeState

#: Operations the dispatcher accepts.
OPERATIONS = ("ping", "info", "create", "load", "query", "ingest", "shutdown")


class EpistemicServer:
    """A :class:`ServeState` behind a TCP listener."""

    def __init__(
        self,
        state: ServeState,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.state = state
        self.host = host
        self.port = port
        self._server: asyncio.base_events.Server | None = None
        self._stopping = asyncio.Event()

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> tuple[str, int]:
        """Bind and listen; returns the bound (host, port)."""
        self._server = await asyncio.start_server(
            self._handle_client,
            self.host,
            self.port,
            limit=MAX_MESSAGE_BYTES,
        )
        sock = self._server.sockets[0]
        self.host, self.port = sock.getsockname()[:2]
        return self.host, self.port

    async def wait_stopped(self) -> None:
        await self._stopping.wait()

    async def stop(self) -> None:
        self._stopping.set()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def run(self) -> None:
        """start(), serve until a shutdown request, then close."""
        if self._server is None:
            await self.start()
        try:
            await self.wait_stopped()
        finally:
            await self.stop()

    # -- connection handling -------------------------------------------------

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while not self._stopping.is_set():
                try:
                    line = await reader.readline()
                except (ValueError, asyncio.LimitOverrunError):
                    # A line beyond the stream limit: answer and drop the
                    # connection (the stream cannot resynchronize).
                    writer.write(
                        encode_message(
                            error_payload(
                                "too-large",
                                f"request line exceeds {MAX_MESSAGE_BYTES} bytes",
                            )
                        )
                    )
                    await writer.drain()
                    break
                if not line:
                    break  # EOF: client hung up
                if not line.strip():
                    continue  # blank keep-alive line
                response = await self._respond(line)
                writer.write(encode_message(response))
                await writer.drain()
                if response.get("stopping"):
                    self._stopping.set()
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass  # client vanished mid-write; nothing to answer
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _respond(self, line: bytes) -> dict[str, Any]:
        request: dict[str, Any] | None = None
        try:
            request = decode_message(line)
            response = await self._dispatch(request)
        except WireError as exc:
            return error_payload(exc.code, exc.message, request=request)
        except Exception as exc:  # never let one request kill the connection
            return error_payload(
                "internal", f"{type(exc).__name__}: {exc}", request=request
            )
        response.setdefault("ok", True)
        if request is not None and "id" in request:
            response["id"] = request["id"]
        return response

    # -- the operations ------------------------------------------------------

    async def _dispatch(self, request: dict[str, Any]) -> dict[str, Any]:
        op = request.get("op")
        if not isinstance(op, str) or op not in OPERATIONS:
            raise WireError(
                "unknown-op", f"unknown op {op!r}; expected one of {list(OPERATIONS)}"
            )
        state = self.state
        state.count(op)
        if op == "ping":
            return {"pong": True}
        if op == "shutdown":
            return {"stopping": True}
        loop = asyncio.get_running_loop()
        if op == "info":
            # describe() scans the cache directory -- executor, not loop.
            return await loop.run_in_executor(None, state.describe)
        if op == "create":
            session = state.create(
                request.get("system"),
                request.get("arena"),
                complete=bool(request.get("complete", False)),
                missing_runs=int(request.get("missing_runs", 0)),
            )
            return {"created": session.name, **session.describe()}
        if op == "load":
            # Claim the name on the loop thread, do the disk work off it.
            name = state.claim(request.get("system", request.get("digest")))
            try:
                session = await loop.run_in_executor(
                    None, state.load_into, name, request.get("digest")
                )
            except BaseException:
                state.release(name)
                raise
            return {"loaded": session.name, **session.describe()}
        if op == "ingest":
            session = state.session(request.get("system"))
            result = session.ingest(request.get("arena"))
            return {**session.envelope(), **result}
        # op == "query"
        session = state.session(request.get("system"))
        queries = request.get("queries")
        if not isinstance(queries, list):
            raise WireError("bad-request", "'queries' must be a list")
        results = [session.run_query(q) for q in queries]
        return {**session.envelope(), "results": results}


async def serve_forever(
    state: ServeState, *, host: str = "127.0.0.1", port: int = 0
) -> None:
    """Convenience entry point used by the harness ``serve`` subcommand."""
    server = EpistemicServer(state, host=host, port=port)
    bound_host, bound_port = await server.start()
    print(f"repro.serve listening on {bound_host}:{bound_port}", flush=True)
    await server.run()
