"""Wire protocol of the epistemic query service.

Newline-delimited JSON over a byte stream: every request and every
response is one JSON object on one line, UTF-8 encoded.  No framing
bytes, no length prefixes -- a session is readable with ``nc`` and
scriptable from any language with a socket and a JSON library.

Request envelope::

    {"op": <operation>, "id": <optional client tag>, ...fields}

The ``id`` field, when present, is echoed verbatim on the response so
clients may pipeline requests over one connection.  Responses carry
``"ok": true`` plus operation fields, or ``"ok": false`` with a stable
``error`` code and a human-readable ``message``.

Operations (see :mod:`repro.serve.state` for field semantics):

========== ===========================================================
``ping``     liveness probe
``info``     server + per-system descriptors and counters
``create``   register a system from an inline arena payload
``load``     load a precomputed system from the RunCache by spec digest
``query``    evaluate a batch of epistemic queries against one system
``ingest``   stream new runs (an arena payload) into a live system via
             incremental class refinement
``shutdown`` stop the server after responding (graceful drain)
========== ===========================================================

Error codes: ``bad-json``, ``bad-request``, ``unknown-op``,
``unknown-system``, ``duplicate-system``, ``not-found``,
``corrupt-entry``, ``no-cache``, ``bad-formula``, ``bad-point``,
``bad-arena``, ``empty-system``, ``too-large``, ``overloaded``,
``deadline-exceeded``, ``bad-checksum``, ``internal``.

Two codes carry extra machine-readable fields: ``overloaded`` responses
include ``retry_after_ms`` (the server's backoff hint -- the admission
queue is full and the request was shed before doing any work), and
``deadline-exceeded`` marks work shed by the per-request cooperative
deadline.  Both are *safe to retry*: a shed request had no effect.

End-to-end integrity (optional): a request may carry a ``checksum``
field -- :func:`wire_checksum` over the rest of the object.  The server
verifies it (mismatch -> ``bad-checksum``, another retry-safe shed) and
stamps the same checksum field onto its response so the client can
detect bytes corrupted in flight in *either* direction.  The server and
its clients are themselves processes over an unreliable channel; the
checksum turns silent corruption into structured, retryable
uncertainty, which is the only honest degradation mode.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any

#: One line must fit a serialized arena payload; beyond this the
#: connection is answered with ``too-large`` and closed.
MAX_MESSAGE_BYTES = 64 * 1024 * 1024

#: Hex digits of the sha256 kept in the ``checksum`` field.
CHECKSUM_HEX_DIGITS = 16


class WireError(Exception):
    """A request that cannot be served, with its wire error code.

    ``extra`` carries machine-readable fields the error response must
    include beside the code -- e.g. ``overloaded``'s ``retry_after_ms``.
    """

    def __init__(
        self, code: str, message: str, *, extra: dict[str, Any] | None = None
    ) -> None:
        super().__init__(message)
        self.code = code
        self.message = message
        self.extra = extra


def encode_message(payload: dict[str, Any]) -> bytes:
    """One response/request as a single JSON line (UTF-8, newline-terminated)."""
    return (
        json.dumps(payload, separators=(",", ":"), sort_keys=True) + "\n"
    ).encode("utf-8")


def decode_message(line: bytes) -> dict[str, Any]:
    """Parse one received line; raises :class:`WireError` on junk."""
    try:
        payload = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise WireError("bad-json", f"unparseable request line: {exc}") from exc
    if not isinstance(payload, dict):
        raise WireError("bad-request", "request must be a JSON object")
    return payload


def wire_checksum(payload: dict[str, Any]) -> str:
    """Integrity checksum of a message: sha256 over its canonical
    encoding with the ``checksum`` field itself excluded."""
    body = {k: v for k, v in payload.items() if k != "checksum"}
    serial = json.dumps(body, separators=(",", ":"), sort_keys=True)
    return hashlib.sha256(serial.encode("utf-8")).hexdigest()[:CHECKSUM_HEX_DIGITS]


def verify_checksum(payload: dict[str, Any]) -> bool:
    """True iff the payload's ``checksum`` field (if any) matches its body.

    Messages without a checksum verify trivially -- integrity is an
    opt-in protocol extension, not a version break.
    """
    recorded = payload.get("checksum")
    if recorded is None:
        return True
    return isinstance(recorded, str) and recorded == wire_checksum(payload)


def error_payload(
    code: str,
    message: str,
    *,
    request: dict[str, Any] | None = None,
    extra: dict[str, Any] | None = None,
) -> dict[str, Any]:
    """The standard error response shape (echoing the client tag)."""
    out: dict[str, Any] = {"ok": False, "error": code, "message": message}
    if extra:
        out.update(extra)
    if request is not None and "id" in request:
        out["id"] = request["id"]
    return out
