"""Wire protocol of the epistemic query service.

Newline-delimited JSON over a byte stream: every request and every
response is one JSON object on one line, UTF-8 encoded.  No framing
bytes, no length prefixes -- a session is readable with ``nc`` and
scriptable from any language with a socket and a JSON library.

Request envelope::

    {"op": <operation>, "id": <optional client tag>, ...fields}

The ``id`` field, when present, is echoed verbatim on the response so
clients may pipeline requests over one connection.  Responses carry
``"ok": true`` plus operation fields, or ``"ok": false`` with a stable
``error`` code and a human-readable ``message``.

Operations (see :mod:`repro.serve.state` for field semantics):

========== ===========================================================
``ping``     liveness probe
``info``     server + per-system descriptors and counters
``create``   register a system from an inline arena payload
``load``     load a precomputed system from the RunCache by spec digest
``query``    evaluate a batch of epistemic queries against one system
``ingest``   stream new runs (an arena payload) into a live system via
             incremental class refinement
``shutdown`` stop the server after responding
========== ===========================================================

Error codes: ``bad-json``, ``bad-request``, ``unknown-op``,
``unknown-system``, ``duplicate-system``, ``not-found``,
``corrupt-entry``, ``no-cache``, ``bad-formula``, ``bad-point``,
``bad-arena``, ``empty-system``, ``too-large``, ``internal``.
"""

from __future__ import annotations

import json
from typing import Any

#: One line must fit a serialized arena payload; beyond this the
#: connection is answered with ``too-large`` and closed.
MAX_MESSAGE_BYTES = 64 * 1024 * 1024


class WireError(Exception):
    """A request that cannot be served, with its wire error code."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(message)
        self.code = code
        self.message = message


def encode_message(payload: dict[str, Any]) -> bytes:
    """One response/request as a single JSON line (UTF-8, newline-terminated)."""
    return (
        json.dumps(payload, separators=(",", ":"), sort_keys=True) + "\n"
    ).encode("utf-8")


def decode_message(line: bytes) -> dict[str, Any]:
    """Parse one received line; raises :class:`WireError` on junk."""
    try:
        payload = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise WireError("bad-json", f"unparseable request line: {exc}") from exc
    if not isinstance(payload, dict):
        raise WireError("bad-request", "request must be a JSON object")
    return payload


def error_payload(
    code: str, message: str, *, request: dict[str, Any] | None = None
) -> dict[str, Any]:
    """The standard error response shape (echoing the client tag)."""
    out: dict[str, Any] = {"ok": False, "error": code, "message": message}
    if request is not None and "id" in request:
        out["id"] = request["id"]
    return out
