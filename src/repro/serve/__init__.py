"""repro.serve: the online epistemic query service.

Everything the repo computes -- explorations, class indexes, knowledge
verdicts -- is a pure function of specs, which makes it *servable*: a
long-running process can hold systems hot (arena + trie + class tables
resident) and answer Knows / E^k / C_G / formula queries over a socket
in microseconds instead of re-running a harness per question.

* :mod:`repro.serve.protocol` -- newline-delimited JSON wire format,
  error codes, size limits, optional end-to-end checksums;
* :mod:`repro.serve.journal`  -- per-session write-ahead journals:
  ``create``/``load``/``ingest`` are durable before they are
  acknowledged, and a crashed server replays them at boot;
* :mod:`repro.serve.state`    -- :class:`SystemSession` (one served
  system + checkers + formula intern table, versioned in immutable
  :class:`SessionEpoch` snapshots) and :class:`ServeState` (the session
  registry, RunCache binding, journal wiring, and crash recovery);
* :mod:`repro.serve.server`   -- :class:`EpistemicServer`, the stdlib
  asyncio TCP layer (no new dependencies), with admission control,
  per-request deadlines, and graceful drain (:class:`ServerLimits`);
* :mod:`repro.serve.client`   -- a small synchronous client with read
  timeouts, bounded seeded-jitter retry, and optional checksums;
* :mod:`repro.serve.bench`    -- the BENCH_serve.json latency benchmark
  (including the journaling-overhead gate).

Online ingestion is the headline: ``ingest`` streams new runs into a
live system through :meth:`System.extend`, which refines the columnar
kernel's history trie and class tables incrementally -- answers stay
bit-identical to a from-scratch rebuild (pinned by the differential
tests) without paying for one.  Journal replay reuses the same path,
so answers after crash recovery are bit-identical too.

Coroutines in this package must never block the event loop: lint rule
ASY001 statically flags ``time.sleep``/sync file I/O/``subprocess``
calls inside ``async def`` here, and ASY002 flags fire-and-forget
``asyncio.create_task`` calls whose failures nothing would observe.

Start a server with ``python -m repro.harness serve``; see the README
quickstart for a worked client session.
"""

from repro.serve.client import (
    ServeClient,
    ServeClientError,
    ServeTimeout,
    runs_to_arena_payload,
)
from repro.serve.journal import ServeJournal, SessionJournal
from repro.serve.protocol import MAX_MESSAGE_BYTES, WireError, wire_checksum
from repro.serve.server import EpistemicServer, ServerLimits, serve_forever
from repro.serve.state import RecoveryReport, ServeState, SessionEpoch, SystemSession

__all__ = [
    "EpistemicServer",
    "MAX_MESSAGE_BYTES",
    "RecoveryReport",
    "ServeClient",
    "ServeClientError",
    "ServeJournal",
    "ServeState",
    "ServeTimeout",
    "ServerLimits",
    "SessionEpoch",
    "SessionJournal",
    "SystemSession",
    "WireError",
    "runs_to_arena_payload",
    "serve_forever",
    "wire_checksum",
]
