"""repro.serve: the online epistemic query service.

Everything the repo computes -- explorations, class indexes, knowledge
verdicts -- is a pure function of specs, which makes it *servable*: a
long-running process can hold systems hot (arena + trie + class tables
resident) and answer Knows / E^k / C_G / formula queries over a socket
in microseconds instead of re-running a harness per question.

* :mod:`repro.serve.protocol` -- newline-delimited JSON wire format,
  error codes, size limits;
* :mod:`repro.serve.state`    -- :class:`SystemSession` (one served
  system + checkers + formula intern table) and :class:`ServeState`
  (the session registry and RunCache binding);
* :mod:`repro.serve.server`   -- :class:`EpistemicServer`, the stdlib
  asyncio TCP layer (no new dependencies);
* :mod:`repro.serve.client`   -- a small synchronous client for tests,
  benchmarks, and scripted sessions;
* :mod:`repro.serve.bench`    -- the BENCH_serve.json latency benchmark.

Online ingestion is the headline: ``ingest`` streams new runs into a
live system through :meth:`System.extend`, which refines the columnar
kernel's history trie and class tables incrementally -- answers stay
bit-identical to a from-scratch rebuild (pinned by the differential
tests) without paying for one.

Coroutines in this package must never block the event loop: lint rule
ASY001 statically flags ``time.sleep``/sync file I/O/``subprocess``
calls inside ``async def`` here.

Start a server with ``python -m repro.harness serve``; see the README
quickstart for a worked client session.
"""

from repro.serve.client import ServeClient, ServeClientError, runs_to_arena_payload
from repro.serve.protocol import MAX_MESSAGE_BYTES, WireError
from repro.serve.server import EpistemicServer, serve_forever
from repro.serve.state import ServeState, SystemSession

__all__ = [
    "EpistemicServer",
    "MAX_MESSAGE_BYTES",
    "ServeClient",
    "ServeClientError",
    "ServeState",
    "SystemSession",
    "WireError",
    "runs_to_arena_payload",
    "serve_forever",
]
