"""Server-side state: systems under service and the query dispatcher.

One :class:`SystemSession` wraps a live :class:`~repro.model.system.System`
together with its model checker, group checker, and a wire-formula
intern table.  Interning matters: the model checker memoizes per
``Formula`` *instance*, so decoding the same wire payload to the same
object keeps the local/point/temporal caches hot across requests.

Online ingestion goes through :meth:`SystemSession.ingest`: the arena
payload decodes to runs, duplicates (against the live run set and
within the batch) are dropped, and :meth:`System.extend` derives the
child system by incremental class refinement -- the history trie and
per-process class tables grow in place of a from-scratch reindex, with
answers pinned bit-identical to a rebuild by the differential tests.
Each ingest bumps the session ``generation`` so clients can correlate
answers with the run set that produced them.

All methods here are synchronous; the asyncio layer
(:mod:`repro.serve.server`) shunts the disk-touching ones through an
executor so the event loop never blocks.
"""

from __future__ import annotations

import warnings
from typing import TYPE_CHECKING, Any

from repro.columnar.arena import decode_runs
from repro.columnar.jsonio import arena_from_jsonable
from repro.knowledge.formulas import Formula, Knows
from repro.knowledge.group import GroupChecker
from repro.knowledge.semantics import ModelChecker
from repro.knowledge.wire import formula_from_jsonable, formula_wire_key
from repro.model.events import ProcessId
from repro.model.run import Point, Run
from repro.model.system import IncompleteSystemWarning, System
from repro.serve.protocol import WireError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.cache import RunCache

#: Query kinds the ``query`` op dispatches on.
QUERY_KINDS = (
    "holds",
    "knows",
    "e",
    "max_e_depth",
    "ck",
    "ck_points",
    "known_crashed",
    "valid",
)

_MAX_E_CAP = 64  # ladder cap: depth requests beyond this are bad-request


def _decode_arena_runs(payload: Any) -> tuple[Run, ...]:
    """An inline ``arena`` payload -> runs, with wire-coded failures."""
    if not isinstance(payload, dict):
        raise WireError("bad-arena", "'arena' must be an arena JSON object")
    try:
        return decode_runs(arena_from_jsonable(payload))
    except WireError:
        raise
    except Exception as exc:
        raise WireError("bad-arena", f"undecodable arena payload: {exc}") from exc


class SystemSession:
    """One named system under service, plus its checkers and caches."""

    def __init__(
        self, name: str, system: System, *, source: str = "inline"
    ) -> None:
        self.name = name
        self.system = system
        self.source = source
        self.generation = 0
        self.queries_answered = 0
        self.runs_ingested = 0
        self.checker = ModelChecker(system)
        self.group = GroupChecker(self.checker)
        self._formulas: dict[str, Formula] = {}

    # -- request-field decoding ---------------------------------------------

    def _formula(self, query: dict[str, Any]) -> Formula:
        data = query.get("formula")
        if data is None:
            raise WireError("bad-formula", "query is missing 'formula'")
        key = formula_wire_key(data)
        formula = self._formulas.get(key)
        if formula is None:
            try:
                formula = formula_from_jsonable(data)
            except ValueError as exc:
                raise WireError("bad-formula", str(exc)) from exc
            self._formulas[key] = formula
        return formula

    def _process(self, query: dict[str, Any], field: str = "process") -> ProcessId:
        process = query.get(field)
        if not isinstance(process, str):
            raise WireError("bad-request", f"query field {field!r} must be a string")
        if process not in self.system.processes:
            raise WireError(
                "bad-request",
                f"unknown process {process!r}; system has "
                f"{list(self.system.processes)}",
            )
        return process

    def _group(self, query: dict[str, Any]) -> list[ProcessId]:
        group = query.get("group")
        if not isinstance(group, list) or not group:
            raise WireError("bad-request", "query field 'group' must be a non-empty list")
        known = set(self.system.processes)
        members: list[ProcessId] = []
        for member in group:
            if not isinstance(member, str) or member not in known:
                raise WireError("bad-request", f"unknown group member {member!r}")
            members.append(member)
        return members

    def _point(self, query: dict[str, Any]) -> Point:
        run_index = query.get("run")
        time = query.get("time")
        runs = self.system.runs
        if not isinstance(run_index, int) or isinstance(run_index, bool):
            raise WireError("bad-point", "query field 'run' must be an integer")
        if not 0 <= run_index < len(runs):
            raise WireError(
                "bad-point",
                f"run index {run_index} out of range (system has {len(runs)} runs)",
            )
        if not isinstance(time, int) or isinstance(time, bool) or time < 0:
            raise WireError("bad-point", "query field 'time' must be a non-negative integer")
        # Times beyond the run's duration clamp to the final cut (the
        # finite-horizon convention); report the clamped point back.
        return Point(runs[run_index], min(time, runs[run_index].duration))

    def _depth(self, query: dict[str, Any], field: str, default: int | None) -> int:
        value = query.get(field, default)
        if not isinstance(value, int) or isinstance(value, bool) or value < 0:
            raise WireError("bad-request", f"query field {field!r} must be a non-negative integer")
        if value > _MAX_E_CAP:
            raise WireError("bad-request", f"query field {field!r} exceeds the cap of {_MAX_E_CAP}")
        return value

    # -- queries -------------------------------------------------------------

    def run_query(self, query: Any) -> dict[str, Any]:
        """Answer one query dict; never raises for per-query problems."""
        try:
            return self._dispatch(query)
        except WireError as exc:
            return {"ok": False, "error": exc.code, "message": exc.message}

    def _dispatch(self, query: Any) -> dict[str, Any]:
        if not isinstance(query, dict):
            raise WireError("bad-request", "each query must be a JSON object")
        kind = query.get("kind")
        # Sampled-system warnings surface structurally (the response
        # envelope's "complete"/"missing_runs" fields), not as Python
        # warnings inside the server process.
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", IncompleteSystemWarning)
            if kind == "holds":
                result: dict[str, Any] = {
                    "result": self.checker.holds(self._formula(query), self._point(query))
                }
            elif kind == "knows":
                process = self._process(query)
                formula = self._formula(query)
                key = f"knows:{process}:{formula_wire_key(query['formula'])}"
                wrapped = self._formulas.get(key)
                if wrapped is None:
                    wrapped = Knows(process, formula)
                    self._formulas[key] = wrapped
                result = {"result": self.checker.holds(wrapped, self._point(query))}
            elif kind == "e":
                group = self._group(query)
                depth = self._depth(query, "depth", 1)
                formula = self._formula(query)
                point = self._point(query)
                if depth == 0:
                    value = self.checker.holds(formula, point)
                else:
                    value = (
                        self.group.max_e_depth(group, formula, point, cap=depth)
                        == depth
                    )
                result = {"result": value}
            elif kind == "max_e_depth":
                result = {
                    "result": self.group.max_e_depth(
                        self._group(query),
                        self._formula(query),
                        self._point(query),
                        cap=self._depth(query, "cap", 10),
                    )
                }
            elif kind == "ck":
                result = {
                    "result": self.group.common_knowledge(
                        self._group(query), self._formula(query), self._point(query)
                    )
                }
            elif kind == "ck_points":
                points = self.group.common_knowledge_points(
                    self._group(query), self._formula(query)
                )
                result = {"result": [list(p) for p in sorted(points)]}
            elif kind == "known_crashed":
                known = self.system.known_crashed_set(
                    self._process(query), self._point(query)
                )
                result = {"result": sorted(known)}
            elif kind == "valid":
                witness = self.checker.counterexample(self._formula(query))
                counterexample: list[int] | None = None
                if witness is not None:
                    run_index = self.system.run_index(witness.run)
                    assert run_index is not None  # counterexamples are in-system
                    counterexample = [run_index, witness.time]
                result = {
                    "result": witness is None,
                    "counterexample": counterexample,
                }
            else:
                raise WireError(
                    "bad-request",
                    f"unknown query kind {kind!r}; expected one of {list(QUERY_KINDS)}",
                )
        self.queries_answered += 1
        result.update({"ok": True, "kind": kind})
        return result

    # -- online ingestion ----------------------------------------------------

    def ingest(self, arena_payload: Any) -> dict[str, Any]:
        """Fold an arena of new runs into the live system (refinement path)."""
        runs = _decode_arena_runs(arena_payload)
        if runs and runs[0].processes != self.system.processes:
            raise WireError(
                "bad-arena",
                "ingested runs are over a different process set than the system",
            )
        seen = set(self.system.runs)
        fresh: list[Run] = []
        for run in runs:
            if run not in seen:
                seen.add(run)
                fresh.append(run)
        if fresh:
            system = self.system.extend(fresh)
            self.system = system
            self.checker = ModelChecker(system)
            self.group = GroupChecker(self.checker)
            self.generation += 1
            self.runs_ingested += len(fresh)
        return {
            "added": len(fresh),
            "duplicates": len(runs) - len(fresh),
            "runs": len(self.system.runs),
            "generation": self.generation,
        }

    # -- descriptors ---------------------------------------------------------

    def describe(self) -> dict[str, Any]:
        system = self.system
        return {
            "runs": len(system.runs),
            "points": system.point_count,
            "processes": list(system.processes),
            "complete": system.complete,
            "missing_runs": system.missing_runs,
            "kernel": system.kernel,
            "generation": self.generation,
            "source": self.source,
            "queries_answered": self.queries_answered,
            "runs_ingested": self.runs_ingested,
        }

    def envelope(self) -> dict[str, Any]:
        """The completeness fields every query response carries."""
        return {
            "system": self.name,
            "generation": self.generation,
            "complete": self.system.complete,
            "missing_runs": self.system.missing_runs,
        }


class ServeState:
    """All sessions of one server, plus the optional RunCache behind ``load``."""

    def __init__(self, cache: "RunCache | None" = None) -> None:
        self.cache = cache
        self.sessions: dict[str, SystemSession] = {}
        self.op_counts: dict[str, int] = {}
        # Names claimed by in-flight loads (see claim/release below).
        self._pending: set[str] = set()

    def count(self, op: str) -> None:
        self.op_counts[op] = self.op_counts.get(op, 0) + 1

    def session(self, name: Any) -> SystemSession:
        if not isinstance(name, str):
            raise WireError("bad-request", "'system' must be a string")
        session = self.sessions.get(name)
        if session is None:
            raise WireError(
                "unknown-system",
                f"no system named {name!r}; create or load one first",
            )
        return session

    def _claim_name(self, name: Any) -> str:
        if not isinstance(name, str) or not name:
            raise WireError("bad-request", "'system' must be a non-empty string")
        if name in self.sessions or name in self._pending:
            raise WireError("duplicate-system", f"system {name!r} already exists")
        return name

    def claim(self, name: Any) -> str:
        """Reserve a session name ahead of an executor-side load.

        The async server claims on the loop thread, then runs the disk
        work off-loop -- so two concurrent ``load`` requests can never
        race one name.  Balanced by :meth:`release` on failure; the name
        becomes visible in ``sessions`` when the load lands.
        """
        name = self._claim_name(name)
        self._pending.add(name)
        return name

    def release(self, name: str) -> None:
        """Drop a claim whose load failed."""
        self._pending.discard(name)

    def create(
        self,
        name: Any,
        arena_payload: Any,
        *,
        complete: bool = False,
        missing_runs: int = 0,
    ) -> SystemSession:
        """Register a system from an inline arena payload."""
        name = self._claim_name(name)
        runs = _decode_arena_runs(arena_payload)
        if not runs:
            raise WireError("empty-system", "a system must contain at least one run")
        session = SystemSession(
            name,
            System(runs, complete=complete, missing_runs=missing_runs),
            source="inline",
        )
        self.sessions[name] = session
        return session

    def load_digest(self, name: Any, digest: Any) -> SystemSession:
        """Claim ``name`` and load it from the cache (sync convenience)."""
        name = self.claim(name)
        try:
            return self.load_into(name, digest)
        except BaseException:
            self.release(name)
            raise

    def load_into(self, name: str, digest: Any) -> SystemSession:
        """Load a precomputed exploration from the RunCache by spec digest.

        ``name`` must already be claimed.  Synchronous and disk-touching
        -- the server calls this through an executor.  A corrupt entry
        degrades gracefully: the cache quarantines it and the recorded
        reason comes back as a ``corrupt-entry`` error instead of a bare
        miss.
        """
        if self.cache is None:
            raise WireError("no-cache", "server was started without a run cache")
        if not isinstance(digest, str) or not digest:
            raise WireError("bad-request", "'digest' must be a non-empty string")
        entry = self.cache.get_exploration_entry(digest)
        if entry is None:
            reason = self.cache.quarantine_reason(digest)
            if reason is not None:
                raise WireError(
                    "corrupt-entry",
                    f"cache entry for {digest} failed integrity checks and "
                    f"was quarantined: {reason}",
                )
            raise WireError("not-found", f"no cached exploration for digest {digest}")
        if not entry.runs:
            raise WireError("empty-system", f"cached exploration {digest} has no runs")
        # Only exhaustive explorations are ever cached, so the loaded
        # system is complete by construction.
        session = SystemSession(
            name,
            System(entry.runs, complete=True),
            source=f"cache:{digest}",
        )
        self.sessions[name] = session
        self._pending.discard(name)
        return session

    def describe(self) -> dict[str, Any]:
        """The ``info`` op payload."""
        cache_digests: list[str] = []
        if self.cache is not None:
            cache_digests = list(self.cache.exploration_digests())
        return {
            "systems": {
                name: session.describe()
                for name, session in sorted(self.sessions.items())
            },
            "cache_digests": cache_digests,
            "op_counts": dict(sorted(self.op_counts.items())),
            "query_kinds": list(QUERY_KINDS),
        }
