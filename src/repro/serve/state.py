"""Server-side state: systems under service and the query dispatcher.

One :class:`SystemSession` wraps a live :class:`~repro.model.system.System`
together with its model checker, group checker, and a wire-formula
intern table.  Interning matters: the model checker memoizes per
``Formula`` *instance*, so decoding the same wire payload to the same
object keeps the local/point/temporal caches hot across requests.

The session's system/checker/group/generation live together in one
immutable :class:`SessionEpoch`.  Ingestion never mutates an epoch --
it builds the next one (via :meth:`System.extend`'s incremental class
refinement) and swaps a single reference -- so a query batch that
captured an epoch keeps answering against a consistent system even
while an ingest from another connection lands mid-batch, and every
answer is attributable to the ``generation`` its envelope reports.

Durability: when a :class:`~repro.serve.journal.ServeJournal` is
attached, every mutating operation follows the write-ahead discipline
-- *prepare* (validate and decode; all ``WireError`` rejections happen
here, so nothing invalid is ever journaled), *journal* (durable append
of the wire payload), *commit* (apply to live state).  The async server
runs the journal step on an executor thread; the synchronous
convenience methods (:meth:`ServeState.create` /
:meth:`ServeState.ingest`) inline all three.  :meth:`ServeState.recover`
replays the journals at boot through the same commit path, which is
what makes recovered answers bit-identical to the pre-crash session's.

All methods here are synchronous; the asyncio layer
(:mod:`repro.serve.server`) shunts the disk-touching ones through an
executor so the event loop never blocks.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.columnar.arena import decode_runs
from repro.columnar.jsonio import arena_from_jsonable
from repro.knowledge.formulas import Formula, Knows
from repro.knowledge.group import GroupChecker
from repro.knowledge.semantics import ModelChecker
from repro.knowledge.wire import formula_from_jsonable, formula_wire_key
from repro.model.events import ProcessId
from repro.model.run import Point, Run
from repro.model.system import IncompleteSystemWarning, System
from repro.serve.journal import ServeJournal
from repro.serve.protocol import WireError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.cache import RunCache

#: Query kinds the ``query`` op dispatches on.
QUERY_KINDS = (
    "holds",
    "knows",
    "e",
    "max_e_depth",
    "ck",
    "ck_points",
    "known_crashed",
    "valid",
)

_MAX_E_CAP = 64  # ladder cap: depth requests beyond this are bad-request


def _decode_arena_runs(payload: Any) -> tuple[Run, ...]:
    """An inline ``arena`` payload -> runs, with wire-coded failures."""
    if not isinstance(payload, dict):
        raise WireError("bad-arena", "'arena' must be an arena JSON object")
    try:
        return decode_runs(arena_from_jsonable(payload))
    except WireError:
        raise
    except Exception as exc:
        raise WireError("bad-arena", f"undecodable arena payload: {exc}") from exc


class SessionEpoch:
    """One consistent (system, checkers, generation) snapshot of a session.

    Epochs are immutable after construction; an ingest builds the next
    epoch and the session swaps one reference, so concurrent readers
    holding an old epoch stay coherent.
    """

    __slots__ = ("system", "checker", "group", "generation")

    def __init__(self, system: System, generation: int) -> None:
        self.system = system
        self.checker = ModelChecker(system)
        self.group = GroupChecker(self.checker)
        self.generation = generation


class SystemSession:
    """One named system under service, plus its checkers and caches."""

    def __init__(
        self,
        name: str,
        system: System,
        *,
        source: str = "inline",
        recovered: str | None = None,
    ) -> None:
        self.name = name
        self.source = source
        #: None for a session built live; "full"/"partial" after a
        #: journal replay (surfaced in every response envelope).
        self.recovered = recovered
        self.queries_answered = 0
        self.runs_ingested = 0
        self._epoch = SessionEpoch(system, 0)
        self._formulas: dict[str, Formula] = {}

    # -- epoch access --------------------------------------------------------

    @property
    def epoch(self) -> SessionEpoch:
        """The current epoch; capture once per batch for a stable view."""
        return self._epoch

    @property
    def system(self) -> System:
        return self._epoch.system

    @property
    def checker(self) -> ModelChecker:
        return self._epoch.checker

    @property
    def group(self) -> GroupChecker:
        return self._epoch.group

    @property
    def generation(self) -> int:
        return self._epoch.generation

    # -- request-field decoding ---------------------------------------------

    def _formula(self, query: dict[str, Any]) -> Formula:
        data = query.get("formula")
        if data is None:
            raise WireError("bad-formula", "query is missing 'formula'")
        key = formula_wire_key(data)
        formula = self._formulas.get(key)
        if formula is None:
            try:
                formula = formula_from_jsonable(data)
            except ValueError as exc:
                raise WireError("bad-formula", str(exc)) from exc
            self._formulas[key] = formula
        return formula

    def _process(
        self, epoch: SessionEpoch, query: dict[str, Any], field: str = "process"
    ) -> ProcessId:
        process = query.get(field)
        if not isinstance(process, str):
            raise WireError("bad-request", f"query field {field!r} must be a string")
        if process not in epoch.system.processes:
            raise WireError(
                "bad-request",
                f"unknown process {process!r}; system has "
                f"{list(epoch.system.processes)}",
            )
        return process

    def _group(self, epoch: SessionEpoch, query: dict[str, Any]) -> list[ProcessId]:
        group = query.get("group")
        if not isinstance(group, list) or not group:
            raise WireError("bad-request", "query field 'group' must be a non-empty list")
        known = set(epoch.system.processes)
        members: list[ProcessId] = []
        for member in group:
            if not isinstance(member, str) or member not in known:
                raise WireError("bad-request", f"unknown group member {member!r}")
            members.append(member)
        return members

    def _point(self, epoch: SessionEpoch, query: dict[str, Any]) -> Point:
        run_index = query.get("run")
        time = query.get("time")
        runs = epoch.system.runs
        if not isinstance(run_index, int) or isinstance(run_index, bool):
            raise WireError("bad-point", "query field 'run' must be an integer")
        if not 0 <= run_index < len(runs):
            raise WireError(
                "bad-point",
                f"run index {run_index} out of range (system has {len(runs)} runs)",
            )
        if not isinstance(time, int) or isinstance(time, bool) or time < 0:
            raise WireError("bad-point", "query field 'time' must be a non-negative integer")
        # Times beyond the run's duration clamp to the final cut (the
        # finite-horizon convention); report the clamped point back.
        return Point(runs[run_index], min(time, runs[run_index].duration))

    def _depth(self, query: dict[str, Any], field: str, default: int | None) -> int:
        value = query.get(field, default)
        if not isinstance(value, int) or isinstance(value, bool) or value < 0:
            raise WireError("bad-request", f"query field {field!r} must be a non-negative integer")
        if value > _MAX_E_CAP:
            raise WireError("bad-request", f"query field {field!r} exceeds the cap of {_MAX_E_CAP}")
        return value

    # -- queries -------------------------------------------------------------

    def run_query(
        self, query: Any, epoch: SessionEpoch | None = None
    ) -> dict[str, Any]:
        """Answer one query dict; never raises for per-query problems."""
        try:
            return self._dispatch(query, epoch or self._epoch)
        except WireError as exc:
            return {"ok": False, "error": exc.code, "message": exc.message}

    def _dispatch(self, query: Any, epoch: SessionEpoch) -> dict[str, Any]:
        if not isinstance(query, dict):
            raise WireError("bad-request", "each query must be a JSON object")
        kind = query.get("kind")
        checker = epoch.checker
        group_checker = epoch.group
        # Sampled-system warnings surface structurally (the response
        # envelope's "complete"/"missing_runs" fields), not as Python
        # warnings inside the server process.
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", IncompleteSystemWarning)
            if kind == "holds":
                result: dict[str, Any] = {
                    "result": checker.holds(
                        self._formula(query), self._point(epoch, query)
                    )
                }
            elif kind == "knows":
                process = self._process(epoch, query)
                formula = self._formula(query)
                key = f"knows:{process}:{formula_wire_key(query['formula'])}"
                wrapped = self._formulas.get(key)
                if wrapped is None:
                    wrapped = Knows(process, formula)
                    self._formulas[key] = wrapped
                result = {"result": checker.holds(wrapped, self._point(epoch, query))}
            elif kind == "e":
                group = self._group(epoch, query)
                depth = self._depth(query, "depth", 1)
                formula = self._formula(query)
                point = self._point(epoch, query)
                if depth == 0:
                    value = checker.holds(formula, point)
                else:
                    value = (
                        group_checker.max_e_depth(group, formula, point, cap=depth)
                        == depth
                    )
                result = {"result": value}
            elif kind == "max_e_depth":
                result = {
                    "result": group_checker.max_e_depth(
                        self._group(epoch, query),
                        self._formula(query),
                        self._point(epoch, query),
                        cap=self._depth(query, "cap", 10),
                    )
                }
            elif kind == "ck":
                result = {
                    "result": group_checker.common_knowledge(
                        self._group(epoch, query),
                        self._formula(query),
                        self._point(epoch, query),
                    )
                }
            elif kind == "ck_points":
                points = group_checker.common_knowledge_points(
                    self._group(epoch, query), self._formula(query)
                )
                result = {"result": [list(p) for p in sorted(points)]}
            elif kind == "known_crashed":
                known = epoch.system.known_crashed_set(
                    self._process(epoch, query), self._point(epoch, query)
                )
                result = {"result": sorted(known)}
            elif kind == "valid":
                witness = checker.counterexample(self._formula(query))
                counterexample: list[int] | None = None
                if witness is not None:
                    run_index = epoch.system.run_index(witness.run)
                    assert run_index is not None  # counterexamples are in-system
                    counterexample = [run_index, witness.time]
                result = {
                    "result": witness is None,
                    "counterexample": counterexample,
                }
            else:
                raise WireError(
                    "bad-request",
                    f"unknown query kind {kind!r}; expected one of {list(QUERY_KINDS)}",
                )
        self.queries_answered += 1
        result.update({"ok": True, "kind": kind})
        return result

    # -- online ingestion ----------------------------------------------------

    def prepare_ingest(self, arena_payload: Any) -> tuple[Run, ...]:
        """Validate and decode an ingest payload (the journal-safe step).

        Every rejection a replay could deterministically re-hit happens
        here, *before* the payload is journaled: nothing invalid is
        ever written ahead.
        """
        runs = _decode_arena_runs(arena_payload)
        if runs and runs[0].processes != self.system.processes:
            raise WireError(
                "bad-arena",
                "ingested runs are over a different process set than the system",
            )
        return runs

    def apply_ingest(self, runs: tuple[Run, ...]) -> dict[str, Any]:
        """Fold decoded runs into the live system (refinement path).

        Duplicate filtering (against the live run set, then within the
        batch, in order) is deterministic, so a journal replay of the
        same payloads reconstructs the identical run sequence -- the
        root of recovery bit-equality.
        """
        epoch = self._epoch
        seen = set(epoch.system.runs)
        fresh: list[Run] = []
        for run in runs:
            if run not in seen:
                seen.add(run)
                fresh.append(run)
        if fresh:
            system = epoch.system.extend(fresh)
            self._epoch = SessionEpoch(system, epoch.generation + 1)
            self.runs_ingested += len(fresh)
        return {
            "added": len(fresh),
            "duplicates": len(runs) - len(fresh),
            "runs": len(self._epoch.system.runs),
            "generation": self._epoch.generation,
        }

    def ingest(self, arena_payload: Any) -> dict[str, Any]:
        """Decode + apply in one step (journal-free convenience).

        Callers that need durability go through
        :meth:`ServeState.ingest` (or the async server's prepared
        path), which journals between the two steps.
        """
        return self.apply_ingest(self.prepare_ingest(arena_payload))

    # -- descriptors ---------------------------------------------------------

    def describe(self) -> dict[str, Any]:
        system = self.system
        out = {
            "runs": len(system.runs),
            "points": system.point_count,
            "processes": list(system.processes),
            "complete": system.complete,
            "missing_runs": system.missing_runs,
            "kernel": system.kernel,
            "generation": self.generation,
            "source": self.source,
            "queries_answered": self.queries_answered,
            "runs_ingested": self.runs_ingested,
        }
        if self.recovered is not None:
            out["recovered"] = self.recovered
        return out

    def envelope(self, epoch: SessionEpoch | None = None) -> dict[str, Any]:
        """The completeness fields every query response carries."""
        epoch = epoch or self._epoch
        out = {
            "system": self.name,
            "generation": epoch.generation,
            "complete": epoch.system.complete,
            "missing_runs": epoch.system.missing_runs,
        }
        if self.recovered is not None:
            out["recovered"] = self.recovered
        return out


@dataclass(frozen=True)
class PreparedCreate:
    """A validated ``create``: claimed name, decoded runs, journal record."""

    name: str
    runs: tuple[Run, ...]
    complete: bool
    missing_runs: int
    record: dict[str, Any]


@dataclass(frozen=True)
class PreparedIngest:
    """A validated ``ingest``: target session, decoded runs, journal record."""

    session: SystemSession
    runs: tuple[Run, ...]
    record: dict[str, Any]


@dataclass
class RecoveryReport:
    """What :meth:`ServeState.recover` rebuilt (and what it could not)."""

    #: (session name, "full" | "partial") per rebuilt session
    recovered: list[tuple[str, str]] = field(default_factory=list)
    #: (journal dirname, reason) per session that could not be rebuilt
    skipped: list[tuple[str, str]] = field(default_factory=list)

    @property
    def partial(self) -> list[str]:
        return [name for name, status in self.recovered if status == "partial"]

    def summary(self) -> str:
        full = len(self.recovered) - len(self.partial)
        parts = [f"recovered {full} session(s)"]
        if self.partial:
            parts.append(f"{len(self.partial)} partial ({', '.join(self.partial)})")
        if self.skipped:
            parts.append(f"{len(self.skipped)} unrecoverable")
        return ", ".join(parts)


class ServeState:
    """All sessions of one server, plus the optional RunCache behind
    ``load`` and the optional write-ahead journal behind durability."""

    def __init__(
        self,
        cache: "RunCache | None" = None,
        *,
        journal: ServeJournal | None = None,
    ) -> None:
        self.cache = cache
        self.journal = journal
        self.sessions: dict[str, SystemSession] = {}
        self.op_counts: dict[str, int] = {}
        # Names claimed by in-flight loads (see claim/release below).
        self._pending: set[str] = set()

    def count(self, op: str) -> None:
        self.op_counts[op] = self.op_counts.get(op, 0) + 1

    def session(self, name: Any) -> SystemSession:
        if not isinstance(name, str):
            raise WireError("bad-request", "'system' must be a string")
        session = self.sessions.get(name)
        if session is None:
            raise WireError(
                "unknown-system",
                f"no system named {name!r}; create or load one first",
            )
        return session

    def _claim_name(self, name: Any) -> str:
        if not isinstance(name, str) or not name:
            raise WireError("bad-request", "'system' must be a non-empty string")
        if name in self.sessions or name in self._pending:
            raise WireError("duplicate-system", f"system {name!r} already exists")
        return name

    def claim(self, name: Any) -> str:
        """Reserve a session name ahead of an executor-side load.

        The async server claims on the loop thread, then runs the disk
        work off-loop -- so two concurrent ``load`` requests can never
        race one name.  Balanced by :meth:`release` on failure; the name
        becomes visible in ``sessions`` when the load lands.
        """
        name = self._claim_name(name)
        self._pending.add(name)
        return name

    def release(self, name: str) -> None:
        """Drop a claim whose load failed."""
        self._pending.discard(name)

    # -- the write-ahead step ------------------------------------------------

    def journal_append(self, record: dict[str, Any]) -> None:
        """Durably journal one prepared record (no-op without a journal).

        Blocking disk I/O: the async server calls this through an
        executor, sync callers inline it.
        """
        if self.journal is None:
            return
        name = record.get("system")
        assert isinstance(name, str)  # prepared records always carry it
        self.journal.session(name).append(record)

    # -- create ----------------------------------------------------------------

    def prepare_create(
        self,
        name: Any,
        arena_payload: Any,
        *,
        complete: bool = False,
        missing_runs: int = 0,
    ) -> PreparedCreate:
        """Validate a ``create`` and claim its name (journal-safe step).

        Balanced by :meth:`commit_create`, or :meth:`release` on a
        journal failure in between.
        """
        name = self.claim(name)
        try:
            runs = _decode_arena_runs(arena_payload)
            if not runs:
                raise WireError("empty-system", "a system must contain at least one run")
        except BaseException:
            self.release(name)
            raise
        record = {
            "op": "create",
            "system": name,
            "arena": arena_payload,
            "complete": complete,
            "missing_runs": missing_runs,
        }
        return PreparedCreate(name, runs, complete, missing_runs, record)

    def commit_create(self, prepared: PreparedCreate) -> SystemSession:
        """Register a prepared (and, if journaling, journaled) create."""
        session = SystemSession(
            prepared.name,
            System(
                prepared.runs,
                complete=prepared.complete,
                missing_runs=prepared.missing_runs,
            ),
            source="inline",
        )
        self.sessions[prepared.name] = session
        self._pending.discard(prepared.name)
        return session

    def create(
        self,
        name: Any,
        arena_payload: Any,
        *,
        complete: bool = False,
        missing_runs: int = 0,
    ) -> SystemSession:
        """Register a system from an inline arena payload (sync path)."""
        prepared = self.prepare_create(
            name, arena_payload, complete=complete, missing_runs=missing_runs
        )
        try:
            self.journal_append(prepared.record)
        except BaseException:
            self.release(prepared.name)
            raise
        return self.commit_create(prepared)

    # -- ingest ----------------------------------------------------------------

    def prepare_ingest(self, name: Any, arena_payload: Any) -> PreparedIngest:
        """Validate an ``ingest`` against its session (journal-safe step)."""
        session = self.session(name)
        runs = session.prepare_ingest(arena_payload)
        record = {"op": "ingest", "system": session.name, "arena": arena_payload}
        return PreparedIngest(session, runs, record)

    def commit_ingest(self, prepared: PreparedIngest) -> dict[str, Any]:
        return prepared.session.apply_ingest(prepared.runs)

    def ingest(self, name: Any, arena_payload: Any) -> dict[str, Any]:
        """Decode, journal, and apply one ingest (sync path)."""
        prepared = self.prepare_ingest(name, arena_payload)
        self.journal_append(prepared.record)
        return self.commit_ingest(prepared)

    # -- load ------------------------------------------------------------------

    def load_digest(self, name: Any, digest: Any) -> SystemSession:
        """Claim ``name`` and load it from the cache (sync convenience)."""
        name = self.claim(name)
        try:
            return self.load_into(name, digest)
        except BaseException:
            self.release(name)
            raise

    def load_into(self, name: str, digest: Any) -> SystemSession:
        """Load a precomputed exploration from the RunCache by spec digest.

        ``name`` must already be claimed.  Synchronous and disk-touching
        -- the server calls this through an executor.  A corrupt entry
        degrades gracefully: the cache quarantines it and the recorded
        reason comes back as a ``corrupt-entry`` error instead of a bare
        miss.  With journaling on, the (name, digest) pair is journaled
        before the session becomes visible.
        """
        session = self._load_session(name, digest)
        self.journal_append(
            {"op": "load", "system": name, "digest": digest}
        )
        self.sessions[name] = session
        self._pending.discard(name)
        return session

    def _load_session(self, name: str, digest: Any) -> SystemSession:
        """The cache lookup + session construction behind ``load``."""
        if self.cache is None:
            raise WireError("no-cache", "server was started without a run cache")
        if not isinstance(digest, str) or not digest:
            raise WireError("bad-request", "'digest' must be a non-empty string")
        entry = self.cache.get_exploration_entry(digest)
        if entry is None:
            reason = self.cache.quarantine_reason(digest)
            if reason is not None:
                raise WireError(
                    "corrupt-entry",
                    f"cache entry for {digest} failed integrity checks and "
                    f"was quarantined: {reason}",
                )
            raise WireError("not-found", f"no cached exploration for digest {digest}")
        if not entry.runs:
            raise WireError("empty-system", f"cached exploration {digest} has no runs")
        # Only exhaustive explorations are ever cached, so the loaded
        # system is complete by construction.
        return SystemSession(
            name,
            System(entry.runs, complete=True),
            source=f"cache:{digest}",
        )

    # -- recovery --------------------------------------------------------------

    def recover(self) -> RecoveryReport:
        """Rebuild sessions from the journal (boot-time crash recovery).

        Each journal's verified record prefix replays through the same
        decode/apply path that built the session live, so recovered
        answers are bit-identical to the uninterrupted session's.  A
        journal with a corrupt tail yields a *partial* session
        (``recovered: "partial"`` in its envelopes); a journal whose
        base record is unusable yields a skipped entry in the report --
        never an exception.
        """
        report = RecoveryReport()
        if self.journal is None:
            return report
        for session_journal in self.journal.discover():
            dirname = session_journal.directory.name
            replay = session_journal.replay()
            if not replay.records:
                if replay.status != "empty" or replay.reason is not None:
                    report.skipped.append(
                        (dirname, replay.reason or "no verifiable records")
                    )
                continue
            status = replay.status
            try:
                session, applied_all = self._replay_session(replay.records)
            except WireError as exc:
                report.skipped.append((dirname, f"{exc.code}: {exc.message}"))
                continue
            if not applied_all:
                status = "partial"
            session.recovered = status
            self.sessions[session.name] = session
            report.recovered.append((session.name, status))
        return report

    def _replay_session(
        self, records: list[dict[str, Any]]
    ) -> tuple[SystemSession, bool]:
        """One session from its journal records; returns (session, applied_all)."""
        base = records[0]
        op = base.get("op")
        name = base.get("system")
        if not isinstance(name, str) or not name:
            raise WireError("bad-request", "journal base record has no session name")
        if op == "create":
            runs = _decode_arena_runs(base.get("arena"))
            if not runs:
                raise WireError("empty-system", "journaled create has no runs")
            session = SystemSession(
                name,
                System(
                    runs,
                    complete=bool(base.get("complete", False)),
                    missing_runs=int(base.get("missing_runs", 0)),
                ),
                source="inline",
            )
        elif op == "load":
            session = self._load_session(name, base.get("digest"))
        else:
            raise WireError(
                "bad-request", f"journal base record has op {op!r}, not create/load"
            )
        for record in records[1:]:
            if record.get("op") != "ingest":
                return session, False
            try:
                session.apply_ingest(session.prepare_ingest(record.get("arena")))
            except WireError:
                # Validated before journaling, so only environmental
                # drift (e.g. a changed cache) lands here: keep the
                # prefix, surface partial.
                return session, False
        return session, True

    # -- descriptors -----------------------------------------------------------

    def describe(self) -> dict[str, Any]:
        """The ``info`` op payload."""
        cache_digests: list[str] = []
        if self.cache is not None:
            cache_digests = list(self.cache.exploration_digests())
        out = {
            "systems": {
                name: session.describe()
                for name, session in sorted(self.sessions.items())
            },
            "cache_digests": cache_digests,
            "op_counts": dict(sorted(self.op_counts.items())),
            "query_kinds": list(QUERY_KINDS),
        }
        if self.journal is not None:
            out["journal"] = self.journal.describe()
        return out
