"""Latency/throughput benchmark of the query service (BENCH_serve.json).

The server runs on a background thread with its own event loop; worker
threads each hold one connection and send query batches back-to-back,
recording wall-clock latency per request.  Reported per concurrency
level: p50/p95 latency in milliseconds and aggregate queries-per-second.

Socket round-trips are machine-bound, so the payload also records a
*calibration* figure: the same query mix answered in-process against a
:class:`~repro.serve.state.SystemSession` (no sockets, no event loop).
``tools/check_bench_regression.py`` rescales the committed numbers by
the calibration ratio before applying its tolerance, so a slower CI
runner does not trip the gate but a serve-layer regression does.

The payload also records a ``journal`` section: the same single-client
query/ingest pass run twice, journaling off and on (fsync enabled),
with the on/off p50 ratios.  The query path never touches the journal,
so the gate's ``serve-journal`` mode pins ``query_overhead`` at 15% --
a breach means journal work leaked onto the read path.
"""

from __future__ import annotations

import asyncio
import platform
import random
import tempfile
import threading
import time
from datetime import datetime, timezone
from pathlib import Path
from typing import Any, Sequence

from repro.knowledge.formulas import Crashed, Diamond
from repro.model.run import Run
from repro.model.synthetic import synthetic_run, synthetic_system
from repro.serve.client import (
    ServeClient,
    ck_query,
    e_query,
    holds_query,
    knows_query,
)
from repro.serve.journal import ServeJournal
from repro.serve.server import EpistemicServer
from repro.serve.state import ServeState, SystemSession


def _percentile(sorted_values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of an already-sorted sample."""
    if not sorted_values:
        return 0.0
    rank = max(0, min(len(sorted_values) - 1, round(q * (len(sorted_values) - 1))))
    return sorted_values[rank]


def _query_mix(processes: Sequence[str], runs: int) -> list[dict[str, Any]]:
    """The fixed batch every bench request sends (8 mixed queries)."""
    p0, p1 = processes[0], processes[1]
    group = list(processes[:3]) if len(processes) >= 3 else list(processes)
    crashed = Crashed(p1)
    last = runs - 1
    return [
        knows_query(p0, crashed, 0, 2),
        knows_query(p1, Crashed(p0), last, 4),
        holds_query(Diamond(crashed), 0, 0),
        e_query(group, 1, crashed, 0, 3),
        e_query(group, 2, crashed, last, 3),
        ck_query(group, crashed, 0, 2),
        {"kind": "known_crashed", "process": p0, "run": 0, "time": 5},
        {"kind": "max_e_depth", "group": group, "formula": {"op": "crashed", "process": p1}, "run": 0, "time": 2, "cap": 3},
    ]


def _start_server(state: ServeState) -> tuple[EpistemicServer, threading.Thread, str, int]:
    """Boot the asyncio server on a daemon thread; returns its address."""
    server = EpistemicServer(state)
    bound: dict[str, Any] = {}
    started = threading.Event()

    def _run() -> None:
        loop = asyncio.new_event_loop()
        try:
            asyncio.set_event_loop(loop)
            bound["addr"] = loop.run_until_complete(server.start())
            started.set()
            loop.run_until_complete(server.run())
        finally:
            loop.close()

    thread = threading.Thread(target=_run, name="repro-serve-bench", daemon=True)
    thread.start()
    if not started.wait(timeout=30):  # pragma: no cover - defensive
        raise RuntimeError("bench server failed to start")
    host, port = bound["addr"]
    return server, thread, host, port


def _drive_clients(
    host: str,
    port: int,
    system: str,
    mix: list[dict[str, Any]],
    *,
    clients: int,
    requests_per_client: int,
) -> dict[str, Any]:
    """One concurrency level: per-request latencies + aggregate qps."""
    latencies: list[list[float]] = [[] for _ in range(clients)]
    errors: list[BaseException] = []
    start_barrier = threading.Barrier(clients + 1)

    def _worker(slot: int) -> None:
        try:
            with ServeClient.connect(host, port) as client:
                client.query(system, mix)  # connection + cache warmup
                start_barrier.wait()
                bucket = latencies[slot]
                for _ in range(requests_per_client):
                    t0 = time.perf_counter()
                    results = client.query(system, mix)
                    bucket.append(time.perf_counter() - t0)
                    assert all(r["ok"] for r in results)
        except BaseException as exc:  # surfaced after join
            errors.append(exc)
            try:
                start_barrier.abort()
            except threading.BrokenBarrierError:  # pragma: no cover
                pass

    workers = [
        threading.Thread(target=_worker, args=(i,), daemon=True)
        for i in range(clients)
    ]
    for w in workers:
        w.start()
    start_barrier.wait()
    t0 = time.perf_counter()
    for w in workers:
        w.join()
    elapsed = time.perf_counter() - t0
    if errors:
        raise errors[0]
    flat = sorted(lat for bucket in latencies for lat in bucket)
    total_requests = clients * requests_per_client
    return {
        "clients": clients,
        "requests": total_requests,
        "queries_per_request": len(mix),
        "p50_ms": _percentile(flat, 0.50) * 1e3,
        "p95_ms": _percentile(flat, 0.95) * 1e3,
        "qps": (total_requests * len(mix)) / elapsed if elapsed > 0 else 0.0,
    }


def _direct_qps(
    session: SystemSession, mix: list[dict[str, Any]], rounds: int
) -> float:
    """Calibration: the same mix answered in-process, no sockets."""
    for query in mix:  # warmup
        session.run_query(query)
    t0 = time.perf_counter()
    for _ in range(rounds):
        for query in mix:
            result = session.run_query(query)
            assert result["ok"]
    elapsed = time.perf_counter() - t0
    return (rounds * len(mix)) / elapsed if elapsed > 0 else 0.0


def _journal_mode(
    runs: Sequence[Run],
    processes: Sequence[str],
    mix: list[dict[str, Any]],
    *,
    journal_dir: str | None,
    requests: int,
    ingest_batches: int,
    ingest_batch_runs: int,
    duration: int,
) -> dict[str, Any]:
    """Query/ingest p50s for one journaling mode (off, or on with fsync).

    Both modes run in the same process on the same machine, so the
    on/off ratio is machine-normalized by construction -- the same
    trick the kernel bench uses for its speedup figures.
    """
    journal = ServeJournal(Path(journal_dir)) if journal_dir is not None else None
    state = ServeState(journal=journal)
    server, thread, host, port = _start_server(state)
    try:
        with ServeClient.connect(host, port) as admin:
            admin.create("bench", runs, complete=False)
        level = _drive_clients(
            host, port, "bench", mix, clients=1, requests_per_client=requests
        )
        rng = random.Random(4321)
        ingest_latencies: list[float] = []
        with ServeClient.connect(host, port) as admin:
            for _ in range(ingest_batches):
                batch = [
                    synthetic_run(processes, rng, duration=duration)
                    for _ in range(ingest_batch_runs)
                ]
                t0 = time.perf_counter()
                admin.ingest("bench", batch)
                ingest_latencies.append(time.perf_counter() - t0)
            admin.shutdown()
    finally:
        thread.join(timeout=30)
    ingest_sorted = sorted(ingest_latencies)
    return {
        "query_p50_ms": level["p50_ms"],
        "query_p95_ms": level["p95_ms"],
        "ingest_p50_ms": _percentile(ingest_sorted, 0.50) * 1e3,
    }


def _journal_section(
    runs: Sequence[Run],
    processes: Sequence[str],
    mix: list[dict[str, Any]],
    *,
    requests: int,
    ingest_batches: int,
    ingest_batch_runs: int,
    duration: int,
) -> dict[str, Any]:
    """The journaling-overhead figures (the ``serve-journal`` gate input).

    The query path never touches the journal -- the ratio pins that
    invariant (a regression here means journal work leaked onto the
    read path).  Ingest *does* pay for durability (one fsynced segment
    per batch), so its overhead is recorded for audit but priced in.
    """
    common = {
        "requests": requests,
        "ingest_batches": ingest_batches,
        "ingest_batch_runs": ingest_batch_runs,
        "duration": duration,
    }
    off = _journal_mode(runs, processes, mix, journal_dir=None, **common)
    with tempfile.TemporaryDirectory(prefix="repro-bench-journal-") as tmp:
        on = _journal_mode(runs, processes, mix, journal_dir=tmp, **common)
    return {
        "fsync": True,
        "requests": requests,
        "ingest_batches": ingest_batches,
        "off": off,
        "on": on,
        "query_overhead": (
            on["query_p50_ms"] / off["query_p50_ms"] if off["query_p50_ms"] else 0.0
        ),
        "ingest_overhead": (
            on["ingest_p50_ms"] / off["ingest_p50_ms"]
            if off["ingest_p50_ms"]
            else 0.0
        ),
    }


def run_serve_bench(
    *,
    n: int = 4,
    base_runs: int = 48,
    duration: int = 6,
    concurrency: Sequence[int] = (1, 8),
    requests_per_client: int = 60,
    ingest_batches: int = 8,
    ingest_batch_runs: int = 4,
    calibration_rounds: int = 120,
    smoke: bool = False,
) -> dict[str, Any]:
    """Run the full serve benchmark; returns the BENCH_serve.json payload."""
    if smoke:
        # Shrink repetition counts only: the system size must stay the
        # default so the calibration figure is comparable against a
        # committed full-mode baseline (the regression gate divides one
        # by the other to estimate machine speed).  Requests stay high
        # enough that p95 is a percentile, not a max over a handful of
        # cache-cold samples.
        # Calibration is not shrunk: it is ~50 ms of work, and the gate
        # divides by it -- a noisy scale tightens every ceiling.
        requests_per_client = min(requests_per_client, 30)
        ingest_batches = min(ingest_batches, 4)

    base = synthetic_system(n, base_runs, seed=7, duration=duration)
    runs = base.runs
    processes = base.processes
    mix = _query_mix(list(processes), len(runs))

    state = ServeState()
    server, thread, host, port = _start_server(state)
    results: dict[str, Any] = {}
    try:
        with ServeClient.connect(host, port) as admin:
            admin.create("bench", runs, complete=False)
        for clients in concurrency:
            results[f"c={clients}"] = _drive_clients(
                host,
                port,
                "bench",
                mix,
                clients=clients,
                requests_per_client=requests_per_client,
            )

        # Online ingestion latency: each batch refines the live index.
        rng = random.Random(1234)
        ingest_latencies: list[float] = []
        with ServeClient.connect(host, port) as admin:
            for _ in range(ingest_batches):
                batch = [
                    synthetic_run(processes, rng, duration=duration)
                    for _ in range(ingest_batch_runs)
                ]
                t0 = time.perf_counter()
                admin.ingest("bench", batch)
                ingest_latencies.append(time.perf_counter() - t0)
            admin.shutdown()
    finally:
        thread.join(timeout=30)
    ingest_sorted = sorted(ingest_latencies)

    from repro.model.system import System

    calibration_session = SystemSession("calibration", System(runs))
    direct = _direct_qps(calibration_session, mix, calibration_rounds)

    journal = _journal_section(
        runs,
        processes,
        mix,
        requests=requests_per_client,
        ingest_batches=ingest_batches,
        ingest_batch_runs=ingest_batch_runs,
        duration=duration,
    )

    return {
        "benchmark": "serve-latency",
        "created": datetime.now(timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ"),
        "python": platform.python_version(),
        "config": {
            "n": n,
            "base_runs": base_runs,
            "duration": duration,
            "requests_per_client": requests_per_client,
            "queries_per_request": len(mix),
            "ingest_batches": ingest_batches,
            "ingest_batch_runs": ingest_batch_runs,
            "smoke": smoke,
            "timer": "perf_counter per request, warm connection, barrier start",
        },
        "results": results,
        "ingest": {
            "batches": ingest_batches,
            "runs_per_batch": ingest_batch_runs,
            "p50_ms": _percentile(ingest_sorted, 0.50) * 1e3,
            "p95_ms": _percentile(ingest_sorted, 0.95) * 1e3,
        },
        "journal": journal,
        "calibration": {
            "direct_qps": direct,
            "rounds": calibration_rounds,
        },
    }
