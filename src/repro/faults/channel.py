"""A fault-injecting wrapper around any :class:`NetworkChannel`.

:class:`FaultyChannel` sits between the executor and the real channel.
Every submitted copy first passes the injector's gauntlet -- an extra
drop (outside the R5 fairness budget), a kind-corruption, an extra
delivery delay past the channel's bound, a duplicate copy -- and only
then reaches the wrapped channel, whose own drop/delay semantics are
untouched.  Delivery-side methods delegate verbatim, so the executor
cannot tell the difference structurally; runs produced under an active
channel-fault plan are *not* validated against R3/R5 (a duplicate has no
matching second send, an extra drop can exceed the fairness budget) --
the executor skips :func:`repro.model.run.validate_run` for them.
"""

from __future__ import annotations

from typing import Iterable

from repro.faults.plan import FaultInjector
from repro.model.events import Message, ProcessId
from repro.sim.network import Envelope, NetworkChannel

__all__ = ["FaultyChannel"]


class FaultyChannel:
    """Delegating channel wrapper; injection decisions come from the injector.

    Not a :class:`NetworkChannel` subclass (it has no rng or delay state
    of its own) but a structural stand-in: it implements the full
    executor-facing channel API.
    """

    def __init__(self, inner: NetworkChannel, injector: FaultInjector) -> None:
        self.inner = inner
        self.injector = injector

    # -- submission: the injection point ------------------------------------

    def submit(
        self,
        sender: ProcessId,
        receiver: ProcessId,
        message: Message,
        tick: int,
    ) -> bool:
        injector = self.injector
        if injector.drop():
            # Lost outside the fairness budget; still counts as dropped
            # so run.meta message accounting stays conserved.
            self.inner.dropped_count += 1
            return False
        message = injector.corrupt(message)
        accepted = self.inner.submit(sender, receiver, message, tick)
        if not accepted:
            return False
        extra = injector.extra_delay()
        if extra:
            self.inner.delay_last(receiver, extra)
        if injector.duplicate():
            self.inner.duplicate_last(receiver)
        return True

    # -- pure delegation -----------------------------------------------------

    def deliverable(self, receiver: ProcessId, tick: int) -> list[Envelope]:
        return self.inner.deliverable(receiver, tick)

    def consume(self, envelope: Envelope) -> None:
        self.inner.consume(envelope)

    def discard_for(self, receiver: ProcessId) -> None:
        self.inner.discard_for(receiver)

    def in_flight_to(self, receivers: Iterable[ProcessId]) -> int:
        return self.inner.in_flight_to(receivers)

    @property
    def dropped_count(self) -> int:
        return self.inner.dropped_count

    @property
    def delivered_count(self) -> int:
        return self.inner.delivered_count
