"""A lying/omitting wrapper around any :class:`DetectorOracle`.

The paper's detector hierarchy is defined by which completeness and
accuracy properties hold; :class:`FaultyDetectorOracle` exists to make
them *fail on purpose*.  Wrapping a base oracle with
:class:`~repro.faults.plan.DetectorFaults` produces targeted violations:

* ``suppress=("p2",)`` erases ``p2`` from every standard report -- if
  ``p2`` crashes, no process ever suspects it, violating (strong and
  weak, permanent and impermanent) completeness;
* ``falsely_suspect=("p1",)`` injects ``p1`` into every standard report
  -- if ``p1`` is live at report time, strong accuracy is violated;
* ``omission_prob`` swallows whole reports; ``lie_prob`` (gated on
  ``fabricate_interval``) fabricates reports when the base oracle is
  silent.

All randomness comes from a throwaway ``random.Random`` seeded by the
stable string ``"{seed}:{pid}:{tick}"`` -- never from the executor's
adversary rng (whose draw sequence must stay untouched) -- so the same
faults replay bit-identically across processes *and* inside the bounded
explorer, where the oracle is polled with a fixed-seed rng.  A wrapper
whose fault config is inactive returns the base oracle's reports
unchanged.

Generalized ``(S, k)`` reports pass through untouched: the fault model
here targets the standard hierarchy of Section 2.2.
"""

from __future__ import annotations

import random

from repro.detectors.base import DetectorOracle, GroundTruthView
from repro.faults.plan import DetectorFaults, FaultInjector
from repro.model.events import ProcessId, StandardSuspicion, Suspicion

__all__ = ["FaultyDetectorOracle"]


class FaultyDetectorOracle(DetectorOracle):
    """Wrap ``base`` and distort its standard reports per ``faults``."""

    def __init__(
        self,
        base: DetectorOracle,
        faults: DetectorFaults,
        *,
        injector: FaultInjector | None = None,
    ) -> None:
        self.base = base
        self.faults = faults
        self.injector = injector
        self.name = f"faulty({base.name})"

    def _rng_at(self, pid: ProcessId, tick: int) -> random.Random:
        return random.Random(
            f"repro-detector-faults:{self.faults.seed}:{pid}:{tick}"
        )

    def _note(self, key: str) -> None:
        if self.injector is not None:
            self.injector.note(key)

    def poll(
        self,
        pid: ProcessId,
        tick: int,
        truth: GroundTruthView,
        rng: random.Random,
    ) -> Suspicion | None:
        report = self.base.poll(pid, tick, truth, rng)
        faults = self.faults
        if not faults.active:
            return report
        local = self._rng_at(pid, tick)

        if isinstance(report, StandardSuspicion):
            if faults.omission_prob > 0 and local.random() < faults.omission_prob:
                self._note("detector_omissions")
                return None
            return self._distort(pid, report)

        if report is None and self._fabrication_due(tick):
            if local.random() < faults.lie_prob:
                self._note("detector_fabrications")
                return self._fabricated(pid, tick, truth)

        # Generalized reports (and silence) pass through.
        return report

    def _distort(self, pid: ProcessId, report: StandardSuspicion) -> StandardSuspicion:
        suspects = set(report.suspects)
        before = frozenset(suspects)
        suspects -= set(self.faults.suppress)
        suspects |= set(self.faults.falsely_suspect)
        suspects.discard(pid)  # a detector module never suspects its own host
        after = frozenset(suspects)
        if after != before:
            self._note("detector_distortions")
        return StandardSuspicion(after)

    def _fabrication_due(self, tick: int) -> bool:
        faults = self.faults
        return (
            faults.lie_prob > 0
            and faults.fabricate_interval > 0
            and tick % faults.fabricate_interval == 0
        )

    def _fabricated(
        self, pid: ProcessId, tick: int, truth: GroundTruthView
    ) -> StandardSuspicion:
        targets = set(self.faults.falsely_suspect)
        targets.discard(pid)
        if not targets:
            peers = sorted(truth.live_by(tick) - {pid}) or sorted(
                set(truth.processes) - {pid}
            )
            targets = set(peers[:1])
        return StandardSuspicion(frozenset(targets))

    def fresh(self) -> "FaultyDetectorOracle":
        return FaultyDetectorOracle(
            self.base.fresh(), self.faults, injector=self.injector
        )
