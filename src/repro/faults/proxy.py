"""A seeded TCP chaos proxy: wire faults between real sockets.

:class:`FaultPlan` injects failures inside the simulated world and
:class:`InfraFaultPlan` inside the runtime's own process; this module
closes the remaining gap -- the *network* between a real client and a
real server.  :class:`ChaosProxy` sits on a local port, relays every
connection to an upstream address, and perturbs the byte stream
according to a :class:`WireFaultPlan`: added latency, bandwidth
throttling, partial writes (frames delivered a few bytes at a time),
mid-frame disconnects, and single-byte corruption.

The package invariants carry over:

* **Replayability.**  Every decision is drawn from a dedicated
  :class:`random.Random` seeded by ``(plan.seed, connection index,
  direction)`` -- decisions are a pure function of the seed and the
  (connection, chunk) position, so a soak rerun with the same seed
  replays the same fault schedule.  (TCP chunk *boundaries* are
  OS-dependent; harnesses assert invariants that hold under any
  interleaving, and record the observed fault counts for audit.)
* **Transparency at zero.**  ``WireFaultPlan()`` is inactive: the proxy
  degenerates to a clean relay and a protocol exchange through it is
  byte-identical to a direct connection.

The serve soak harness (``python -m repro.harness serve-soak``) drives
a client fleet through this proxy at an :class:`~repro.serve.server.EpistemicServer`
and asserts the robustness contract: wrong answers never, structured
error codes only, full recovery after a SIGKILL.
"""

from __future__ import annotations

import asyncio
import random
from dataclasses import dataclass

__all__ = ["ChaosProxy", "WireFaultInjector", "WireFaultPlan"]

#: Read size of the relay loop; fault decisions are per chunk read.
_READ_CHUNK = 65536


@dataclass(frozen=True)
class WireFaultPlan:
    """Wire-level misbehaviour between a client and a server.

    All probabilities are per relayed chunk (one upstream/downstream
    read, at most ``64 KiB``).  The default plan is inactive; the proxy
    then relays bytes verbatim.
    """

    seed: int = 0
    #: Probability a chunk is delayed before relay.
    latency_prob: float = 0.0
    #: Upper bound of the injected delay, milliseconds (uniform draw).
    max_latency_ms: int = 50
    #: Bandwidth ceiling, bytes/second (0: unthrottled).
    throttle_bytes_per_s: int = 0
    #: Probability a chunk is relayed as many tiny writes instead of one.
    partial_write_prob: float = 0.0
    #: Piece size ceiling for partial writes, bytes.
    max_partial_bytes: int = 16
    #: Probability the connection is torn down before a chunk is
    #: relayed -- a mid-frame disconnect as the peers see it.
    disconnect_prob: float = 0.0
    #: Probability one byte of a chunk is flipped in flight.
    corrupt_prob: float = 0.0

    def __post_init__(self) -> None:
        for name in (
            "latency_prob",
            "partial_write_prob",
            "disconnect_prob",
            "corrupt_prob",
        ):
            value = getattr(self, name)
            if not isinstance(value, float) or not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be a float in [0, 1]")
        if self.max_latency_ms < 1:
            raise ValueError("max_latency_ms must be >= 1")
        if self.max_partial_bytes < 1:
            raise ValueError("max_partial_bytes must be >= 1")
        if self.throttle_bytes_per_s < 0:
            raise ValueError("throttle_bytes_per_s must be non-negative")

    @property
    def active(self) -> bool:
        return (
            self.latency_prob > 0
            or self.throttle_bytes_per_s > 0
            or self.partial_write_prob > 0
            or self.disconnect_prob > 0
            or self.corrupt_prob > 0
        )

    def injector(self, connection: int, direction: str) -> "WireFaultInjector":
        """The decision stream for one direction of one connection."""
        return WireFaultInjector(self, connection, direction)


class WireFaultInjector:
    """Seeded per-(connection, direction) fault decisions, with counters."""

    def __init__(self, plan: WireFaultPlan, connection: int, direction: str) -> None:
        self.plan = plan
        self.rng = random.Random(
            f"repro-wire-faults:{plan.seed}:{connection}:{direction}"
        )
        self.counts: dict[str, int] = {}

    def note(self, kind: str) -> None:
        self.counts[kind] = self.counts.get(kind, 0) + 1

    def delay_seconds(self) -> float:
        """Injected latency ahead of the next chunk (0.0: none)."""
        if self.plan.latency_prob and self.rng.random() < self.plan.latency_prob:
            self.note("delayed")
            return self.rng.randint(1, self.plan.max_latency_ms) / 1000.0
        return 0.0

    def throttle_seconds(self, nbytes: int) -> float:
        """Pacing sleep owed after relaying ``nbytes``."""
        if self.plan.throttle_bytes_per_s <= 0:
            return 0.0
        return nbytes / float(self.plan.throttle_bytes_per_s)

    def should_disconnect(self) -> bool:
        if self.plan.disconnect_prob and self.rng.random() < self.plan.disconnect_prob:
            self.note("disconnected")
            return True
        return False

    def corrupt(self, data: bytes) -> bytes:
        """Maybe flip one byte (a nonzero xor, so the chunk always changes)."""
        if (
            data
            and self.plan.corrupt_prob
            and self.rng.random() < self.plan.corrupt_prob
        ):
            self.note("corrupted")
            position = self.rng.randrange(len(data))
            mutated = bytearray(data)
            mutated[position] ^= self.rng.randint(1, 255)
            return bytes(mutated)
        return data

    def pieces(self, data: bytes) -> list[bytes]:
        """The write pieces for one chunk (several tiny ones when the
        partial-write fault fires, the chunk itself otherwise)."""
        if (
            data
            and self.plan.partial_write_prob
            and self.rng.random() < self.plan.partial_write_prob
        ):
            self.note("partial")
            out: list[bytes] = []
            offset = 0
            while offset < len(data):
                step = self.rng.randint(1, self.plan.max_partial_bytes)
                out.append(data[offset : offset + step])
                offset += step
            return out
        return [data]


class ChaosProxy:
    """A TCP relay that perturbs traffic per a :class:`WireFaultPlan`."""

    def __init__(
        self,
        plan: WireFaultPlan,
        upstream_host: str,
        upstream_port: int,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        linger: float = 0.5,
    ) -> None:
        self.plan = plan
        self.upstream_host = upstream_host
        self.upstream_port = upstream_port
        self.host = host
        self.port = port
        #: Grace granted to the opposite direction after a clean EOF,
        #: so a response already in flight still lands.
        self.linger = linger
        self.connections = 0
        self.counts: dict[str, int] = {}
        self._server: asyncio.base_events.Server | None = None
        self._conn_tasks: set[asyncio.Task[None]] = set()

    async def start(self) -> tuple[str, int]:
        """Bind the local listener; returns the bound (host, port)."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        sockname: tuple[str, int] = self._server.sockets[0].getsockname()[:2]
        self.host, self.port = sockname
        return self.host, self.port

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)
        self._conn_tasks.clear()

    def summary(self) -> dict[str, int]:
        """Aggregate fault counts over all closed connections."""
        return dict(sorted(self.counts.items()))

    def _absorb(self, injector: WireFaultInjector) -> None:
        for kind, count in injector.counts.items():
            self.counts[kind] = self.counts.get(kind, 0) + count

    async def _handle_connection(
        self, client_reader: asyncio.StreamReader, client_writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        assert task is not None
        self._conn_tasks.add(task)
        connection = self.connections
        self.connections += 1
        try:
            upstream_reader, upstream_writer = await asyncio.open_connection(
                self.upstream_host, self.upstream_port
            )
        except OSError:
            # Upstream down (e.g. mid-soak SIGKILL): the client sees a
            # plain connection drop, which its retry layer owns.
            self.counts["upstream_refused"] = self.counts.get("upstream_refused", 0) + 1
            self._conn_tasks.discard(task)
            client_writer.close()
            return
        send = self.plan.injector(connection, "send")
        recv = self.plan.injector(connection, "recv")
        pump_up = asyncio.ensure_future(
            self._pump(client_reader, upstream_writer, send)
        )
        pump_down = asyncio.ensure_future(
            self._pump(upstream_reader, client_writer, recv)
        )
        try:
            done, pending = await asyncio.wait(
                {pump_up, pump_down}, return_when=asyncio.FIRST_COMPLETED
            )
            clean = all(t.exception() is None and t.result() == "eof" for t in done)
            if pending and clean:
                # One side closed cleanly: let the other drain briefly.
                _done, pending = await asyncio.wait(pending, timeout=self.linger)
            for leftover in pending:
                leftover.cancel()
            if pending:
                await asyncio.gather(*pending, return_exceptions=True)
        except asyncio.CancelledError:
            # stop() tears connections down; end quietly (asyncio's
            # stream machinery logs handlers that finish cancelled).
            pump_up.cancel()
            pump_down.cancel()
            await asyncio.gather(pump_up, pump_down, return_exceptions=True)
        finally:
            self._conn_tasks.discard(task)
            self._absorb(send)
            self._absorb(recv)
            for writer in (client_writer, upstream_writer):
                writer.close()
            for writer in (client_writer, upstream_writer):
                try:
                    await writer.wait_closed()
                except (
                    ConnectionResetError,
                    BrokenPipeError,
                    OSError,
                    asyncio.CancelledError,
                ):
                    pass

    async def _pump(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        injector: WireFaultInjector,
    ) -> str:
        """Relay one direction until EOF or an injected disconnect."""
        try:
            while True:
                data = await reader.read(_READ_CHUNK)
                if not data:
                    return "eof"
                delay = injector.delay_seconds()
                if delay:
                    await asyncio.sleep(delay)
                if injector.should_disconnect():
                    return "disconnect"
                data = injector.corrupt(data)
                for piece in injector.pieces(data):
                    writer.write(piece)
                    await writer.drain()
                pacing = injector.throttle_seconds(len(data))
                if pacing:
                    await asyncio.sleep(pacing)
        except (ConnectionResetError, BrokenPipeError, OSError):
            return "reset"
