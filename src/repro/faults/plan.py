"""Seeded, replayable fault plans: injecting failures *beyond* the model.

The paper's contexts already contain adversity -- crashes (A1/A5_t),
fair-lossy channels (R5), detectors of bounded accuracy -- and the
executor samples it through one seeded adversary.  A :class:`FaultPlan`
describes failures *outside* that model: message duplication, payload
corruption, delivery past the channel's delay bound, drops past the R5
fairness budget, detector omissions and lies, and per-process stalls.

Two invariants make the plans usable as infrastructure:

* **Replayability.**  All randomized decisions are drawn from a
  dedicated :class:`random.Random` seeded by ``(plan.seed, run seed)``
  -- never from the executor's adversary rng -- so the same plan
  against the same spec injects byte-identical faults, in any process.
* **Transparency at zero.**  An empty plan (``FaultPlan()`` /
  ``FaultPlan.none()``) is never wired in at all: the executor's output
  is bit-identical to an un-instrumented execution.

Plans are frozen dataclasses, so they pickle (they ride inside
:class:`repro.sim.executor.ExecutionConfig`, crossing process
boundaries with their spec) and they participate in the run cache's
content digest -- a faulted spec can never alias a clean one.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace

from repro.model.events import Message, ProcessId

__all__ = ["ChannelFaults", "DetectorFaults", "FaultInjector", "FaultPlan"]

#: Corrupted messages keep their payload but get a poisoned kind, so
#: protocols (which dispatch on kind) see a delivery they cannot parse
#: -- the simulation analogue of a checksum failure -- without the
#: injector having to understand payload schemas.
CORRUPT_KIND_PREFIX = "corrupt:"


@dataclass(frozen=True)
class ChannelFaults:
    """Channel misbehaviour past the spec: duplication, corruption,
    delay beyond the bound, and drops outside the R5 fairness budget.

    All probabilities are per submitted copy.  ``drop_prob`` drops are
    applied *before* the wrapped channel sees the copy, so they are not
    counted against (and not clamped by) the fairness budget: a plan
    with ``drop_prob > 0`` can violate R5, which is exactly what the
    negative tests need.
    """

    duplicate_prob: float = 0.0
    corrupt_prob: float = 0.0
    drop_prob: float = 0.0
    delay_prob: float = 0.0
    max_extra_delay: int = 6

    def __post_init__(self) -> None:
        for name in ("duplicate_prob", "corrupt_prob", "drop_prob", "delay_prob"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1]")
        if self.max_extra_delay < 1:
            raise ValueError("max_extra_delay must be >= 1")

    @property
    def active(self) -> bool:
        return (
            self.duplicate_prob > 0
            or self.corrupt_prob > 0
            or self.drop_prob > 0
            or self.delay_prob > 0
        )


@dataclass(frozen=True)
class DetectorFaults:
    """Detector misbehaviour: omissions (completeness violations) and
    lies (accuracy violations).

    * ``suppress`` -- processes that are erased from every standard
      report: a crashed member of ``suppress`` is never suspected, a
      targeted completeness violation.
    * ``omission_prob`` -- probability an entire report is swallowed.
    * ``falsely_suspect`` -- processes injected into every standard
      report (typically live ones: a targeted accuracy violation).
    * ``lie_prob`` + ``fabricate_interval`` -- with no report due, lie
      spontaneously: every ``fabricate_interval`` ticks, with
      probability ``lie_prob``, emit a fabricated suspicion of
      ``falsely_suspect`` (or of the first live peer when empty).

    Decisions are drawn from a :class:`random.Random` seeded by the
    stable string ``"{seed}:{pid}:{tick}"``, so the same faults replay
    identically across processes and inside the bounded explorer.
    """

    suppress: tuple[ProcessId, ...] = ()
    omission_prob: float = 0.0
    falsely_suspect: tuple[ProcessId, ...] = ()
    lie_prob: float = 0.0
    fabricate_interval: int = 0
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "suppress", tuple(self.suppress))
        object.__setattr__(self, "falsely_suspect", tuple(self.falsely_suspect))
        if not 0.0 <= self.omission_prob <= 1.0:
            raise ValueError("omission_prob must be in [0, 1]")
        if not 0.0 <= self.lie_prob <= 1.0:
            raise ValueError("lie_prob must be in [0, 1]")
        if self.fabricate_interval < 0:
            raise ValueError("fabricate_interval must be >= 0")

    @property
    def active(self) -> bool:
        return (
            bool(self.suppress)
            or self.omission_prob > 0
            or bool(self.falsely_suspect)
            or self.lie_prob > 0
        )


@dataclass(frozen=True)
class FaultPlan:
    """One run's injected-fault schedule: channel + detector + stalls.

    ``stalls`` is a tuple of ``(process, start_tick, end_tick)`` windows
    during which the process takes no step at all (models GC pauses /
    scheduling starvation beyond the adversary's bounded skips); stall
    windows are deterministic, no randomness involved.
    """

    seed: int = 0
    channel: ChannelFaults | None = None
    detector: DetectorFaults | None = None
    stalls: tuple[tuple[ProcessId, int, int], ...] = field(default=())

    def __post_init__(self) -> None:
        object.__setattr__(self, "stalls", tuple(self.stalls))
        for pid, start, end in self.stalls:
            if not 1 <= start < end:
                raise ValueError(
                    f"stall window for {pid!r} needs 1 <= start < end"
                )

    @classmethod
    def none(cls) -> "FaultPlan":
        """The empty plan (never wired into an executor at all)."""
        return cls()

    def with_(self, **changes: object) -> "FaultPlan":
        """A copy with the given fields replaced (sweep helper)."""
        return replace(self, **changes)  # type: ignore[arg-type]

    @property
    def is_empty(self) -> bool:
        """True iff wiring this plan in can have no effect whatsoever."""
        return (
            (self.channel is None or not self.channel.active)
            and (self.detector is None or not self.detector.active)
            and not self.stalls
        )

    def injector(self, run_seed: int) -> "FaultInjector":
        """The per-run injector: all decisions derive from (plan, run) seeds."""
        return FaultInjector(self, run_seed)


class FaultInjector:
    """Per-run fault decisions plus the counters that make them auditable.

    One injector serves one execution.  Channel decisions consume a
    private sequential rng (the submission order is deterministic given
    the spec, so the draw sequence replays); stall decisions are pure
    lookups.  Counters land in ``run.meta["faults"]`` so a differential
    test can assert byte-identical injection across replays.
    """

    __slots__ = ("plan", "rng", "counters")

    def __init__(self, plan: FaultPlan, run_seed: int) -> None:
        self.plan = plan
        self.rng = random.Random(f"repro-faults:{plan.seed}:{run_seed}")
        self.counters: dict[str, int] = {}

    def note(self, key: str, amount: int = 1) -> None:
        self.counters[key] = self.counters.get(key, 0) + amount

    # -- channel decisions ---------------------------------------------------

    @property
    def channel_faults_active(self) -> bool:
        return self.plan.channel is not None and self.plan.channel.active

    def drop(self) -> bool:
        """Drop this copy outside the fairness budget (R5 violation)?"""
        faults = self.plan.channel
        if faults is None or faults.drop_prob <= 0:
            return False
        if self.rng.random() < faults.drop_prob:
            self.note("extra_drops")
            return True
        return False

    def corrupt(self, message: Message) -> Message:
        """Possibly poison the message kind (payload survives)."""
        faults = self.plan.channel
        if faults is None or faults.corrupt_prob <= 0:
            return message
        if self.rng.random() < faults.corrupt_prob:
            self.note("corruptions")
            return Message(CORRUPT_KIND_PREFIX + message.kind, message.payload)
        return message

    def extra_delay(self) -> int:
        """Ticks of delay past the channel's bound for this copy (0 = none)."""
        faults = self.plan.channel
        if faults is None or faults.delay_prob <= 0:
            return 0
        if self.rng.random() < faults.delay_prob:
            self.note("extra_delays")
            return self.rng.randint(1, faults.max_extra_delay)
        return 0

    def duplicate(self) -> bool:
        """Inject a second copy of this submission?"""
        faults = self.plan.channel
        if faults is None or faults.duplicate_prob <= 0:
            return False
        if self.rng.random() < faults.duplicate_prob:
            self.note("duplicates")
            return True
        return False

    # -- process stalls ------------------------------------------------------

    def stalled(self, pid: ProcessId, tick: int) -> bool:
        """Is ``pid`` inside one of its stall windows at ``tick``?"""
        for victim, start, end in self.plan.stalls:
            if victim == pid and start <= tick < end:
                self.note("stalled_ticks")
                return True
        return False

    def summary(self) -> dict[str, int]:
        """A copy of the injection counters (for ``run.meta['faults']``)."""
        return dict(self.counters)
