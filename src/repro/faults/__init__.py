"""Deterministic fault injection, inside and outside the simulated world.

Two layers, one package:

* **Model-level faults** (:class:`FaultPlan` riding inside
  ``ExecutionConfig.fault_plan``): message duplication / corruption /
  extra delay / unfair drops, detector omissions and lies, per-process
  stalls.  Seeded and replayable -- the same plan against the same spec
  injects byte-identical faults -- and transparent at zero: an empty
  plan leaves runs bit-identical to the un-instrumented executor.  These
  exist to *negatively* test the paper's property checkers and protocol
  claims: a detector wrapped in :class:`FaultyDetectorOracle` with
  ``suppress`` violates completeness on purpose, and the checkers in
  :mod:`repro.detectors.properties` must say so.

* **Infrastructure faults** (:class:`InfraFaultPlan`, installed
  process-wide): worker death, hung runs, cache corruption -- chaos for
  the hardened runtime (deadlines, retries with backoff, cache
  quarantine, degraded :class:`~repro.runtime.report.EnsembleReport`) to
  survive.  Invisible to spec digests by design.

* **Wire faults** (:class:`WireFaultPlan` driving a :class:`ChaosProxy`):
  a seeded TCP relay between a real client and a real server --
  latency, throttling, partial writes, mid-frame disconnects, byte
  corruption -- chaos for the hardened serve layer (admission control,
  deadlines, checksums, journal recovery) to survive.

See DESIGN.md §10 for the line between the paper's fault *model* and
this package's fault *injection*.
"""

from repro.faults.channel import FaultyChannel
from repro.faults.detector import FaultyDetectorOracle
from repro.faults.infra import (
    InfraFaultPlan,
    active_infra_faults,
    corrupt_cache_entry,
    install_infra_faults,
    use_infra_faults,
)
from repro.faults.plan import (
    ChannelFaults,
    DetectorFaults,
    FaultInjector,
    FaultPlan,
)
from repro.faults.proxy import ChaosProxy, WireFaultInjector, WireFaultPlan

__all__ = [
    "ChannelFaults",
    "ChaosProxy",
    "DetectorFaults",
    "FaultInjector",
    "FaultPlan",
    "FaultyChannel",
    "FaultyDetectorOracle",
    "InfraFaultPlan",
    "WireFaultInjector",
    "WireFaultPlan",
    "active_infra_faults",
    "corrupt_cache_entry",
    "install_infra_faults",
    "use_infra_faults",
]
