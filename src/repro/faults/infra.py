"""Infrastructure chaos: worker death, hung runs, and cache corruption.

Where :mod:`repro.faults.plan` injects faults *inside* the simulated
world, this module injects them into the machinery that executes it --
the fault classes the hardened runtime (retry/backoff, deadlines, cache
quarantine, degraded reports) exists to survive.  Everything here is
test/CI scaffolding: nothing in the runtime imports it except the
execution hook below.

An :class:`InfraFaultPlan` is *installed* process-wide (module global)
rather than attached to specs, deliberately: these faults must be
invisible to the spec digest -- an ensemble run under chaos must hit the
same cache entries and produce the same runs as a clean one.  Pool
workers inherit the installed plan through ``fork`` (the Linux default
start method), so a plan installed before ``run_ensemble`` is live in
every worker.

Kill faults fire **once** per (state_dir, seed): the first worker to
execute the victim spec claims a marker file with ``open(path, "x")``
(atomic on POSIX) and dies with ``os._exit(1)``; after the pool is
respawned and the spec requeued, the marker makes the retry succeed.
Hang faults are **persistent** -- every attempt sleeps -- modelling a
spec that is genuinely slow, so deadline enforcement (not retry) is what
catches it.  Kills are suppressed in the parent process: a serial
backend must never take the whole interpreter down.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Iterator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.spec import RunSpec

__all__ = [
    "InfraFaultPlan",
    "active_infra_faults",
    "corrupt_cache_entry",
    "install_infra_faults",
    "use_infra_faults",
]


@dataclass(frozen=True)
class InfraFaultPlan:
    """Which specs (by adversary seed) suffer which infrastructure fault.

    ``state_dir`` holds the once-only kill markers and must be shared by
    parent and workers (any writable directory; a pytest ``tmp_path``
    works).
    """

    state_dir: str
    kill_worker_seeds: tuple[int, ...] = ()
    #: (seed, seconds): every execution attempt of that seed sleeps first
    hangs: tuple[tuple[int, float], ...] = ()

    def kill_marker(self, seed: int) -> Path:
        return Path(self.state_dir) / f"killed-seed-{seed}"

    def on_execute(self, spec: "RunSpec") -> None:
        """The execution hook: called by the backends before each run."""
        for seed, seconds in self.hangs:
            if spec.seed == seed:
                time.sleep(seconds)
        if spec.seed in self.kill_worker_seeds:
            self._maybe_die(spec.seed)

    def _maybe_die(self, seed: int) -> None:
        if multiprocessing.parent_process() is None:
            return  # never kill the parent interpreter
        try:
            fd = os.open(
                self.kill_marker(seed), os.O_CREAT | os.O_EXCL | os.O_WRONLY
            )
        except FileExistsError:
            return  # this seed already claimed its kill
        os.close(fd)
        os._exit(1)  # simulate a hard worker crash (no unwinding, no cleanup)


_ACTIVE: InfraFaultPlan | None = None


def install_infra_faults(plan: InfraFaultPlan | None) -> None:
    """Install (or clear, with None) the process-wide infra fault plan."""
    # driver-side singleton: workers receive the plan via env vars, never
    # by mutating this module in a worker path
    global _ACTIVE  # repro: lint-ok[POOL002]
    _ACTIVE = plan


def active_infra_faults() -> InfraFaultPlan | None:
    """The currently installed plan, if any (consulted by the backends)."""
    return _ACTIVE


@contextmanager
def use_infra_faults(plan: InfraFaultPlan) -> Iterator[InfraFaultPlan]:
    """Scope an installed plan to a ``with`` block."""
    install_infra_faults(plan)
    try:
        yield plan
    finally:
        install_infra_faults(None)


def corrupt_cache_entry(directory: str | Path, digest: str) -> Path:
    """Overwrite a disk cache entry with garbage (torn-write simulation).

    Returns the path written.  The hardened :class:`repro.runtime.RunCache`
    must quarantine the entry on its next read and regenerate the run.
    """
    path = Path(directory) / f"{digest}.json"
    path.write_text('{"format": "repro-run-entry-v2", "sha2', encoding="utf-8")
    return path
