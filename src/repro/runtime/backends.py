"""Execution backends: where and how a batch of RunSpecs is executed.

All backends satisfy the same contract: ``run_all(specs)`` returns one
``(run, wall_time)`` pair per spec, **in spec order**, and every run is
bitwise what ``Executor.from_spec(spec).run()`` produces -- executions
are deterministic functions of their specs, so placement (this process,
a worker pool, eventually a remote fleet) is invisible in the results.

* :class:`SerialBackend` -- executes in-process, one spec after another.
  The default; identical to the pre-runtime behaviour.
* :class:`ProcessPoolBackend` -- fans chunks of specs out to a
  ``concurrent.futures.ProcessPoolExecutor``.  Specs must pickle (see
  :func:`repro.runtime.spec.spec_digest`); results are re-ordered by
  spec index, so output order never depends on worker scheduling.

The module-level default backend is what ``run_ensemble`` uses when no
backend is passed; it is ``serial`` unless overridden by
``set_default_backend`` or the ``REPRO_BACKEND`` environment variable
(``serial``, ``process``, or ``process:N`` for N workers).
"""

from __future__ import annotations

import os
import pickle
import time
from abc import ABC, abstractmethod
from concurrent.futures import ProcessPoolExecutor
from typing import Sequence

from repro.model.run import Run
from repro.runtime.spec import RunSpec
from repro.sim.executor import Executor

#: One backend result: the run plus its measured wall time in seconds.
TimedRun = tuple[Run, float]


def _execute_spec(spec: RunSpec) -> TimedRun:
    start = time.perf_counter()
    run = Executor.from_spec(spec).run()
    return run, time.perf_counter() - start


def _execute_chunk(chunk: list[tuple[int, RunSpec]]) -> list[tuple[int, TimedRun]]:
    """Worker entry point: execute an indexed chunk of specs."""
    return [(index, _execute_spec(spec)) for index, spec in chunk]


class ExecutionBackend(ABC):
    """Executes batches of RunSpecs; results are ordered by spec index."""

    #: short name recorded in EnsembleReport.backend
    name: str = "backend"

    @abstractmethod
    def run_all(self, specs: Sequence[RunSpec]) -> list[TimedRun]:
        """Execute every spec; element i corresponds to specs[i]."""


class SerialBackend(ExecutionBackend):
    """In-process sequential execution (the default)."""

    name = "serial"

    def run_all(self, specs: Sequence[RunSpec]) -> list[TimedRun]:
        return [_execute_spec(spec) for spec in specs]


class ProcessPoolBackend(ExecutionBackend):
    """Parallel execution over a worker-process pool.

    Specs are dispatched in contiguous chunks (amortizing pickling and
    task overhead) and results are re-assembled by index, so the output
    order is deterministic regardless of which worker finished first.
    """

    name = "process-pool"

    def __init__(self, max_workers: int | None = None, chunksize: int | None = None):
        if max_workers is not None and max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        self.max_workers = max_workers or min(4, os.cpu_count() or 1)
        if chunksize is not None and chunksize < 1:
            raise ValueError("chunksize must be >= 1")
        self.chunksize = chunksize

    def _check_picklable(self, specs: Sequence[RunSpec]) -> None:
        for i, spec in enumerate(specs):
            try:
                pickle.dumps(spec, protocol=4)
            except Exception as exc:
                raise ValueError(
                    f"spec {i} (seed={spec.seed}) is not picklable and cannot "
                    f"cross process boundaries: {exc!r}; use SerialBackend or "
                    "replace closures/lambdas in the spec with the picklable "
                    "factory classes (e.g. repro.sim.process.UniformProtocol)"
                ) from exc

    def run_all(self, specs: Sequence[RunSpec]) -> list[TimedRun]:
        n = len(specs)
        if n == 0:
            return []
        if n == 1 or self.max_workers == 1:
            return SerialBackend().run_all(specs)
        self._check_picklable(specs)
        chunksize = self.chunksize or max(1, -(-n // (self.max_workers * 4)))
        indexed = list(enumerate(specs))
        chunks = [
            indexed[i : i + chunksize] for i in range(0, n, chunksize)
        ]
        results: list[TimedRun | None] = [None] * n
        with ProcessPoolExecutor(max_workers=self.max_workers) as pool:
            for chunk_result in pool.map(_execute_chunk, chunks):
                for index, timed in chunk_result:
                    results[index] = timed
        missing = [i for i, r in enumerate(results) if r is None]
        if missing:  # pragma: no cover - defensive
            raise RuntimeError(f"backend lost results for specs {missing}")
        return results  # type: ignore[return-value]


_default_backend: ExecutionBackend | None = None


def backend_from_name(name: str) -> ExecutionBackend:
    """Resolve ``serial`` / ``process`` / ``process:N`` to a backend."""
    name = name.strip().lower()
    if name in ("", "serial"):
        return SerialBackend()
    if name == "process":
        return ProcessPoolBackend()
    if name.startswith("process:"):
        return ProcessPoolBackend(max_workers=int(name.split(":", 1)[1]))
    raise ValueError(
        f"unknown backend {name!r}; expected 'serial', 'process', or 'process:N'"
    )


def get_default_backend() -> ExecutionBackend:
    """The backend ``run_ensemble`` uses when none is given."""
    global _default_backend
    if _default_backend is None:
        _default_backend = backend_from_name(os.environ.get("REPRO_BACKEND", "serial"))
    return _default_backend


def set_default_backend(backend: ExecutionBackend | str | None) -> None:
    """Override the process-wide default backend (None resets to env/serial)."""
    global _default_backend
    if isinstance(backend, str):
        backend = backend_from_name(backend)
    _default_backend = backend
