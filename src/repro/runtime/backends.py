"""Execution backends: where and how a batch of RunSpecs is executed.

All backends satisfy the same contract: ``run_all_safe(specs)`` returns
a :class:`BatchResult` with one outcome per spec, **in spec order** --
either a ``(run, wall_time)`` pair or a structured
:class:`~repro.runtime.report.FailedRun` -- and every run is bitwise
what ``Executor.from_spec(spec).run()`` produces: executions are
deterministic functions of their specs, so placement (this process, a
worker pool, eventually a remote fleet) is invisible in the results.

Hardening semantics, shared by all backends:

* transient failures (executor exceptions, dead pool workers) are
  retried per :class:`RetryPolicy` with exponential backoff;
* deadline overruns (:class:`~repro.sim.executor.RunDeadlineExceeded`)
  are **not** retried -- a spec that overran its wall-clock budget once
  is presumed slow, not unlucky;
* a spec that succeeds after earlier failed attempts contributes a
  *recovery* record (``FailedRun(recovered=True)``) so degraded-path
  behaviour stays observable;
* :class:`ProcessPoolBackend` survives ``BrokenProcessPool``: the pool
  is respawned, the specs of the broken chunks are requeued (chunk size
  1, isolating any poison spec), bounded by the same retry policy.

``run_all(specs)`` is the strict wrapper: any surviving failure raises
``RuntimeError`` naming the lost seeds and crash plans.

The module-level default backend is what ``run_ensemble`` uses when no
backend is passed; it is ``serial`` unless overridden by
``set_default_backend`` or the ``REPRO_BACKEND`` environment variable
(``serial``, ``process``, or ``process:N`` for N workers).
"""

from __future__ import annotations

import os
import pickle
import random
import time
import traceback
from abc import ABC, abstractmethod
from concurrent.futures import BrokenExecutor, Future, ProcessPoolExecutor
from dataclasses import dataclass
from typing import Sequence

from repro.faults.infra import active_infra_faults
from repro.model.run import Run
from repro.runtime.report import FailedRun
from repro.runtime.spec import RunSpec
from repro.sim.executor import Executor, RunDeadlineExceeded

#: One successful backend result: the run plus its wall time in seconds.
TimedRun = tuple[Run, float]


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with exponential backoff (and optional jitter).

    ``delay(attempt)`` is the sleep *after* failed attempt number
    ``attempt`` (1-based): base, base*factor, base*factor^2, ... capped
    at ``max_backoff``.  When ``jitter`` is nonzero and a seeded
    ``random.Random`` is supplied, up to ``jitter`` times the computed
    delay is added uniformly -- desynchronizing retry storms from many
    clients without sacrificing replayability (the caller owns the rng
    and its seed).
    """

    max_attempts: int = 3
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    max_backoff: float = 2.0
    jitter: float = 0.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.backoff_base < 0 or self.max_backoff < 0:
            raise ValueError("backoff times must be non-negative")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")

    def delay(self, attempt: int, rng: "random.Random | None" = None) -> float:
        base = min(
            self.max_backoff,
            self.backoff_base * self.backoff_factor ** max(0, attempt - 1),
        )
        if rng is not None and self.jitter > 0:
            base += base * self.jitter * rng.random()
        return base


class Deadline:
    """A cooperative wall-clock budget on the monotonic clock.

    Mirrors ``ExecutionConfig.deadline`` semantics for long-running
    *service* work: the holder polls :attr:`expired` at safe points
    (between queries of a batch, between soak rounds) and sheds the
    remainder with a structured error instead of being interrupted
    mid-computation.  ``Deadline.after(None)`` never expires, so call
    sites need no conditional wiring.
    """

    __slots__ = ("_at",)

    def __init__(self, at: float | None) -> None:
        self._at = at

    @classmethod
    def after(cls, seconds: float | None) -> "Deadline":
        if seconds is None:
            return cls(None)
        if seconds < 0:
            raise ValueError("deadline seconds must be non-negative")
        return cls(time.monotonic() + seconds)

    @property
    def expired(self) -> bool:
        return self._at is not None and time.monotonic() >= self._at

    def remaining(self) -> float | None:
        """Seconds left (clamped at 0), or None for the infinite deadline."""
        if self._at is None:
            return None
        return max(0.0, self._at - time.monotonic())


@dataclass(frozen=True)
class BatchResult:
    """What a hardened backend returns: per-spec outcomes plus recoveries."""

    #: element i corresponds to specs[i]: a TimedRun or a FailedRun
    outcomes: tuple["TimedRun | FailedRun", ...]
    #: recovered=True records for specs that failed first, then succeeded
    recoveries: tuple[FailedRun, ...] = ()

    @property
    def failures(self) -> tuple[FailedRun, ...]:
        return tuple(o for o in self.outcomes if isinstance(o, FailedRun))


def _execute_spec(spec: RunSpec) -> TimedRun:
    start = time.perf_counter()
    infra = active_infra_faults()
    if infra is not None:
        infra.on_execute(spec)
    run = Executor.from_spec(spec).run()
    elapsed = time.perf_counter() - start
    # Post-hoc deadline check: catches time burned before/around the tick
    # loop (e.g. an injected hang) that the executor's cooperative
    # mid-run check cannot see.
    config = spec.config
    if (
        config is not None
        and config.deadline is not None
        and elapsed > config.deadline
    ):
        raise RunDeadlineExceeded(
            f"run (seed={spec.seed}) took {elapsed:.3f}s, over its "
            f"{config.deadline:.3f}s deadline"
        )
    return run, elapsed


#: Tagged per-spec outcome shipped back from workers (must pickle).
_WireOutcome = tuple[str, object]

def _execute_chunk_safe(
    chunk: list[tuple[int, RunSpec]],
) -> list[tuple[int, _WireOutcome]]:
    """Worker entry point: execute an indexed chunk, never raise."""
    out: list[tuple[int, _WireOutcome]] = []
    for index, spec in chunk:
        try:
            timed = _execute_spec(spec)
        except RunDeadlineExceeded as exc:
            out.append((index, ("deadline", str(exc))))
        except Exception as exc:
            out.append(
                (
                    index,
                    (
                        "error",
                        f"{type(exc).__name__}: {exc}\n"
                        + traceback.format_exc(limit=8),
                    ),
                )
            )
        else:
            out.append((index, ("ok", timed)))
    return out


def _execute_chunk_shipped(chunk: list[tuple[int, RunSpec]]) -> object:
    """Worker entry point with arena transfer.

    Executes the chunk, then parks the successful runs in one shared
    memory arena (:func:`repro.columnar.ship_runs`) so only a small
    header -- not the pickled run graph -- crosses the result pipe.
    Falls back to the plain pickled form when ``REPRO_POOL_TRANSFER`` is
    ``pickle``, when the chunk's runs span distinct process tuples, or
    when shared memory is unavailable; the driver detects the form, so
    the fallback is invisible to the retry machinery.
    """
    results = _execute_chunk_safe(chunk)
    if os.environ.get("REPRO_POOL_TRANSFER", "arena") == "pickle":
        return results
    ok_slots = [
        (pos, index) for pos, (index, (tag, _)) in enumerate(results) if tag == "ok"
    ]
    if not ok_slots:
        return results
    runs: list[Run] = []
    for pos, _ in ok_slots:
        run, _elapsed = results[pos][1][1]  # type: ignore[index]
        runs.append(run)
    procs = runs[0].processes
    if any(run.processes != procs for run in runs):
        return results
    try:
        from repro.columnar.transfer import ship_runs

        shipped = ship_runs(runs)
    except Exception:  # pragma: no cover - environmental
        return results
    stripped = list(results)
    for slot, (pos, index) in enumerate(ok_slots):
        _run, elapsed = results[pos][1][1]  # type: ignore[index]
        stripped[pos] = (index, ("ok-shipped", (slot, elapsed)))
    return ("shipped", stripped, shipped)


def _unship_chunk(raw: object) -> list[tuple[int, _WireOutcome]]:
    """Driver side: normalize a chunk result back to the plain form.

    Shipped chunks have their runs pulled out of shared memory and
    spliced back into ``("ok", (run, elapsed))`` outcomes; a transfer
    failure downgrades just those entries to retryable errors (the
    block is unlinked either way).
    """
    if not (isinstance(raw, tuple) and len(raw) == 3 and raw[0] == "shipped"):
        return raw  # type: ignore[return-value]
    _tag, results, shipped = raw
    try:
        from repro.columnar.transfer import receive_runs

        runs = receive_runs(shipped)
    except Exception as exc:
        return [
            (
                (index, ("error", f"arena transfer failed: {exc!r}"))
                if tag == "ok-shipped"
                else (index, (tag, payload))
            )
            for index, (tag, payload) in results
        ]
    out: list[tuple[int, _WireOutcome]] = []
    for index, (tag, payload) in results:
        if tag == "ok-shipped":
            slot, elapsed = payload  # type: ignore[misc]
            out.append((index, ("ok", (runs[slot], elapsed))))
        else:
            out.append((index, (tag, payload)))
    return out


class ExecutionBackend(ABC):
    """Executes batches of RunSpecs; results are ordered by spec index."""

    #: short name recorded in EnsembleReport.backend
    name: str = "backend"

    @abstractmethod
    def run_all_safe(
        self, specs: Sequence[RunSpec], policy: RetryPolicy | None = None
    ) -> BatchResult:
        """Execute every spec; outcome i corresponds to specs[i].

        Never raises for per-run faults (deadline, executor exception,
        worker death): those become FailedRun outcomes.  Batch-level
        misconfiguration (unpicklable specs on a process pool) still
        raises eagerly, before any execution.
        """

    def run_all(self, specs: Sequence[RunSpec]) -> list[TimedRun]:
        """The strict contract: every spec's TimedRun, or RuntimeError.

        The error message names each lost spec's seed and crash plan so
        a failed batch is diagnosable without re-running it.
        """
        batch = self.run_all_safe(specs)
        results: list[TimedRun] = []
        lost: list[FailedRun] = []
        for outcome in batch.outcomes:
            if isinstance(outcome, FailedRun):
                lost.append(outcome)
            else:
                results.append(outcome)
        if lost:
            detail = "; ".join(f.describe() for f in lost)
            raise RuntimeError(
                f"backend lost results for {len(lost)} of {len(specs)} "
                f"specs: {detail}"
            )
        return results


def _failed(
    index: int,
    spec: RunSpec,
    kind: str,
    attempts: int,
    error: str,
    *,
    recovered: bool = False,
) -> FailedRun:
    return FailedRun(
        index=index,
        seed=spec.seed,
        kind=kind,
        attempts=attempts,
        error=error,
        crash_plan=spec.crash_plan,
        recovered=recovered,
    )


class SerialBackend(ExecutionBackend):
    """In-process sequential execution (the default)."""

    name = "serial"

    def run_all_safe(
        self, specs: Sequence[RunSpec], policy: RetryPolicy | None = None
    ) -> BatchResult:
        policy = policy or RetryPolicy()
        outcomes: list[TimedRun | FailedRun] = []
        recoveries: list[FailedRun] = []
        for index, spec in enumerate(specs):
            last_error = ""
            for attempt in range(1, policy.max_attempts + 1):
                try:
                    timed = _execute_spec(spec)
                except RunDeadlineExceeded as exc:
                    outcomes.append(
                        _failed(index, spec, "deadline", attempt, str(exc))
                    )
                    break
                except Exception as exc:
                    last_error = f"{type(exc).__name__}: {exc}"
                    if attempt >= policy.max_attempts:
                        outcomes.append(
                            _failed(index, spec, "exception", attempt, last_error)
                        )
                        break
                    time.sleep(policy.delay(attempt))
                else:
                    outcomes.append(timed)
                    if attempt > 1:
                        recoveries.append(
                            _failed(
                                index,
                                spec,
                                "exception",
                                attempt,
                                last_error,
                                recovered=True,
                            )
                        )
                    break
        return BatchResult(tuple(outcomes), tuple(recoveries))


class ProcessPoolBackend(ExecutionBackend):
    """Parallel execution over a worker-process pool.

    Specs are dispatched in contiguous chunks (amortizing pickling and
    task overhead) and results are re-assembled by index, so the output
    order is deterministic regardless of which worker finished first.
    A dead worker breaks the whole pool (``BrokenProcessPool``); this
    backend respawns it and requeues the affected specs individually,
    bounded by the retry policy.
    """

    name = "process-pool"

    def __init__(self, max_workers: int | None = None, chunksize: int | None = None):
        if max_workers is not None:
            if isinstance(max_workers, bool) or not isinstance(max_workers, int):
                raise TypeError(
                    f"max_workers must be an int or None, got "
                    f"{type(max_workers).__name__} ({max_workers!r})"
                )
            if max_workers < 1:
                raise ValueError("max_workers must be >= 1")
        if chunksize is not None:
            if isinstance(chunksize, bool) or not isinstance(chunksize, int):
                raise TypeError(
                    f"chunksize must be an int or None, got "
                    f"{type(chunksize).__name__} ({chunksize!r})"
                )
            if chunksize < 1:
                raise ValueError("chunksize must be >= 1")
        self.max_workers = max_workers or min(4, os.cpu_count() or 1)
        self.chunksize = chunksize

    def _check_picklable(self, specs: Sequence[RunSpec]) -> None:
        for i, spec in enumerate(specs):
            try:
                pickle.dumps(spec, protocol=4)
            except Exception as exc:
                raise ValueError(
                    f"spec {i} (seed={spec.seed}) is not picklable and cannot "
                    f"cross process boundaries: {exc!r}; use SerialBackend or "
                    "replace closures/lambdas in the spec with the picklable "
                    "factory classes (e.g. repro.sim.process.UniformProtocol)"
                ) from exc

    def run_all_safe(
        self, specs: Sequence[RunSpec], policy: RetryPolicy | None = None
    ) -> BatchResult:
        policy = policy or RetryPolicy()
        n = len(specs)
        if n == 0:
            return BatchResult(())
        if n == 1 or self.max_workers == 1:
            return SerialBackend().run_all_safe(specs, policy)
        self._check_picklable(specs)
        chunksize = self.chunksize or max(1, -(-n // (self.max_workers * 4)))

        outcomes: list[TimedRun | FailedRun | None] = [None] * n
        attempts = [0] * n
        last_error = [""] * n
        last_kind = [""] * n
        recoveries: list[FailedRun] = []
        queue = list(range(n))
        pool = ProcessPoolExecutor(max_workers=self.max_workers)
        first_round = True
        try:
            while queue:
                # After any failure, fall back to chunk size 1: a poison
                # spec then only takes itself down on the retry.
                csize = chunksize if first_round else 1
                chunks = [queue[i : i + csize] for i in range(0, len(queue), csize)]
                futures: list[tuple[Future[object], list[int]]] = []
                pool_broken = False
                for chunk in chunks:
                    try:
                        future = pool.submit(
                            _execute_chunk_shipped, [(i, specs[i]) for i in chunk]
                        )
                    except BrokenExecutor:
                        pool_broken = True
                        for i in chunk:
                            attempts[i] += 1
                            last_error[i] = "process pool broken before dispatch"
                            last_kind[i] = "worker-crash"
                        continue
                    futures.append((future, chunk))

                retry: list[int] = []
                for future, chunk in futures:
                    try:
                        results = _unship_chunk(future.result())
                    except BrokenExecutor as exc:
                        pool_broken = True
                        for i in chunk:
                            attempts[i] += 1
                            last_error[i] = (
                                f"worker process died: {type(exc).__name__}: {exc}"
                            )
                            last_kind[i] = "worker-crash"
                            retry.append(i)
                        continue
                    for index, (tag, payload) in results:
                        attempts[index] += 1
                        if tag == "ok":
                            outcomes[index] = payload  # type: ignore[assignment]
                            if last_kind[index]:
                                recoveries.append(
                                    _failed(
                                        index,
                                        specs[index],
                                        last_kind[index],
                                        attempts[index],
                                        last_error[index],
                                        recovered=True,
                                    )
                                )
                        elif tag == "deadline":
                            # Deadlines are deterministic slowness, not
                            # transient failure: no retry.
                            outcomes[index] = _failed(
                                index,
                                specs[index],
                                "deadline",
                                attempts[index],
                                str(payload),
                            )
                        else:
                            last_error[index] = str(payload)
                            last_kind[index] = "exception"
                            retry.append(index)

                # Pool-broken chunks never produced results; requeue them.
                retry.extend(
                    i
                    for i in queue
                    if outcomes[i] is None and i not in retry
                )
                if pool_broken:
                    pool.shutdown(wait=False, cancel_futures=True)
                    pool = ProcessPoolExecutor(max_workers=self.max_workers)

                queue = []
                for i in sorted(set(retry)):
                    if attempts[i] >= policy.max_attempts:
                        outcomes[i] = _failed(
                            i,
                            specs[i],
                            last_kind[i] or "lost",
                            attempts[i],
                            last_error[i],
                        )
                    else:
                        queue.append(i)
                if queue:
                    time.sleep(policy.delay(max(attempts[i] for i in queue)))
                first_round = False
        finally:
            pool.shutdown(wait=False, cancel_futures=True)

        for i, outcome in enumerate(outcomes):
            if outcome is None:  # pragma: no cover - defensive
                outcomes[i] = _failed(
                    i, specs[i], "lost", attempts[i], "no result returned"
                )
        return BatchResult(
            tuple(o for o in outcomes if o is not None), tuple(recoveries)
        )


_default_backend: ExecutionBackend | None = None


def backend_from_name(name: str) -> ExecutionBackend:
    """Resolve ``serial`` / ``process`` / ``process:N`` to a backend."""
    name = name.strip().lower()
    if name in ("", "serial"):
        return SerialBackend()
    if name == "process":
        return ProcessPoolBackend()
    if name.startswith("process:"):
        return ProcessPoolBackend(max_workers=int(name.split(":", 1)[1]))
    raise ValueError(
        f"unknown backend {name!r}; expected 'serial', 'process', or 'process:N'"
    )


def get_default_backend() -> ExecutionBackend:
    """The backend ``run_ensemble`` uses when none is given."""
    # driver-side singleton: only the dispatching process consults it
    global _default_backend  # repro: lint-ok[POOL002]
    if _default_backend is None:
        _default_backend = backend_from_name(os.environ.get("REPRO_BACKEND", "serial"))
    return _default_backend


def set_default_backend(backend: ExecutionBackend | str | None) -> None:
    """Override the process-wide default backend (None resets to env/serial)."""
    # driver-side singleton: only the dispatching process consults it
    global _default_backend  # repro: lint-ok[POOL002]
    if isinstance(backend, str):
        backend = backend_from_name(backend)
    _default_backend = backend
