"""Per-run metrics and the ensemble-level report.

Every ``run_ensemble`` call returns an :class:`EnsembleReport`: the runs
(in spec order), one :class:`RunMetrics` per run, and batch-level
figures (backend, total wall time, cache hits).  ``report.system()``
lifts the runs into the :class:`repro.model.system.System` the knowledge
machinery consumes, so the report is a strict superset of what the
legacy ensemble builders returned.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.model.run import Run
from repro.model.system import KernelStats, System
from repro.sim.failures import CrashPlan

if TYPE_CHECKING:  # pragma: no cover
    from repro.explore.monitors import Violation
    from repro.explore.reduction import ExploreStats
    from repro.explore.spec import ExploreSpec
    from repro.model.context import Context
    from repro.runtime.spec import RunSpec


@dataclass(frozen=True)
class FailedRun:
    """One spec the runtime could not (or at first could not) execute.

    ``kind`` classifies the fault:

    * ``"deadline"``     -- the run overran ``ExecutionConfig.deadline``;
    * ``"worker-crash"`` -- a pool worker died (``BrokenProcessPool``);
    * ``"exception"``    -- the executor raised;
    * ``"lost"``         -- the backend could not account for the spec;
    * ``"cache-corrupt"``-- a disk cache entry failed its integrity
      check and was quarantined.

    ``recovered=True`` marks a *recovery* record: a later attempt (or a
    regeneration, for cache corruption) succeeded, so the run is present
    in the report and this record only documents the bumpy road.
    """

    index: int  # position in the expanded spec list
    seed: int
    kind: str
    attempts: int = 1
    error: str = ""
    crash_plan: CrashPlan | None = None
    recovered: bool = False

    def describe(self) -> str:
        crashes = (
            dict(self.crash_plan.crashes)
            if self.crash_plan is not None and self.crash_plan.faulty
            else "none"
        )
        status = "recovered" if self.recovered else "failed"
        detail = f": {self.error}" if self.error else ""
        return (
            f"spec {self.index} (seed={self.seed}, crashes={crashes}) "
            f"{status} [{self.kind}] after {self.attempts} attempt(s){detail}"
        )


@dataclass(frozen=True)
class RunMetrics:
    """What one run cost and produced."""

    index: int  # position in the expanded spec list
    seed: int
    wall_time: float  # seconds; 0.0 for cache hits
    ticks: int  # run.duration
    events: int  # total appended history events
    delivered: int  # messages delivered by the channel
    dropped: int  # messages dropped by the channel
    cached: bool  # served from the run cache
    points: int = 0  # duration + 1: the run's share of the kernel's point space


def metrics_for(index: int, spec: "RunSpec", run: Run, wall_time: float, cached: bool) -> RunMetrics:
    """Assemble the metrics row for one executed (or cached) run."""
    return RunMetrics(
        index=index,
        seed=spec.seed,
        wall_time=wall_time,
        ticks=run.duration,
        events=sum(len(run.timeline(p)) for p in run.processes),
        delivered=int(run.meta.get("delivered", 0)),
        dropped=int(run.meta.get("dropped", 0)),
        cached=cached,
        points=run.duration + 1,
    )


@dataclass(frozen=True)
class EnsembleReport:
    """The outcome of one ``run_ensemble`` call.

    ``runs``/``metrics`` cover the *surviving* specs only; when the
    hardened runtime degraded (deadline, worker crash, exhausted
    retries) the casualties are in ``failures`` and the bumps survived
    along the way (retried exceptions, respawned pools, quarantined
    cache entries) in ``recoveries``.  ``complete`` is True iff nothing
    was lost; ``specs`` always lists the full plan, and
    ``metrics[i].index`` points back into it.
    """

    specs: tuple["RunSpec", ...]
    runs: tuple[Run, ...]
    metrics: tuple[RunMetrics, ...]
    backend: str
    wall_time: float  # whole-batch wall time, seconds
    cache_hits: int
    context: "Context | None" = None
    failures: tuple[FailedRun, ...] = ()
    recoveries: tuple[FailedRun, ...] = ()

    def __len__(self) -> int:
        return len(self.runs)

    @property
    def complete(self) -> bool:
        """Did every planned spec yield a run?"""
        return not self.failures

    def system(self) -> System:
        """The runs as a System (the knowledge machinery's input).

        Memoized: repeated calls return the same System, so the
        epistemic kernel's class tables are built once per report and
        its :class:`~repro.model.system.KernelStats` accumulate where
        :attr:`kernel_stats` (and :meth:`summary`) can surface them.

        A degraded report builds the System over the surviving runs;
        the System carries ``missing_runs=len(failures)`` and its
        :class:`~repro.model.system.IncompleteSystemWarning` says how
        incomplete the sample is.
        """
        if not self.runs:
            raise ValueError(
                "ensemble degraded to zero surviving runs; see report.failures"
            )
        cached = getattr(self, "_system", None)
        if cached is None:
            cached = System(
                self.runs,
                context=self.context,
                missing_runs=len(self.failures),
            )
            # audited memoisation: fills a write-once cache slot on a
            # frozen report; the System itself is freshly constructed
            object.__setattr__(self, "_system", cached)  # repro: lint-ok[INV003]
        return cached

    @property
    def kernel_stats(self) -> "KernelStats | None":
        """Kernel counters of the memoized system, or None before
        ``system()`` has ever been called (no kernel work happened)."""
        cached = getattr(self, "_system", None)
        return cached.stats if cached is not None else None

    # -- aggregates ---------------------------------------------------------

    @property
    def executed(self) -> int:
        return len(self.runs) - self.cache_hits

    @property
    def total_ticks(self) -> int:
        return sum(m.ticks for m in self.metrics)

    @property
    def total_delivered(self) -> int:
        return sum(m.delivered for m in self.metrics)

    @property
    def total_dropped(self) -> int:
        return sum(m.dropped for m in self.metrics)

    @property
    def run_wall_time(self) -> float:
        """Summed per-run execution time (> wall_time under parallelism)."""
        return sum(m.wall_time for m in self.metrics)

    def summary(self) -> str:
        """One readable paragraph of batch statistics."""
        n = len(self.runs)
        mean_ticks = self.total_ticks / n if n else 0.0
        planned = len(self.specs)
        headline = f"ensemble of {n} runs via {self.backend} backend in {self.wall_time:.3f}s"
        if self.failures:
            headline += f" [DEGRADED: {len(self.failures)}/{planned} failed]"
        lines = [
            headline,
            f"    executed {self.executed}, cache hits {self.cache_hits}",
            f"    ticks total {self.total_ticks} (mean {mean_ticks:.1f}); "
            f"messages delivered {self.total_delivered}, dropped {self.total_dropped}",
        ]
        for failed in self.failures:
            lines.append(f"    FAILED {failed.describe()}")
        for recovery in self.recoveries:
            lines.append(f"    recovered {recovery.describe()}")
        if self.executed:
            lines.append(
                f"    per-run wall time sum {self.run_wall_time:.3f}s "
                f"(speedup x{self.run_wall_time / self.wall_time:.2f})"
                if self.wall_time > 0
                else f"    per-run wall time sum {self.run_wall_time:.3f}s"
            )
        stats = self.kernel_stats
        if stats is not None and stats.index_builds + stats.index_derivations:
            lines.append(f"    {stats.render()}")
        return "\n".join(lines)


@dataclass(frozen=True)
class ExploreReport:
    """The outcome of one :func:`repro.explore.explore` call.

    The exhaustive sibling of :class:`EnsembleReport`: ``runs`` is the
    *complete* horizon-bounded run set of the spec's context (when
    ``stats.exhaustive``), ``stats`` carries the
    :class:`~repro.explore.reduction.ExploreStats` counters, and
    ``violations`` whatever the attached monitors flagged.
    """

    spec: "ExploreSpec"
    runs: tuple[Run, ...]
    stats: "ExploreStats"
    violations: tuple["Violation", ...] = ()
    wall_time: float = 0.0
    cached: bool = False
    context: "Context | None" = None

    def __len__(self) -> int:
        return len(self.runs)

    @property
    def complete(self) -> bool:
        """Did exploration cover the whole bounded space?"""
        return self.stats.exhaustive

    def system(self) -> System:
        """The explored runs as a System.

        Memoized like :meth:`EnsembleReport.system`; the system carries
        ``complete=True`` exactly when exploration was exhaustive, which
        is what silences the kernel's
        :class:`~repro.model.system.IncompleteSystemWarning`.
        """
        if not self.runs:
            raise ValueError("exploration produced no runs")
        cached = getattr(self, "_system", None)
        if cached is None:
            cached = System(
                self.runs, context=self.context, complete=self.complete
            )
            # audited memoisation: fills a write-once cache slot on a
            # frozen report; the System itself is freshly constructed
            object.__setattr__(self, "_system", cached)  # repro: lint-ok[INV003]
        return cached

    @property
    def kernel_stats(self) -> "KernelStats | None":
        """Kernel counters of the memoized system (None before use)."""
        cached = getattr(self, "_system", None)
        return cached.stats if cached is not None else None

    def summary(self) -> str:
        """One readable paragraph: exploration, violations, kernel."""
        spec = self.spec
        source = "cache" if self.cached else "search"
        lines = [
            f"explored n={len(spec.processes)} t={spec.max_failures} "
            f"T={spec.horizon} ({'lossy' if spec.lossy else 'reliable'} "
            f"channel) via {source} in {self.wall_time:.3f}s -> "
            f"{len(self.runs)} runs "
            f"[{'complete' if self.complete else 'INCOMPLETE'}]",
            f"    {self.stats.render()}",
        ]
        if self.violations:
            lines.append(f"    violations: {len(self.violations)}")
            for violation in self.violations[:3]:
                lines.append(f"      {violation.describe()}")
            if len(self.violations) > 3:
                lines.append(
                    f"      ... and {len(self.violations) - 3} more"
                )
        stats = self.kernel_stats
        if stats is not None and stats.index_builds + stats.index_derivations:
            lines.append(f"    {stats.render()}")
        return "\n".join(lines)
