"""Declarative run and ensemble specifications.

A :class:`RunSpec` is everything the executor needs to produce one run,
frozen into a hashable value: runs become pure functions of their specs.
That purity is what the rest of the runtime trades on --

* backends (:mod:`repro.runtime.backends`) may execute specs anywhere,
  in any order, and the results are independent of placement;
* the cache (:mod:`repro.runtime.cache`) may return a previously
  computed run for an identical spec;
* reports (:mod:`repro.runtime.report`) can attribute every metric to
  the spec that produced it.

An :class:`EnsembleSpec` is the declarative grid form of the paper's
systems: one protocol swept over crash plans and adversary seeds
(DESIGN.md substitution 3).  ``expand()`` lowers it to the concrete
``RunSpec`` list, plan-major / seed-minor -- the same order the legacy
:func:`repro.sim.ensembles.build_ensemble` used, so migrated callers see
identical systems.
"""

from __future__ import annotations

import hashlib
import pickle
from dataclasses import dataclass, field, replace
from typing import Callable, Iterator, Sequence

from repro.detectors.base import DetectorOracle
from repro.model.context import Context
from repro.model.events import ActionId, ProcessId
from repro.sim.executor import ExecutionConfig, InitSchedule, ProtocolFactory
from repro.sim.failures import CrashPlan, all_crash_plans

#: Workloads may depend on the crash plan (e.g. post-crash initiations).
WorkloadFor = Callable[[CrashPlan], InitSchedule]


@dataclass(frozen=True)
class RunSpec:
    """One run, declaratively: ``Executor.from_spec(spec).run()``.

    Frozen and hashable; the workload is normalized to a sorted tuple so
    two specs describing the same run compare (and digest) equal.
    """

    processes: tuple[ProcessId, ...]
    protocol: ProtocolFactory
    crash_plan: CrashPlan = field(default_factory=CrashPlan.none)
    workload: tuple[tuple[int, ProcessId, ActionId], ...] = ()
    detector: DetectorOracle | None = None
    config: ExecutionConfig | None = None
    seed: int = 0
    context: Context | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "processes", tuple(self.processes))
        object.__setattr__(self, "workload", tuple(sorted(self.workload)))
        if not self.processes:
            raise ValueError("a RunSpec needs at least one process")
        unknown = self.crash_plan.faulty - set(self.processes)
        if unknown:
            raise ValueError(
                f"crash plan names unknown processes {sorted(unknown)}"
            )

    def with_(self, **changes: object) -> "RunSpec":
        """A copy with the given fields replaced (sweep helper)."""
        return replace(self, **changes)  # type: ignore[arg-type]

    def digest(self) -> str | None:
        """Stable content hash, or None when the spec is not picklable."""
        return spec_digest(self)


def spec_digest(spec: RunSpec) -> str | None:
    """The content-address of a spec: sha256 over its pickled fields.

    Returns ``None`` when any component resists pickling (e.g. a lambda
    ``blackhole`` in the channel config); such specs are executable but
    not cacheable, and the cache skips them.  Digests are exact within a
    process; across processes, frozensets inside payloads may pickle in
    a different iteration order under hash randomization, which can only
    cause a cache *miss*, never a false hit.
    """
    try:
        payload = pickle.dumps(
            (
                spec.processes,
                spec.protocol,
                spec.crash_plan,
                spec.workload,
                spec.detector,
                spec.config or ExecutionConfig(),
                spec.seed,
                spec.context,
            ),
            protocol=4,
        )
    except Exception:
        return None
    return hashlib.sha256(payload).hexdigest()


@dataclass(frozen=True)
class EnsembleSpec:
    """A declarative run grid: one protocol x crash plans x seeds.

    The finite stand-in for the paper's systems.  ``workload`` is either
    a concrete init schedule or a callable from crash plan to schedule
    (the theorems' "initiations continue past every crash").
    """

    processes: tuple[ProcessId, ...]
    protocol: ProtocolFactory
    crash_plans: tuple[CrashPlan, ...] = (CrashPlan.none(),)
    workload: InitSchedule | WorkloadFor = ()
    detector: DetectorOracle | None = None
    seeds: tuple[int, ...] = (0, 1)
    config: ExecutionConfig | None = None
    context: Context | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "processes", tuple(self.processes))
        object.__setattr__(self, "crash_plans", tuple(self.crash_plans))
        object.__setattr__(self, "seeds", tuple(self.seeds))
        if not callable(self.workload):
            object.__setattr__(self, "workload", tuple(self.workload))

    @classmethod
    def a5t(
        cls,
        processes: Sequence[ProcessId],
        protocol: ProtocolFactory,
        *,
        t: int,
        workload: InitSchedule | WorkloadFor = (),
        detector: DetectorOracle | None = None,
        seeds: Sequence[int] = (0, 1),
        crash_tick: int = 10,
        config: ExecutionConfig | None = None,
        context: Context | None = None,
    ) -> "EnsembleSpec":
        """The A5_t grid: one crash plan per subset S with ``|S| <= t``."""
        plans = tuple(
            all_crash_plans(processes, max_failures=t, crash_tick=crash_tick)
        )
        return cls(
            processes=tuple(processes),
            protocol=protocol,
            crash_plans=plans,
            workload=workload,
            detector=detector,
            seeds=tuple(seeds),
            config=config,
            context=context,
        )

    def __len__(self) -> int:
        return len(self.crash_plans) * len(self.seeds)

    def expand(self) -> tuple[RunSpec, ...]:
        """Lower to concrete RunSpecs, plan-major / seed-minor."""
        return tuple(self._iter_specs())

    def _iter_specs(self) -> Iterator[RunSpec]:
        for plan in self.crash_plans:
            schedule = (
                self.workload(plan) if callable(self.workload) else self.workload
            )
            for seed in self.seeds:
                yield RunSpec(
                    processes=self.processes,
                    protocol=self.protocol,
                    crash_plan=plan,
                    workload=tuple(schedule),
                    detector=self.detector,
                    config=self.config,
                    seed=seed,
                    context=self.context,
                )


# -- moved: ExploreSpec ------------------------------------------------------
# ExploreSpec now lives in repro.explore.spec (the exploration subsystem
# owns its own spec, mirroring how PR 1 moved legacy kwargs behind
# deprecation shims).  The old import path keeps working for one release
# via the module-level __getattr__ below, warning once per process.

_explore_spec_warned = False


def _reset_explore_spec_warning() -> None:
    """Test hook: allow the warn-once latch to fire again."""
    global _explore_spec_warned  # repro: lint-ok[POOL002]
    _explore_spec_warned = False


def __getattr__(name: str) -> object:
    if name == "ExploreSpec":
        global _explore_spec_warned  # repro: lint-ok[POOL002]
        if not _explore_spec_warned:
            _explore_spec_warned = True
            import warnings

            warnings.warn(
                "importing ExploreSpec from repro.runtime.spec is "
                "deprecated; use repro.explore (or repro.explore.spec)",
                DeprecationWarning,
                stacklevel=2,
            )
        from repro.explore.spec import ExploreSpec

        return ExploreSpec
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
