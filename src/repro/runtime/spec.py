"""Declarative run and ensemble specifications.

A :class:`RunSpec` is everything the executor needs to produce one run,
frozen into a hashable value: runs become pure functions of their specs.
That purity is what the rest of the runtime trades on --

* backends (:mod:`repro.runtime.backends`) may execute specs anywhere,
  in any order, and the results are independent of placement;
* the cache (:mod:`repro.runtime.cache`) may return a previously
  computed run for an identical spec;
* reports (:mod:`repro.runtime.report`) can attribute every metric to
  the spec that produced it.

An :class:`EnsembleSpec` is the declarative grid form of the paper's
systems: one protocol swept over crash plans and adversary seeds
(DESIGN.md substitution 3).  ``expand()`` lowers it to the concrete
``RunSpec`` list, plan-major / seed-minor -- the same order the legacy
:func:`repro.sim.ensembles.build_ensemble` used, so migrated callers see
identical systems.
"""

from __future__ import annotations

import hashlib
import itertools
import pickle
from dataclasses import dataclass, field, replace
from typing import Callable, Iterator, Sequence

from repro.detectors.base import DetectorOracle
from repro.model.context import Context
from repro.model.events import ActionId, ProcessId
from repro.sim.executor import ExecutionConfig, InitSchedule, ProtocolFactory
from repro.sim.failures import CrashPlan, all_crash_plans

#: Workloads may depend on the crash plan (e.g. post-crash initiations).
WorkloadFor = Callable[[CrashPlan], InitSchedule]


@dataclass(frozen=True)
class RunSpec:
    """One run, declaratively: ``Executor.from_spec(spec).run()``.

    Frozen and hashable; the workload is normalized to a sorted tuple so
    two specs describing the same run compare (and digest) equal.
    """

    processes: tuple[ProcessId, ...]
    protocol: ProtocolFactory
    crash_plan: CrashPlan = field(default_factory=CrashPlan.none)
    workload: tuple[tuple[int, ProcessId, ActionId], ...] = ()
    detector: DetectorOracle | None = None
    config: ExecutionConfig | None = None
    seed: int = 0
    context: Context | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "processes", tuple(self.processes))
        object.__setattr__(self, "workload", tuple(sorted(self.workload)))
        if not self.processes:
            raise ValueError("a RunSpec needs at least one process")
        unknown = self.crash_plan.faulty - set(self.processes)
        if unknown:
            raise ValueError(
                f"crash plan names unknown processes {sorted(unknown)}"
            )

    def with_(self, **changes: object) -> "RunSpec":
        """A copy with the given fields replaced (sweep helper)."""
        return replace(self, **changes)  # type: ignore[arg-type]

    def digest(self) -> str | None:
        """Stable content hash, or None when the spec is not picklable."""
        return spec_digest(self)


def spec_digest(spec: RunSpec) -> str | None:
    """The content-address of a spec: sha256 over its pickled fields.

    Returns ``None`` when any component resists pickling (e.g. a lambda
    ``blackhole`` in the channel config); such specs are executable but
    not cacheable, and the cache skips them.  Digests are exact within a
    process; across processes, frozensets inside payloads may pickle in
    a different iteration order under hash randomization, which can only
    cause a cache *miss*, never a false hit.
    """
    try:
        payload = pickle.dumps(
            (
                spec.processes,
                spec.protocol,
                spec.crash_plan,
                spec.workload,
                spec.detector,
                spec.config or ExecutionConfig(),
                spec.seed,
                spec.context,
            ),
            protocol=4,
        )
    except Exception:
        return None
    return hashlib.sha256(payload).hexdigest()


@dataclass(frozen=True)
class EnsembleSpec:
    """A declarative run grid: one protocol x crash plans x seeds.

    The finite stand-in for the paper's systems.  ``workload`` is either
    a concrete init schedule or a callable from crash plan to schedule
    (the theorems' "initiations continue past every crash").
    """

    processes: tuple[ProcessId, ...]
    protocol: ProtocolFactory
    crash_plans: tuple[CrashPlan, ...] = (CrashPlan.none(),)
    workload: InitSchedule | WorkloadFor = ()
    detector: DetectorOracle | None = None
    seeds: tuple[int, ...] = (0, 1)
    config: ExecutionConfig | None = None
    context: Context | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "processes", tuple(self.processes))
        object.__setattr__(self, "crash_plans", tuple(self.crash_plans))
        object.__setattr__(self, "seeds", tuple(self.seeds))
        if not callable(self.workload):
            object.__setattr__(self, "workload", tuple(self.workload))

    @classmethod
    def a5t(
        cls,
        processes: Sequence[ProcessId],
        protocol: ProtocolFactory,
        *,
        t: int,
        workload: InitSchedule | WorkloadFor = (),
        detector: DetectorOracle | None = None,
        seeds: Sequence[int] = (0, 1),
        crash_tick: int = 10,
        config: ExecutionConfig | None = None,
        context: Context | None = None,
    ) -> "EnsembleSpec":
        """The A5_t grid: one crash plan per subset S with ``|S| <= t``."""
        plans = tuple(
            all_crash_plans(processes, max_failures=t, crash_tick=crash_tick)
        )
        return cls(
            processes=tuple(processes),
            protocol=protocol,
            crash_plans=plans,
            workload=workload,
            detector=detector,
            seeds=tuple(seeds),
            config=config,
            context=context,
        )

    def __len__(self) -> int:
        return len(self.crash_plans) * len(self.seeds)

    def expand(self) -> tuple[RunSpec, ...]:
        """Lower to concrete RunSpecs, plan-major / seed-minor."""
        return tuple(self._iter_specs())

    def _iter_specs(self) -> Iterator[RunSpec]:
        for plan in self.crash_plans:
            schedule = (
                self.workload(plan) if callable(self.workload) else self.workload
            )
            for seed in self.seeds:
                yield RunSpec(
                    processes=self.processes,
                    protocol=self.protocol,
                    crash_plan=plan,
                    workload=tuple(schedule),
                    detector=self.detector,
                    config=self.config,
                    seed=seed,
                    context=self.context,
                )


@dataclass(frozen=True)
class ExploreSpec:
    """A bounded exhaustive exploration, declaratively.

    Where :class:`EnsembleSpec` *samples* adversary schedules through
    seeds, an ``ExploreSpec`` names the whole nondeterminism space and
    asks :func:`repro.explore.explore` to enumerate it: every crash
    pattern with at most ``max_failures`` crashes at ticks drawn from
    ``crash_ticks``, and -- per reachable configuration -- every
    delivery/defer choice (message reordering/delay) plus, when ``lossy``
    is set, every drop/accept choice the R5 fairness budget permits.
    The result is the *complete* set of horizon-``T`` runs of the
    context, which is what makes the epistemic kernel's answers sound.

    ``por`` enables the sleep-set/commutativity reduction and
    ``fingerprints`` enables converged-state pruning; both are
    run-set-preserving (see ``tests/test_explore_scheduler.py`` for the
    bit-identical-knowledge check) and on by default.  ``max_executions``
    is a safety valve: when hit, exploration stops early and the
    resulting system is marked *incomplete* (``ExploreStats.truncated``).
    """

    processes: tuple[ProcessId, ...]
    protocol: ProtocolFactory
    horizon: int = 4
    max_failures: int = 0
    crash_ticks: tuple[int, ...] = (1,)
    workload: tuple[tuple[int, ProcessId, ActionId], ...] = ()
    detector: DetectorOracle | None = None
    lossy: bool = False
    max_consecutive_drops: int = 2
    por: bool = True
    fingerprints: bool = True
    strategy: str = "dfs"
    max_executions: int | None = None
    context: Context | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "processes", tuple(self.processes))
        object.__setattr__(self, "crash_ticks", tuple(self.crash_ticks))
        object.__setattr__(self, "workload", tuple(sorted(self.workload)))
        if not self.processes:
            raise ValueError("an ExploreSpec needs at least one process")
        if self.horizon < 1:
            raise ValueError("horizon must be >= 1")
        if not 0 <= self.max_failures <= len(self.processes):
            raise ValueError("max_failures must be in [0, n]")
        if any(t < 1 for t in self.crash_ticks):
            raise ValueError("crash ticks must be >= 1")
        if self.max_consecutive_drops < 1:
            raise ValueError("max_consecutive_drops must be >= 1 (R5)")
        if self.strategy not in ("dfs", "bfs"):
            raise ValueError("strategy must be 'dfs' or 'bfs'")

    def with_(self, **changes: object) -> "ExploreSpec":
        """A copy with the given fields replaced (sweep helper)."""
        return replace(self, **changes)  # type: ignore[arg-type]

    def crash_plans(self) -> tuple[CrashPlan, ...]:
        """Every crash pattern of the bounded adversary, in a fixed order.

        One plan per (subset S with \\|S\\| <= max_failures, assignment of a
        crash tick from ``crash_ticks`` to each member of S); plans whose
        every crash lands past the horizon collapse onto already-listed
        plans at exploration time (runs are deduplicated by value).
        """
        plans: list[CrashPlan] = [CrashPlan.none()]
        seen = {plans[0]}
        ticks = tuple(dict.fromkeys(self.crash_ticks))
        for size in range(1, self.max_failures + 1):
            for subset in itertools.combinations(self.processes, size):
                for assignment in itertools.product(ticks, repeat=size):
                    plan = CrashPlan.of(dict(zip(subset, assignment)))
                    if plan not in seen:
                        seen.add(plan)
                        plans.append(plan)
        return tuple(plans)

    def digest(self) -> str | None:
        """Stable content hash, or None when the spec is not picklable."""
        try:
            payload = pickle.dumps(
                (
                    "explore-v1",
                    self.processes,
                    self.protocol,
                    self.horizon,
                    self.max_failures,
                    self.crash_ticks,
                    self.workload,
                    self.detector,
                    self.lossy,
                    self.max_consecutive_drops,
                    self.por,
                    self.fingerprints,
                    self.strategy,
                    self.max_executions,
                    self.context,
                ),
                protocol=4,
            )
        except Exception:
            return None
        return hashlib.sha256(payload).hexdigest()
