"""The runtime's entry points: ``run_spec`` and ``run_ensemble``.

``run_ensemble`` is the one place ensembles get executed: it expands a
declarative :class:`EnsembleSpec` (or takes explicit RunSpecs), serves
what it can from the run cache, hands the misses to an execution
backend, and assembles an :class:`EnsembleReport` in spec order.  The
legacy builders in :mod:`repro.sim.ensembles` are thin wrappers over it.
"""

from __future__ import annotations

import time
from typing import Sequence

from repro.model.run import Run
from repro.runtime.backends import (
    ExecutionBackend,
    backend_from_name,
    get_default_backend,
)
from repro.runtime.cache import RunCache, default_run_cache
from repro.runtime.report import EnsembleReport, RunMetrics, metrics_for
from repro.runtime.spec import EnsembleSpec, RunSpec

#: sentinel distinguishing "use the default cache" from "no cache"
_DEFAULT = object()


def _resolve_backend(backend: ExecutionBackend | str | None) -> ExecutionBackend:
    if backend is None:
        return get_default_backend()
    if isinstance(backend, str):
        return backend_from_name(backend)
    return backend


def run_spec(
    spec: RunSpec,
    *,
    cache: RunCache | None | object = _DEFAULT,
) -> Run:
    """Execute one spec (serially), via the cache."""
    resolved = default_run_cache() if cache is _DEFAULT else cache
    if resolved is not None:
        hit = resolved.get(spec)
        if hit is not None:
            return hit
    from repro.sim.executor import Executor

    run = Executor.from_spec(spec).run()
    if resolved is not None:
        resolved.put(spec, run)
    return run


def run_ensemble(
    spec: EnsembleSpec | Sequence[RunSpec],
    *,
    backend: ExecutionBackend | str | None = None,
    cache: RunCache | None | object = _DEFAULT,
) -> EnsembleReport:
    """Execute every run of an ensemble and report.

    Parameters
    ----------
    spec:
        An :class:`EnsembleSpec` (expanded plan-major/seed-minor) or an
        explicit sequence of :class:`RunSpec`.
    backend:
        An :class:`ExecutionBackend`, a backend name (``"serial"``,
        ``"process"``, ``"process:N"``), or None for the process-wide
        default (serial unless overridden / ``REPRO_BACKEND``).
    cache:
        A :class:`RunCache`, None to disable caching, or omitted for
        the process-wide default in-memory cache.

    Results are in spec order and independent of the backend: the same
    spec list yields field-for-field identical runs under every backend.
    """
    if isinstance(spec, EnsembleSpec):
        specs = spec.expand()
        context = spec.context
    else:
        specs = tuple(spec)
        context = next((s.context for s in specs if s.context is not None), None)
    resolved_backend = _resolve_backend(backend)
    resolved_cache = default_run_cache() if cache is _DEFAULT else cache

    start = time.perf_counter()
    runs: list[Run | None] = [None] * len(specs)
    cached = [False] * len(specs)
    wall: list[float] = [0.0] * len(specs)

    pending: list[tuple[int, RunSpec]] = []
    for i, s in enumerate(specs):
        hit = resolved_cache.get(s) if resolved_cache is not None else None
        if hit is not None:
            runs[i] = hit
            cached[i] = True
        else:
            pending.append((i, s))

    if pending:
        results = resolved_backend.run_all([s for _, s in pending])
        for (i, s), (run, elapsed) in zip(pending, results):
            runs[i] = run
            wall[i] = elapsed
            if resolved_cache is not None:
                resolved_cache.put(s, run)

    total = time.perf_counter() - start
    metrics: list[RunMetrics] = [
        metrics_for(i, specs[i], runs[i], wall[i], cached[i])  # type: ignore[arg-type]
        for i in range(len(specs))
    ]
    return EnsembleReport(
        specs=specs,
        runs=tuple(runs),  # type: ignore[arg-type]
        metrics=tuple(metrics),
        backend=resolved_backend.name,
        wall_time=total,
        cache_hits=sum(cached),
        context=context,
    )
