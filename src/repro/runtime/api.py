"""The runtime's entry points: ``run_spec`` and ``run_ensemble``.

``run_ensemble`` is the one place ensembles get executed: it expands a
declarative :class:`EnsembleSpec` (or takes explicit RunSpecs), serves
what it can from the run cache, hands the misses to an execution
backend, and assembles an :class:`EnsembleReport` in spec order.  The
legacy builders in :mod:`repro.sim.ensembles` are thin wrappers over it.

Degradation contract: per-run faults (deadline overruns, worker
crashes, executor exceptions that survive the retry policy) do **not**
abort the batch.  The report carries the casualties as structured
:class:`~repro.runtime.report.FailedRun` records, ``report.system()``
is built over the survivors (marked with how many runs are missing),
and a single :class:`UserWarning` summarizes the damage.  Pass
``strict=True`` to get the old abort-on-anything behaviour.
"""

from __future__ import annotations

import dataclasses
import time
import warnings
from typing import Sequence

from repro.model.run import Run
from repro.runtime.backends import (
    ExecutionBackend,
    RetryPolicy,
    backend_from_name,
    get_default_backend,
)
from repro.runtime.cache import RunCache, default_run_cache
from repro.runtime.report import EnsembleReport, FailedRun, RunMetrics, metrics_for
from repro.runtime.spec import EnsembleSpec, RunSpec

#: sentinel distinguishing "use the default cache" from "no cache"
_DEFAULT: object = object()


def _resolve_backend(backend: ExecutionBackend | str | None) -> ExecutionBackend:
    if backend is None:
        return get_default_backend()
    if isinstance(backend, str):
        return backend_from_name(backend)
    return backend


def run_spec(
    spec: RunSpec,
    *,
    cache: RunCache | None | object = _DEFAULT,
) -> Run:
    """Execute one spec (serially), via the cache."""
    resolved = default_run_cache() if cache is _DEFAULT else cache
    if isinstance(resolved, RunCache):
        hit = resolved.get(spec)
        if hit is not None:
            return hit
    from repro.sim.executor import Executor

    run = Executor.from_spec(spec).run()
    if isinstance(resolved, RunCache):
        resolved.put(spec, run)
    return run


def run_ensemble(
    spec: EnsembleSpec | Sequence[RunSpec],
    *,
    backend: ExecutionBackend | str | None = None,
    cache: RunCache | None | object = _DEFAULT,
    retry: RetryPolicy | None = None,
    strict: bool = False,
) -> EnsembleReport:
    """Execute every run of an ensemble and report.

    Parameters
    ----------
    spec:
        An :class:`EnsembleSpec` (expanded plan-major/seed-minor) or an
        explicit sequence of :class:`RunSpec`.
    backend:
        An :class:`ExecutionBackend`, a backend name (``"serial"``,
        ``"process"``, ``"process:N"``), or None for the process-wide
        default (serial unless overridden / ``REPRO_BACKEND``).
    cache:
        A :class:`RunCache`, None to disable caching, or omitted for
        the process-wide default in-memory cache.
    retry:
        The :class:`RetryPolicy` for transient per-run faults (None for
        the default: 3 attempts, exponential backoff).
    strict:
        When True, any run lost after retries raises ``RuntimeError``
        instead of degrading the report.

    Results are in spec order and independent of the backend: the same
    spec list yields field-for-field identical runs under every backend.
    When runs are lost, ``report.runs``/``report.metrics`` cover the
    survivors (``metrics[i].index`` maps back into ``report.specs``) and
    ``report.failures`` the casualties.
    """
    if isinstance(spec, EnsembleSpec):
        specs = spec.expand()
        context = spec.context
    else:
        specs = tuple(spec)
        context = next((s.context for s in specs if s.context is not None), None)
    resolved_backend = _resolve_backend(backend)
    maybe_cache = default_run_cache() if cache is _DEFAULT else cache
    resolved_cache = maybe_cache if isinstance(maybe_cache, RunCache) else None

    start = time.perf_counter()
    runs: list[Run | None] = [None] * len(specs)
    cached = [False] * len(specs)
    wall: list[float] = [0.0] * len(specs)
    failures: list[FailedRun] = []
    recoveries: list[FailedRun] = []

    pending: list[tuple[int, RunSpec]] = []
    for i, s in enumerate(specs):
        hit: Run | None = None
        if resolved_cache is not None:
            quarantined_before = len(resolved_cache.quarantined)
            hit = resolved_cache.get(s)
            if len(resolved_cache.quarantined) > quarantined_before:
                # A corrupt disk entry was quarantined during this get;
                # the run is regenerated below, so record a recovery.
                _, reason = resolved_cache.quarantined[-1]
                recoveries.append(
                    FailedRun(
                        index=i,
                        seed=s.seed,
                        kind="cache-corrupt",
                        attempts=1,
                        error=reason,
                        crash_plan=s.crash_plan,
                        recovered=True,
                    )
                )
        if hit is not None:
            runs[i] = hit
            cached[i] = True
        else:
            pending.append((i, s))

    if pending:
        batch = resolved_backend.run_all_safe([s for _, s in pending], retry)
        for (i, s), outcome in zip(pending, batch.outcomes):
            if isinstance(outcome, FailedRun):
                failures.append(dataclasses.replace(outcome, index=i))
            else:
                run, elapsed = outcome
                runs[i] = run
                wall[i] = elapsed
                if resolved_cache is not None:
                    resolved_cache.put(s, run)
        for recovery in batch.recoveries:
            # Recovery indices are batch-local; map back to spec order.
            ensemble_index = pending[recovery.index][0]
            recoveries.append(
                dataclasses.replace(recovery, index=ensemble_index)
            )

    if failures:
        failures.sort(key=lambda f: f.index)
        if strict:
            detail = "; ".join(f.describe() for f in failures)
            raise RuntimeError(
                f"ensemble lost {len(failures)} of {len(specs)} runs "
                f"(strict mode): {detail}"
            )
        warnings.warn(
            f"run_ensemble degraded: {len(failures)} of {len(specs)} runs "
            f"failed ({', '.join(sorted({f.kind for f in failures}))}); "
            "see report.failures for details",
            UserWarning,
            stacklevel=2,
        )
    recoveries.sort(key=lambda f: f.index)

    total = time.perf_counter() - start
    surviving: list[tuple[int, Run]] = [
        (i, run) for i, run in enumerate(runs) if run is not None
    ]
    metrics: list[RunMetrics] = [
        metrics_for(i, specs[i], run, wall[i], cached[i]) for i, run in surviving
    ]
    return EnsembleReport(
        specs=specs,
        runs=tuple(run for _, run in surviving),
        metrics=tuple(metrics),
        backend=resolved_backend.name,
        wall_time=total,
        cache_hits=sum(cached),
        context=context,
        failures=tuple(failures),
        recoveries=tuple(recoveries),
    )
