"""The content-addressed run cache.

Runs are pure functions of their specs, so a run computed once for a
spec is the run for every identical spec -- across experiments, harness
invocations, and benchmark rounds.  :class:`RunCache` exploits that:

* keys are :func:`repro.runtime.spec.spec_digest` content hashes
  (sha256 over the spec's pickled fields); specs that do not pickle
  (lambda blackholes and the like) are simply never cached;
* entries live in memory, and optionally on disk -- point ``directory``
  at a path to persist runs across processes;
* invalidation is automatic by construction: any change to a spec field
  (protocol class or kwargs, crash plan, workload, detector, channel
  config, seed) changes the digest, so stale hits cannot happen.  Wipe
  the directory (or ``clear()``) after changing *executor semantics*,
  which are outside the key.

Disk integrity (the cache must never poison an ensemble):

* every write goes to a ``*.tmp`` file in the same directory and is
  published with ``os.replace`` -- atomic on POSIX, so an interrupted
  process can never leave a torn entry under the real name;
* every entry embeds a sha256 over its canonical JSON body, verified on
  read; a mismatch (bit rot, tampering, a torn legacy write) quarantines
  the file (renamed to ``*.corrupt``, recorded in ``quarantined``) and
  reads as a miss, so the run is silently regenerated;
* the pre-integrity v1 formats (a raw run dict / the v1 exploration
  payload) are still readable -- without a checksum there is nothing to
  verify, but parse failures quarantine the same way.

Exploration groups are written in the v4 *arena* format: the whole run
set rides as one :class:`repro.columnar.RunArena` (distinct events
encoded once, occurrences as packed integers), which is roughly an
order of magnitude smaller than the per-run timeline dicts of v2/v3.
All earlier formats stay readable; ``bytes_written`` / ``bytes_read``
track disk entry sizes.

``run_ensemble`` consults the process-wide default cache unless told
otherwise; disable with ``run_ensemble(..., cache=None)``.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from pathlib import Path
from typing import TYPE_CHECKING

from repro.model.run import Run
from repro.runtime.spec import RunSpec, spec_digest

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.explore.reduction import ExploreStats
    from repro.sim.failures import CrashPlan

_RUN_FORMAT = "repro-run-entry-v2"
_EXPLORE_FORMAT_V4 = "repro-exploration-v4"
_EXPLORE_FORMAT_V3 = "repro-exploration-v3"
_EXPLORE_FORMAT = "repro-exploration-v2"
_EXPLORE_FORMAT_V1 = "repro-exploration-v1"

#: One recorded search leaf: (crash plan, choice trace, is-fixpoint,
#: index of its run in the entry's run list).  Leaves are what let the
#: explorer seed a horizon-(T+1) frontier from a horizon-T entry.
LeafRecord = tuple["CrashPlan", tuple[int, ...], bool, int]


class CacheIntegrityError(ValueError):
    """A disk cache entry failed parsing or its checksum check."""


@dataclasses.dataclass(frozen=True)
class ExplorationEntry:
    """One cached exhaustive exploration.

    ``leaves`` is the search's complete leaf coordinate set (present for
    v3 entries; ``None`` for entries written before leaves were
    recorded, which simply cannot seed incremental extension).
    """

    runs: tuple[Run, ...]
    stats: "ExploreStats"
    leaves: tuple[LeafRecord, ...] | None = None


def _atomic_write_text(path: Path, text: str) -> None:
    """Write-then-rename: readers see the old entry or the new, never a torn one."""
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(text, encoding="utf-8")
    os.replace(tmp, path)


def _body_sha256(body: object) -> str:
    serial = json.dumps(body, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(serial.encode("utf-8")).hexdigest()


def _encode_run_entry(run: Run) -> str:
    from repro.model.serialize import run_to_dict

    body = run_to_dict(run)
    return json.dumps(
        {"format": _RUN_FORMAT, "sha256": _body_sha256(body), "run": body}
    )


def _decode_run_entry(text: str) -> Run:
    from repro.model.serialize import run_from_dict

    try:
        payload = json.loads(text)
    except Exception as exc:
        raise CacheIntegrityError(f"unparseable cache entry: {exc}") from exc
    if not isinstance(payload, dict):
        raise CacheIntegrityError("cache entry is not a JSON object")
    if payload.get("format") == _RUN_FORMAT:
        body = payload.get("run")
        stored = payload.get("sha256")
        if _body_sha256(body) != stored:
            raise CacheIntegrityError(
                "content digest mismatch: entry bytes do not match their "
                "recorded sha256 (torn write, bit rot, or tampering)"
            )
        return run_from_dict(body)
    if "version" in payload:  # legacy v1: a raw run dict, no checksum
        return run_from_dict(payload)
    raise CacheIntegrityError(
        f"unrecognized cache entry format {payload.get('format')!r}"
    )


class RunCache:
    """Content-addressed run store: in-memory, optionally disk-backed.

    Holds two kinds of entries under one namespace: single runs keyed by
    :func:`spec_digest` (``run_ensemble``), and whole *exploration
    groups* -- the complete run set of an
    :class:`~repro.runtime.spec.ExploreSpec` plus its
    :class:`~repro.explore.reduction.ExploreStats` -- keyed by
    ``ExploreSpec.digest()``.  Only exhaustive explorations are ever
    stored, so a group hit can never silently hide part of a run set.

    ``quarantined`` lists ``(digest, reason)`` for every disk entry that
    failed its integrity check and was moved aside to ``*.corrupt``.
    """

    def __init__(self, directory: str | Path | None = None) -> None:
        self._memory: dict[str, Run] = {}
        self._explorations: dict[str, ExplorationEntry] = {}
        self.directory = Path(directory) if directory is not None else None
        if self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.skips = 0  # unpicklable specs: cache not applicable
        self.bytes_written = 0  # disk entry sizes, published bytes
        self.bytes_read = 0  # disk entry sizes, successfully decoded
        self.quarantined: list[tuple[str, str]] = []

    def __len__(self) -> int:
        return len(self._memory)

    def _path(self, digest: str) -> Path:
        assert self.directory is not None
        return self.directory / f"{digest}.json"

    def _quarantine(self, path: Path, digest: str, reason: str) -> None:
        try:
            path.replace(path.with_name(path.stem + ".corrupt"))
        except OSError:
            try:
                path.unlink()
            except OSError:  # pragma: no cover - defensive
                pass
        self.quarantined.append((digest, reason))

    def get(self, spec: RunSpec) -> Run | None:
        """The cached run for this spec, or None.

        A disk entry that fails its integrity check is quarantined and
        reported as a miss -- the caller regenerates the run and the
        next ``put`` rewrites a healthy entry.
        """
        digest = spec_digest(spec)
        if digest is None:
            self.skips += 1
            return None
        run = self._memory.get(digest)
        if run is None and self.directory is not None:
            path = self._path(digest)
            if path.exists():
                text = path.read_text(encoding="utf-8")
                try:
                    run = _decode_run_entry(text)
                except Exception as exc:
                    self._quarantine(path, digest, f"{type(exc).__name__}: {exc}")
                    run = None
                else:
                    self.bytes_read += len(text)
                    # The JSON codec keeps scalars and crash plans; anything
                    # else the executor recorded is recoverable from the spec.
                    run.meta.setdefault("crash_plan", spec.crash_plan)
                    self._memory[digest] = run
        if run is None:
            self.misses += 1
            return None
        self.hits += 1
        return run

    def put(self, spec: RunSpec, run: Run) -> None:
        """Store the run computed for this spec (no-op if unpicklable)."""
        digest = spec_digest(spec)
        if digest is None:
            return
        self._memory[digest] = run
        if self.directory is not None:
            text = _encode_run_entry(run)
            _atomic_write_text(self._path(digest), text)
            self.bytes_written += len(text)

    # -- exploration groups -------------------------------------------------

    def _explore_path(self, digest: str) -> Path:
        assert self.directory is not None
        return self.directory / f"explore-{digest}.json"

    def get_exploration(
        self, digest: str
    ) -> tuple[tuple[Run, ...], "ExploreStats"] | None:
        """The cached (runs, stats) for an ExploreSpec digest, or None.

        The stats come back as a fresh copy, so a caller's monitor
        counters never leak into the cached baseline.  Corrupt entries
        quarantine and read as a miss, like :meth:`get`.
        """
        entry = self.get_exploration_entry(digest)
        if entry is None:
            return None
        return entry.runs, entry.stats

    def get_exploration_entry(self, digest: str) -> ExplorationEntry | None:
        """Like :meth:`get_exploration`, with the leaf coordinates too."""
        entry = self._explorations.get(digest)
        if entry is None and self.directory is not None:
            path = self._explore_path(digest)
            if path.exists():
                text = path.read_text(encoding="utf-8")
                try:
                    entry = _load_exploration(text)
                except Exception as exc:
                    self._quarantine(
                        path, f"explore-{digest}", f"{type(exc).__name__}: {exc}"
                    )
                    entry = None
                else:
                    self.bytes_read += len(text)
                    self._explorations[digest] = entry
        if entry is None:
            self.misses += 1
            return None
        self.hits += 1
        return dataclasses.replace(
            entry, stats=dataclasses.replace(entry.stats)
        )

    def put_exploration(
        self,
        digest: str,
        runs: tuple[Run, ...],
        stats: "ExploreStats",
        leaves: tuple[LeafRecord, ...] | None = None,
    ) -> None:
        """Store one exhaustive exploration's complete run set."""
        entry = ExplorationEntry(
            tuple(runs), dataclasses.replace(stats), leaves
        )
        self._explorations[digest] = entry
        if self.directory is not None:
            self.bytes_written += _save_exploration(
                entry, self._explore_path(digest)
            )

    def exploration_digests(self) -> tuple[str, ...]:
        """Digests of every exploration entry visible to this cache.

        The union of in-memory entries and on-disk ``explore-*.json``
        files, sorted; presence does not imply integrity -- a listed
        entry can still quarantine on read.  This is the discovery
        surface of the query service (:mod:`repro.serve`).
        """
        digests = set(self._explorations)
        if self.directory is not None:
            for path in sorted(self.directory.glob("explore-*.json")):
                name = path.stem
                digests.add(name[len("explore-"):])
        return tuple(sorted(digests))

    def quarantine_reason(self, digest: str) -> str | None:
        """Why the entry for ``digest`` was quarantined, or None.

        Lets callers that just observed a miss distinguish "never
        computed" from "present but corrupt" -- the query service
        degrades gracefully by reporting the recorded reason instead of
        a bare not-found.
        """
        wanted = {digest, f"explore-{digest}"}
        for recorded, reason in reversed(self.quarantined):
            if recorded in wanted:
                return reason
        return None

    def stats(self) -> dict[str, int]:
        """Counter snapshot, including disk entry sizes in bytes."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "skips": self.skips,
            "bytes_written": self.bytes_written,
            "bytes_read": self.bytes_read,
            "quarantined": len(self.quarantined),
        }

    def clear(self) -> None:
        """Forget every in-memory entry (disk files are left alone)."""
        self._memory.clear()
        self._explorations.clear()
        self.hits = self.misses = self.skips = 0
        self.bytes_written = self.bytes_read = 0
        self.quarantined.clear()


def _save_exploration(entry: ExplorationEntry, path: Path) -> int:
    """Write a v4 (arena-bytes) exploration entry; returns bytes written.

    The run set is stored as one :class:`repro.columnar.RunArena` --
    each distinct event encoded once, occurrences as packed integers --
    instead of a per-run timeline dict list, which shrinks entries by
    roughly an order of magnitude on explorer output.
    """
    from repro.columnar.arena import encode_runs
    from repro.columnar.jsonio import arena_to_jsonable

    body: dict[str, object] = {"stats": entry.stats.as_dict()}
    if entry.runs:
        body["arena"] = arena_to_jsonable(encode_runs(entry.runs))
    if entry.leaves is not None:
        body["leaves"] = [
            [
                [[pid, tick] for pid, tick in plan.crashes],
                list(trace),
                fixpoint,
                run_index,
            ]
            for plan, trace, fixpoint, run_index in entry.leaves
        ]
    payload = {
        "format": _EXPLORE_FORMAT_V4,
        "sha256": _body_sha256(body),
        "body": body,
    }
    text = json.dumps(payload)
    _atomic_write_text(path, text)
    return len(text)


def _load_exploration(text: str) -> ExplorationEntry:
    """Parse any exploration entry format (v4 arena, v3/v2 run dicts, v1)."""
    from repro.explore.reduction import ExploreStats
    from repro.model.serialize import run_from_dict
    from repro.sim.failures import CrashPlan

    try:
        payload = json.loads(text)
    except Exception as exc:
        raise CacheIntegrityError(f"unparseable exploration entry: {exc}") from exc
    if not isinstance(payload, dict):
        raise CacheIntegrityError("exploration entry is not a JSON object")
    fmt = payload.get("format")
    if fmt in (_EXPLORE_FORMAT, _EXPLORE_FORMAT_V3, _EXPLORE_FORMAT_V4):
        body = payload.get("body")
        if _body_sha256(body) != payload.get("sha256"):
            raise CacheIntegrityError(
                "content digest mismatch on exploration entry"
            )
        if not isinstance(body, dict):
            raise CacheIntegrityError("exploration body is not a JSON object")
    elif fmt == _EXPLORE_FORMAT_V1:  # legacy: body at top level, no checksum
        body = payload
    else:
        raise CacheIntegrityError(f"unrecognized exploration format {fmt!r}")
    known = {f.name for f in dataclasses.fields(ExploreStats)}
    stats = ExploreStats(
        **{k: v for k, v in body.get("stats", {}).items() if k in known}
    )
    if fmt == _EXPLORE_FORMAT_V4:
        from repro.columnar.arena import decode_runs
        from repro.columnar.jsonio import arena_from_jsonable

        raw_arena = body.get("arena")
        if raw_arena is None:
            runs: tuple[Run, ...] = ()
        elif isinstance(raw_arena, dict):
            runs = decode_runs(arena_from_jsonable(raw_arena))
        else:
            raise CacheIntegrityError("v4 exploration arena is not an object")
    else:
        runs = tuple(run_from_dict(entry) for entry in body.get("runs", ()))
    leaves: tuple[LeafRecord, ...] | None = None
    if fmt in (_EXPLORE_FORMAT_V3, _EXPLORE_FORMAT_V4):
        raw_leaves = body.get("leaves")
        if raw_leaves is None and fmt == _EXPLORE_FORMAT_V4:
            pass  # v4 entries may legitimately record no leaves
        elif not isinstance(raw_leaves, list):
            raise CacheIntegrityError("v3 exploration entry without leaves")
        else:
            decoded: list[LeafRecord] = []
            for crashes, trace, fixpoint, run_index in raw_leaves:
                if not 0 <= int(run_index) < len(runs):
                    raise CacheIntegrityError(
                        "exploration leaf points outside its run list"
                    )
                decoded.append(
                    (
                        CrashPlan.of({pid: int(tick) for pid, tick in crashes}),
                        tuple(int(i) for i in trace),
                        bool(fixpoint),
                        int(run_index),
                    )
                )
            leaves = tuple(decoded)
    return ExplorationEntry(runs, stats, leaves)


_default_cache: RunCache | None = None


def default_run_cache() -> RunCache:
    """The process-wide in-memory cache ``run_ensemble`` uses by default."""
    # driver-side singleton: workers never consult the default cache
    global _default_cache  # repro: lint-ok[POOL002]
    if _default_cache is None:
        _default_cache = RunCache()
    return _default_cache


def set_default_run_cache(cache: RunCache | None) -> None:
    """Replace the process-wide default cache (None resets to a fresh one)."""
    # driver-side singleton: workers never consult the default cache
    global _default_cache  # repro: lint-ok[POOL002]
    _default_cache = cache
