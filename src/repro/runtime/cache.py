"""The content-addressed run cache.

Runs are pure functions of their specs, so a run computed once for a
spec is the run for every identical spec -- across experiments, harness
invocations, and benchmark rounds.  :class:`RunCache` exploits that:

* keys are :func:`repro.runtime.spec.spec_digest` content hashes
  (sha256 over the spec's pickled fields); specs that do not pickle
  (lambda blackholes and the like) are simply never cached;
* entries live in memory, and optionally on disk as the JSON run format
  of :mod:`repro.model.serialize` -- point ``directory`` at a path to
  persist runs across processes;
* invalidation is automatic by construction: any change to a spec field
  (protocol class or kwargs, crash plan, workload, detector, channel
  config, seed) changes the digest, so stale hits cannot happen.  Wipe
  the directory (or ``clear()``) after changing *executor semantics*,
  which are outside the key.

``run_ensemble`` consults the process-wide default cache unless told
otherwise; disable with ``run_ensemble(..., cache=None)``.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import TYPE_CHECKING

from repro.model.run import Run
from repro.runtime.spec import RunSpec, spec_digest

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.explore.reduction import ExploreStats


class RunCache:
    """Content-addressed run store: in-memory, optionally disk-backed.

    Holds two kinds of entries under one namespace: single runs keyed by
    :func:`spec_digest` (``run_ensemble``), and whole *exploration
    groups* -- the complete run set of an
    :class:`~repro.runtime.spec.ExploreSpec` plus its
    :class:`~repro.explore.reduction.ExploreStats` -- keyed by
    ``ExploreSpec.digest()``.  Only exhaustive explorations are ever
    stored, so a group hit can never silently hide part of a run set.
    """

    def __init__(self, directory: str | Path | None = None) -> None:
        self._memory: dict[str, Run] = {}
        self._explorations: dict[str, tuple[tuple[Run, ...], "ExploreStats"]] = {}
        self.directory = Path(directory) if directory is not None else None
        if self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.skips = 0  # unpicklable specs: cache not applicable

    def __len__(self) -> int:
        return len(self._memory)

    def _path(self, digest: str) -> Path:
        assert self.directory is not None
        return self.directory / f"{digest}.json"

    def get(self, spec: RunSpec) -> Run | None:
        """The cached run for this spec, or None."""
        digest = spec_digest(spec)
        if digest is None:
            self.skips += 1
            return None
        run = self._memory.get(digest)
        if run is None and self.directory is not None:
            path = self._path(digest)
            if path.exists():
                from repro.model.serialize import load_run

                run = load_run(path)
                # The JSON codec keeps scalars and crash plans; anything
                # else the executor recorded is recoverable from the spec.
                run.meta.setdefault("crash_plan", spec.crash_plan)
                self._memory[digest] = run
        if run is None:
            self.misses += 1
            return None
        self.hits += 1
        return run

    def put(self, spec: RunSpec, run: Run) -> None:
        """Store the run computed for this spec (no-op if unpicklable)."""
        digest = spec_digest(spec)
        if digest is None:
            return
        self._memory[digest] = run
        if self.directory is not None:
            from repro.model.serialize import save_run

            save_run(run, self._path(digest))

    # -- exploration groups -------------------------------------------------

    def _explore_path(self, digest: str) -> Path:
        assert self.directory is not None
        return self.directory / f"explore-{digest}.json"

    def get_exploration(
        self, digest: str
    ) -> tuple[tuple[Run, ...], "ExploreStats"] | None:
        """The cached (runs, stats) for an ExploreSpec digest, or None.

        The stats come back as a fresh copy, so a caller's monitor
        counters never leak into the cached baseline.
        """
        entry = self._explorations.get(digest)
        if entry is None and self.directory is not None:
            path = self._explore_path(digest)
            if path.exists():
                entry = _load_exploration(path)
                self._explorations[digest] = entry
        if entry is None:
            self.misses += 1
            return None
        self.hits += 1
        runs, stats = entry
        return runs, dataclasses.replace(stats)

    def put_exploration(
        self, digest: str, runs: tuple[Run, ...], stats: "ExploreStats"
    ) -> None:
        """Store one exhaustive exploration's complete run set."""
        entry = (tuple(runs), dataclasses.replace(stats))
        self._explorations[digest] = entry
        if self.directory is not None:
            _save_exploration(entry, self._explore_path(digest))

    def clear(self) -> None:
        """Forget every in-memory entry (disk files are left alone)."""
        self._memory.clear()
        self._explorations.clear()
        self.hits = self.misses = self.skips = 0


def _save_exploration(
    entry: tuple[tuple[Run, ...], "ExploreStats"], path: Path
) -> None:
    from repro.model.serialize import run_to_dict

    runs, stats = entry
    payload = {
        "format": "repro-exploration-v1",
        "stats": stats.as_dict(),
        "runs": [run_to_dict(run) for run in runs],
    }
    path.write_text(json.dumps(payload), encoding="utf-8")


def _load_exploration(path: Path) -> tuple[tuple[Run, ...], "ExploreStats"]:
    from repro.explore.reduction import ExploreStats
    from repro.model.serialize import run_from_dict

    payload = json.loads(path.read_text(encoding="utf-8"))
    known = {f.name for f in dataclasses.fields(ExploreStats)}
    stats = ExploreStats(
        **{k: v for k, v in payload.get("stats", {}).items() if k in known}
    )
    runs = tuple(run_from_dict(entry) for entry in payload.get("runs", ()))
    return runs, stats


_default_cache: RunCache | None = None


def default_run_cache() -> RunCache:
    """The process-wide in-memory cache ``run_ensemble`` uses by default."""
    global _default_cache
    if _default_cache is None:
        _default_cache = RunCache()
    return _default_cache


def set_default_run_cache(cache: RunCache | None) -> None:
    """Replace the process-wide default cache (None resets to a fresh one)."""
    global _default_cache
    _default_cache = cache
