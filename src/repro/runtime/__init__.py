"""repro.runtime: the parallel ensemble runtime.

Declarative specs (:class:`RunSpec`, :class:`EnsembleSpec`), pluggable
execution backends (:class:`SerialBackend`, :class:`ProcessPoolBackend`),
a content-addressed run cache (:class:`RunCache`), and per-run metrics
rolled into an :class:`EnsembleReport` -- all behind one entry point,
:func:`run_ensemble`.

Quickstart::

    from repro import NUDCProcess, make_process_ids, single_action, uniform_protocol
    from repro.runtime import EnsembleSpec, ProcessPoolBackend, run_ensemble

    spec = EnsembleSpec.a5t(
        make_process_ids(4),
        uniform_protocol(NUDCProcess),
        t=2,
        workload=single_action("p1", tick=1),
        seeds=(0, 1, 2),
    )
    report = run_ensemble(spec, backend=ProcessPoolBackend(max_workers=4))
    system = report.system()          # same System the legacy builders returned
    print(report.summary())
"""

from repro.runtime.api import run_ensemble, run_spec
from repro.runtime.backends import (
    BatchResult,
    Deadline,
    ExecutionBackend,
    ProcessPoolBackend,
    RetryPolicy,
    SerialBackend,
    backend_from_name,
    get_default_backend,
    set_default_backend,
)
from repro.runtime.cache import (
    CacheIntegrityError,
    RunCache,
    default_run_cache,
    set_default_run_cache,
)
from repro.runtime.report import (
    EnsembleReport,
    ExploreReport,
    FailedRun,
    RunMetrics,
)
from repro.runtime.spec import EnsembleSpec, RunSpec, spec_digest

# -- moved: ExploreSpec ------------------------------------------------------
# ExploreSpec lives in repro.explore now; the old import path re-exports
# it for one release with a once-per-process DeprecationWarning.

_explore_spec_warned = False


def _reset_explore_spec_warning() -> None:
    """Test hook: allow the warn-once latch to fire again."""
    global _explore_spec_warned  # repro: lint-ok[POOL002]
    _explore_spec_warned = False


def __getattr__(name: str) -> object:
    if name == "ExploreSpec":
        global _explore_spec_warned  # repro: lint-ok[POOL002]
        if not _explore_spec_warned:
            _explore_spec_warned = True
            import warnings

            warnings.warn(
                "importing ExploreSpec from repro.runtime is deprecated; "
                "use repro.explore (or repro.explore.spec)",
                DeprecationWarning,
                stacklevel=2,
            )
        from repro.explore.spec import ExploreSpec

        return ExploreSpec
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "BatchResult",
    "CacheIntegrityError",
    "Deadline",
    "EnsembleReport",
    "EnsembleSpec",
    "ExecutionBackend",
    "ExploreReport",
    "ExploreSpec",
    "FailedRun",
    "ProcessPoolBackend",
    "RetryPolicy",
    "RunCache",
    "RunMetrics",
    "RunSpec",
    "SerialBackend",
    "backend_from_name",
    "default_run_cache",
    "get_default_backend",
    "run_ensemble",
    "run_spec",
    "set_default_backend",
    "set_default_run_cache",
    "spec_digest",
]
