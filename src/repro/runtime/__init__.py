"""repro.runtime: the parallel ensemble runtime.

Declarative specs (:class:`RunSpec`, :class:`EnsembleSpec`), pluggable
execution backends (:class:`SerialBackend`, :class:`ProcessPoolBackend`),
a content-addressed run cache (:class:`RunCache`), and per-run metrics
rolled into an :class:`EnsembleReport` -- all behind one entry point,
:func:`run_ensemble`.

Quickstart::

    from repro import NUDCProcess, make_process_ids, single_action, uniform_protocol
    from repro.runtime import EnsembleSpec, ProcessPoolBackend, run_ensemble

    spec = EnsembleSpec.a5t(
        make_process_ids(4),
        uniform_protocol(NUDCProcess),
        t=2,
        workload=single_action("p1", tick=1),
        seeds=(0, 1, 2),
    )
    report = run_ensemble(spec, backend=ProcessPoolBackend(max_workers=4))
    system = report.system()          # same System the legacy builders returned
    print(report.summary())
"""

from repro.runtime.api import run_ensemble, run_spec
from repro.runtime.backends import (
    BatchResult,
    ExecutionBackend,
    ProcessPoolBackend,
    RetryPolicy,
    SerialBackend,
    backend_from_name,
    get_default_backend,
    set_default_backend,
)
from repro.runtime.cache import (
    CacheIntegrityError,
    RunCache,
    default_run_cache,
    set_default_run_cache,
)
from repro.runtime.report import (
    EnsembleReport,
    ExploreReport,
    FailedRun,
    RunMetrics,
)
from repro.runtime.spec import EnsembleSpec, ExploreSpec, RunSpec, spec_digest

__all__ = [
    "BatchResult",
    "CacheIntegrityError",
    "EnsembleReport",
    "EnsembleSpec",
    "ExecutionBackend",
    "ExploreReport",
    "ExploreSpec",
    "FailedRun",
    "ProcessPoolBackend",
    "RetryPolicy",
    "RunCache",
    "RunMetrics",
    "RunSpec",
    "SerialBackend",
    "backend_from_name",
    "default_run_cache",
    "get_default_backend",
    "run_ensemble",
    "run_spec",
    "set_default_backend",
    "set_default_run_cache",
    "spec_digest",
]
