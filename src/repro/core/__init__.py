"""The paper's primary contribution: UDC protocols, properties, and the
knowledge-based simulation theorems.

* :mod:`repro.core.properties`  -- DC1-DC3 / DC2' checkers (Section 2.4).
* :mod:`repro.core.protocols`   -- executable versions of every protocol
  in the paper: nUDC (Prop 2.3), UDC over reliable channels (Prop 2.4),
  UDC with strong detectors (Prop 3.1), UDC with t-useful generalized
  detectors (Prop 4.1, Cor 4.2), and the ATD99 weakest-detector protocol
  (Section 5).
* :mod:`repro.core.simulation_theorem` -- the run transformations f
  (P1-P3, Theorem 3.6) and f' (P3', Theorem 4.3), plus verification
  helpers.
* :mod:`repro.core.consensus`   -- Chandra-Toueg consensus baselines for
  the consensus rows of Table 1.
"""

from repro.core.properties import (
    actions_in,
    dc1,
    dc2,
    dc2_prime,
    dc3,
    nudc_holds,
    udc_holds,
)
from repro.core.protocols import (
    AtdUDCProcess,
    GeneralizedFDUDCProcess,
    NUDCProcess,
    ReliableUDCProcess,
    StrongFDUDCProcess,
)
from repro.core.simulation_theorem import (
    simulate_generalized_detectors,
    simulate_perfect_detectors,
    transform_run_f,
    transform_run_f_prime,
)

__all__ = [
    "AtdUDCProcess",
    "GeneralizedFDUDCProcess",
    "NUDCProcess",
    "ReliableUDCProcess",
    "StrongFDUDCProcess",
    "actions_in",
    "dc1",
    "dc2",
    "dc2_prime",
    "dc3",
    "nudc_holds",
    "simulate_generalized_detectors",
    "simulate_perfect_detectors",
    "transform_run_f",
    "transform_run_f_prime",
    "udc_holds",
]
