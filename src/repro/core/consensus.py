"""Consensus baselines (Chandra-Toueg) for the consensus rows of Table 1.

The paper contrasts UDC with consensus: Table 1 reports that consensus
needs <>W for t < n/2, a Strong detector for n/2 <= t < n-1, and a
Perfect detector (= Strong, by Prop 3.4 + footnote 3) for t >= n-1 --
in both channel regimes.  Two algorithms cover the table:

* :class:`StrongConsensusProcess` -- CT's algorithm for Strong detectors
  (weak accuracy + strong completeness), t <= n-1.  Phase 1 runs n-1
  asynchronous rounds of vector exchange where a process waits, per
  round, for a message from every process it has never suspected; phase
  2 exchanges final vectors, intersects them, and decides the value of
  the smallest process id in the intersection.  Weak accuracy gives one
  correct process whose vector everyone always waits for, which forces
  the intersections to agree.
* :class:`RotatingCoordinatorConsensus` -- CT's <>S rotating-coordinator
  algorithm for t < n/2 (<>W is equivalent to <>S by the gossip
  conversion).  Majority quorums lock estimates; once the detector
  stabilises, a never-suspected correct coordinator drives a decision.

Both are adapted to fair-lossy channels by bounded retransmission of the
sender's cumulative message state, exactly as the paper observes CT's
algorithms can be ("their algorithm can be modified easily to deal with
unreliable, but fair, communication").

Decisions are recorded as ``do_p(("decide", v))`` events;
:func:`consensus_outcome` and :func:`check_consensus` read them back.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.detectors.properties import PropertyVerdict
from repro.model.events import DoEvent, Message, ProcessId, StandardSuspicion, Suspicion
from repro.model.run import Run
from repro.sim.process import ProcessEnv, ProtocolProcess

VECTOR = "cons-vec"  # cumulative phase-1/phase-2 state of the sender
DECIDE = "cons-dec"
P1 = "rc-p1"
P2 = "rc-p2"
ACK = "rc-ack"
NACK = "rc-nack"


def decide_action(value) -> tuple:
    """The do-event action recording a consensus decision."""
    return ("decide", value)


# ---------------------------------------------------------------------------
# CT consensus with a Strong detector (t <= n - 1)
# ---------------------------------------------------------------------------


class StrongConsensusProcess(ProtocolProcess):
    """Vector-exchange consensus; requires weak accuracy + strong completeness."""

    def __init__(
        self,
        pid: ProcessId,
        env: ProcessEnv,
        *,
        value,
        resend_interval: int = 3,
        resend_rounds: int = 30,
    ) -> None:
        super().__init__(pid, env)
        self.value = value
        self.vector: dict[ProcessId, object] = {pid: value}
        self.round = 1
        self.total_rounds = len(env.processes) - 1
        self.in_final_phase = self.total_rounds < 1
        self.decided = None
        self.ever_suspected: set[ProcessId] = set()
        # round -> sender -> vector items (phase 1); "final" likewise.
        self.received: dict[object, dict[ProcessId, tuple]] = {}
        self.resend_interval = resend_interval
        self.sends_left = {q: resend_rounds for q in env.others}
        self._last_send = -(10**9)
        self._decide_sends_left = {q: 6 for q in env.others}

    # -- messaging -----------------------------------------------------------

    def _payload(self) -> tuple:
        """Cumulative state: every round's vector this process has completed.

        Retransmitting the cumulative state (rather than per-round
        deltas) keeps slow processes able to catch up even after this
        process has moved on -- the fair-lossy adaptation.
        """
        entries = []
        for r in range(1, self.round + 1):
            entries.append((r, tuple(sorted(self.vector.items()))))
        if self.in_final_phase or self.decided is not None:
            entries.append(("final", tuple(sorted(self.vector.items()))))
        return tuple(entries)

    def _broadcast_state(self, *, force: bool = False) -> None:
        if not force and self.env.now - self._last_send < self.resend_interval:
            return
        sent = False
        for q in self.env.others:
            if self.sends_left[q] <= 0:
                continue
            self.sends_left[q] -= 1
            self.env.send(q, Message(VECTOR, self._payload()))
            sent = True
        if sent:
            self._last_send = self.env.now

    def _broadcast_decision(self) -> None:
        for q in self.env.others:
            if self._decide_sends_left[q] > 0:
                self._decide_sends_left[q] -= 1
                self.env.send(q, Message(DECIDE, self.decided))

    # -- hooks ----------------------------------------------------------------

    def on_start(self) -> None:
        self._broadcast_state(force=True)

    def on_suspect(self, report: Suspicion) -> None:
        if isinstance(report, StandardSuspicion):
            self.ever_suspected |= report.suspects
            self._advance()

    def on_receive(self, sender: ProcessId, message: Message) -> None:
        if message.kind == DECIDE:
            self._decide(message.payload)
            return
        if message.kind != VECTOR:
            return
        for tag, items in message.payload:
            self.received.setdefault(tag, {})[sender] = items
        self._advance()

    def on_tick(self) -> None:
        self._broadcast_state()
        self._advance()
        if self.decided is not None:
            self._broadcast_decision()

    def wants_to_act(self) -> bool:
        if self.decided is not None:
            return any(left > 0 for left in self._decide_sends_left.values())
        return any(left > 0 for left in self.sends_left.values())

    # -- the algorithm -----------------------------------------------------------

    def _round_complete(self, tag) -> bool:
        got = self.received.get(tag, {})
        return all(
            q in got or q in self.ever_suspected for q in self.env.others
        )

    def _advance(self) -> None:
        if self.decided is not None:
            return
        progressed = True
        while progressed:
            progressed = False
            if not self.in_final_phase and self.round <= self.total_rounds:
                if self._round_complete(self.round):
                    for items in self.received.get(self.round, {}).values():
                        self.vector.update(dict(items))
                    self.round += 1
                    if self.round > self.total_rounds:
                        self.in_final_phase = True
                    self._broadcast_state(force=True)
                    progressed = True
            elif self.in_final_phase:
                if self._round_complete("final"):
                    finals = [dict(self.vector)]
                    for q, items in self.received.get("final", {}).items():
                        if q not in self.ever_suspected:
                            finals.append(dict(items))
                    common = set(finals[0])
                    for f in finals[1:]:
                        common &= set(f)
                    if not common:
                        return  # cannot happen under weak accuracy
                    chosen = min(common)
                    self._decide(finals[0][chosen])
                    return

    def _decide(self, value) -> None:
        if self.decided is not None:
            return
        self.decided = value
        self.env.perform(decide_action(value))
        self._broadcast_decision()


# ---------------------------------------------------------------------------
# CT rotating-coordinator consensus with <>S (t < n/2)
# ---------------------------------------------------------------------------


@dataclass
class _RoundBox:
    """Per-round message stores at the coordinator."""

    estimates: dict[ProcessId, tuple] = None
    acks: set[ProcessId] = None
    nacks: set[ProcessId] = None
    sent_p2: bool = False

    def __post_init__(self):
        self.estimates = {} if self.estimates is None else self.estimates
        self.acks = set() if self.acks is None else self.acks
        self.nacks = set() if self.nacks is None else self.nacks


class RotatingCoordinatorConsensus(ProtocolProcess):
    """<>S rotating-coordinator consensus; requires a majority of correct
    processes.  With no (or a never-stabilising) detector the rounds
    starve and the run ends undecided -- the executable face of FLP.

    Fair-lossy adaptation: every protocol message is entered into a
    resend table and retransmitted (paced, with a per-message budget that
    comfortably exceeds the channel's fairness budget) until the process
    decides.  That preserves the algorithm's waits: a coordinator stuck
    waiting for acks keeps receiving the retransmitted replies even from
    processes that have moved to later rounds.
    """

    def __init__(
        self,
        pid: ProcessId,
        env: ProcessEnv,
        *,
        value,
        max_rounds: int = 150,
        resend_interval: int = 3,
        resend_rounds: int = 10,
    ) -> None:
        super().__init__(pid, env)
        self.estimate = value
        self.ts = 0
        self.round = 0
        self.max_rounds = max_rounds
        self.decided = None
        self.current_suspects: frozenset[ProcessId] = frozenset()
        self.boxes: dict[int, _RoundBox] = {}
        self.sent_p1_for: set[int] = set()
        self.replied_for: set[int] = set()
        self.resend_interval = resend_interval
        self.resend_rounds = resend_rounds
        #: key -> [target, message, copies_remaining]
        self._outgoing: dict[tuple, list] = {}
        self._last_pace = -(10**9)
        self._decide_sends_left = {q: 6 for q in env.others}

    # -- helpers ----------------------------------------------------------------

    def _coordinator(self, rnd: int) -> ProcessId:
        return self.env.processes[rnd % len(self.env.processes)]

    def _box(self, rnd: int) -> _RoundBox:
        box = self.boxes.get(rnd)
        if box is None:
            box = _RoundBox()
            self.boxes[rnd] = box
        return box

    def _majority(self) -> int:
        return len(self.env.processes) // 2 + 1

    def _emit(self, target: ProcessId, message: Message, key: tuple) -> None:
        """Send now and register for paced retransmission."""
        if key in self._outgoing:
            return
        self._outgoing[key] = [target, message, self.resend_rounds - 1]
        self.env.send(target, message)

    def _pace(self) -> None:
        if self.env.now - self._last_pace < self.resend_interval:
            return
        sent = False
        for entry in self._outgoing.values():
            if entry[2] > 0:
                entry[2] -= 1
                self.env.send(entry[0], entry[1])
                sent = True
        if sent:
            self._last_pace = self.env.now

    # -- hooks --------------------------------------------------------------------

    def on_start(self) -> None:
        self._drive()

    def on_suspect(self, report: Suspicion) -> None:
        if isinstance(report, StandardSuspicion):
            self.current_suspects = report.suspects
            self._drive()

    def on_receive(self, sender: ProcessId, message: Message) -> None:
        if message.kind == DECIDE:
            self._decide(message.payload)
            return
        if message.kind == P1:
            rnd, est, ts = message.payload
            self._box(rnd).estimates[sender] = (est, ts)
        elif message.kind == P2:
            rnd, est = message.payload
            if rnd >= self.round and rnd not in self.replied_for:
                self.estimate = est
                self.ts = rnd
                self.replied_for.add(rnd)
                self._emit(
                    self._coordinator(rnd), Message(ACK, rnd), ("ack", rnd)
                )
                self.round = max(self.round, rnd + 1)
        elif message.kind == ACK:
            self._box(message.payload).acks.add(sender)
        elif message.kind == NACK:
            self._box(message.payload).nacks.add(sender)
        self._drive()

    def on_tick(self) -> None:
        self._drive()
        self._pace()
        if self.decided is not None:
            for q in self.env.others:
                if self._decide_sends_left[q] > 0:
                    self._decide_sends_left[q] -= 1
                    self.env.send(q, Message(DECIDE, self.decided))

    def wants_to_act(self) -> bool:
        if self.decided is not None:
            return any(left > 0 for left in self._decide_sends_left.values())
        return any(entry[2] > 0 for entry in self._outgoing.values())

    # -- the round machine ------------------------------------------------------------

    def _drive(self) -> None:
        if self.decided is not None:
            return
        progressed = True
        while progressed and self.round < self.max_rounds:
            progressed = False
            rnd = self.round
            coord = self._coordinator(rnd)
            box = self._box(rnd)

            # Phase 1: everyone reports its estimate to the coordinator.
            if coord == self.pid:
                box.estimates[self.pid] = (self.estimate, self.ts)
            elif rnd not in self.sent_p1_for:
                self.sent_p1_for.add(rnd)
                self._emit(
                    coord, Message(P1, (rnd, self.estimate, self.ts)), ("p1", rnd)
                )

            if coord == self.pid:
                # Phase 2: with a majority of estimates, circulate the freshest.
                if not box.sent_p2 and len(box.estimates) >= self._majority():
                    best_est, _ = max(
                        box.estimates.values(), key=lambda et: et[1]
                    )
                    box.sent_p2 = True
                    self.estimate = best_est
                    self.ts = rnd
                    box.acks.add(self.pid)  # own implicit ack
                    self.replied_for.add(rnd)
                    for q in self.env.others:
                        self._emit(q, Message(P2, (rnd, best_est)), ("p2", rnd, q))
                # Phase 4: a majority of acks decides; a nack with a
                # majority of replies abandons the round.
                if box.sent_p2:
                    if len(box.acks) >= self._majority():
                        self._decide(self.estimate)
                        return
                    if box.nacks and len(box.acks) + len(box.nacks) >= self._majority():
                        self.round += 1
                        progressed = True
            else:
                # Phase 3: wait for the coordinator's estimate, or suspect it.
                if rnd not in self.replied_for and coord in self.current_suspects:
                    self.replied_for.add(rnd)
                    self._emit(coord, Message(NACK, rnd), ("nack", rnd))
                    self.round += 1
                    progressed = True

    def _decide(self, value) -> None:
        if self.decided is not None:
            return
        self.decided = value
        self._outgoing.clear()
        self.env.perform(decide_action(value))


# ---------------------------------------------------------------------------
# Outcome checkers
# ---------------------------------------------------------------------------


def consensus_outcome(run: Run) -> dict[ProcessId, object]:
    """process -> decided value, for the processes that decided."""
    outcome = {}
    for p in run.processes:
        for event in run.events(p):
            if isinstance(event, DoEvent) and event.action[0] == "decide":
                outcome[p] = event.action[1]
                break
    return outcome


def check_consensus(
    run: Run, proposals: dict[ProcessId, object]
) -> PropertyVerdict:
    """Termination (every correct process decides), uniform agreement
    (no two decided values differ), and validity (decisions were proposed)."""
    outcome = consensus_outcome(run)
    for p in sorted(run.correct()):
        if p not in outcome:
            return PropertyVerdict.fail(f"correct {p} never decided")
    values = set(outcome.values())
    if len(values) > 1:
        return PropertyVerdict.fail(f"conflicting decisions: {values}")
    if values and not values <= set(proposals.values()):
        return PropertyVerdict.fail(
            f"decided value {values} was never proposed"
        )
    return PropertyVerdict.ok()


@dataclass(frozen=True)
class ConsensusProtocol:
    """Picklable factory form of :func:`consensus_factory` (see
    :class:`repro.sim.process.UniformProtocol` for the rationale)."""

    cls: type
    values: tuple[tuple[ProcessId, object], ...]
    kwargs: tuple[tuple[str, object], ...] = ()

    def __call__(self, pid: ProcessId, env: ProcessEnv):
        return self.cls(
            pid, env, value=dict(self.values)[pid], **dict(self.kwargs)
        )


def consensus_factory(cls, values: dict[ProcessId, object], **kwargs):
    """A joint-protocol factory giving each process its proposal."""
    return ConsensusProtocol(
        cls, tuple(sorted(values.items())), tuple(sorted(kwargs.items()))
    )
