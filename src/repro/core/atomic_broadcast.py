"""Atomic broadcast via repeated consensus (extension; CT96 reduction).

The paper stresses what UDC does *not* give: "we are not concerned here
with other requirements such as executing actions in a particular order
(e.g., total-order multicast)".  UDC delivers the same *set* everywhere;
ordering that set is exactly as hard as consensus (Chandra-Toueg's
atomic-broadcast/consensus equivalence).  This module implements the
classical reduction so the repository can *show* the gap:

* messages are disseminated nUDC-style (gossip with acks);
* a sequence of rotating-coordinator consensus instances agrees, batch
  by batch, on the delivery order: instance k's proposal is the
  proposer's current undelivered set, the decision is delivered in a
  deterministic order, then instance k+1 starts.

Requirements are therefore consensus's: a majority of correct processes
and a <>S detector -- strictly more than the same dissemination needs
for plain UDC, which is the point.

Deliveries are recorded as ``do_p(("adeliver", payload))`` events;
:func:`check_atomic_broadcast` verifies validity, uniform agreement,
integrity, and total order.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.detectors.properties import PropertyVerdict
from repro.model.events import DoEvent, Message, ProcessId, StandardSuspicion, Suspicion
from repro.model.run import Run
from repro.sim.process import ProcessEnv, ProtocolProcess

GOSSIP = "ab-msg"
P1 = "ab-p1"
P2 = "ab-p2"
ACK = "ab-ack"
NACK = "ab-nack"
DECIDE = "ab-dec"


def deliver_action(payload) -> tuple:
    """The do-event action recording an a-delivery."""
    return ("adeliver", payload)


@dataclass
class _Instance:
    """One consensus instance (rotating coordinator, majority quorums)."""

    number: int
    estimate: tuple = ()
    ts: int = 0
    round: int = 0
    decided: tuple | None = None
    proposed: bool = False
    estimates: dict[int, dict[ProcessId, tuple]] = field(default_factory=dict)
    acks: dict[int, set[ProcessId]] = field(default_factory=dict)
    nacks: dict[int, set[ProcessId]] = field(default_factory=dict)
    sent_p2: set[int] = field(default_factory=set)
    sent_p1: set[int] = field(default_factory=set)
    replied: set[int] = field(default_factory=set)


class AtomicBroadcastProcess(ProtocolProcess):
    """Total-order (atomic) broadcast for t < n/2 with a <>S detector."""

    def __init__(
        self,
        pid: ProcessId,
        env: ProcessEnv,
        *,
        max_instances: int = 12,
        max_rounds: int = 60,
        resend_interval: int = 3,
        resend_rounds: int = 10,
    ) -> None:
        super().__init__(pid, env)
        self.max_instances = max_instances
        self.max_rounds = max_rounds
        self.resend_interval = resend_interval
        self.resend_rounds = resend_rounds
        self.known: set = set()       # payloads gossiped to us
        self.delivered: list = []     # in delivery order
        self.delivered_set: set = set()
        self.instances: dict[int, _Instance] = {}
        self.current = 1
        self.pending_batches: dict[int, tuple] = {}  # decided, awaiting payloads
        self.current_suspects: frozenset[ProcessId] = frozenset()
        self._outgoing: dict[tuple, list] = {}
        self._last_pace = -(10**9)

    # -- plumbing ---------------------------------------------------------------

    def _emit(self, target: ProcessId, message: Message, key: tuple) -> None:
        if key in self._outgoing:
            return
        self._outgoing[key] = [target, message, self.resend_rounds - 1]
        self.env.send(target, message)

    def _pace(self) -> None:
        if self.env.now - self._last_pace < self.resend_interval:
            return
        sent = False
        for entry in self._outgoing.values():
            if entry[2] > 0:
                entry[2] -= 1
                self.env.send(entry[0], entry[1])
                sent = True
        if sent:
            self._last_pace = self.env.now

    def _instance(self, k: int) -> _Instance:
        inst = self.instances.get(k)
        if inst is None:
            inst = _Instance(number=k)
            self.instances[k] = inst
        return inst

    def _coordinator(self, inst: _Instance) -> ProcessId:
        return self.env.processes[inst.round % len(self.env.processes)]

    def _majority(self) -> int:
        return len(self.env.processes) // 2 + 1

    # -- hooks --------------------------------------------------------------------

    def on_init(self, action) -> None:
        """A-broadcast: the action's payload enters dissemination."""
        self._learn(action)
        self._drive()

    def on_suspect(self, report: Suspicion) -> None:
        if isinstance(report, StandardSuspicion):
            self.current_suspects = report.suspects
            self._drive()

    def on_receive(self, sender: ProcessId, message: Message) -> None:
        kind = message.kind
        if kind == GOSSIP:
            self._learn(message.payload)
        elif kind == DECIDE:
            k, batch = message.payload
            self._record_decision(k, batch)
        elif kind == P1:
            k, rnd, est, ts = message.payload
            inst = self._instance(k)
            inst.estimates.setdefault(rnd, {})[sender] = (est, ts)
        elif kind == P2:
            k, rnd, est = message.payload
            inst = self._instance(k)
            if rnd >= inst.round and rnd not in inst.replied:
                inst.estimate = est
                inst.ts = rnd
                inst.replied.add(rnd)
                self._emit(
                    self.env.processes[rnd % len(self.env.processes)],
                    Message(ACK, (k, rnd)),
                    ("ack", k, rnd),
                )
                inst.round = max(inst.round, rnd + 1)
        elif kind == ACK:
            k, rnd = message.payload
            self._instance(k).acks.setdefault(rnd, set()).add(sender)
        elif kind == NACK:
            k, rnd = message.payload
            self._instance(k).nacks.setdefault(rnd, set()).add(sender)
        self._drive()

    def on_tick(self) -> None:
        self._drive()
        self._pace()

    def wants_to_act(self) -> bool:
        return any(entry[2] > 0 for entry in self._outgoing.values())

    # -- dissemination ----------------------------------------------------------------

    def _learn(self, payload) -> None:
        if payload in self.known:
            return
        self.known.add(payload)
        for q in self.env.others:
            self._emit(q, Message(GOSSIP, payload), ("g", payload, q))

    # -- ordering ----------------------------------------------------------------------

    def _undelivered(self) -> tuple:
        return tuple(sorted(p for p in self.known if p not in self.delivered_set))

    def _record_decision(self, k: int, batch: tuple) -> None:
        inst = self._instance(k)
        if inst.decided is None:
            inst.decided = batch
            for q in self.env.others:
                self._emit(q, Message(DECIDE, (k, batch)), ("dec", k, q))
        self._try_deliver()

    def _try_deliver(self) -> None:
        """Deliver decided batches in instance order, once payloads are known."""
        while True:
            inst = self.instances.get(self.current)
            if inst is None or inst.decided is None:
                return
            batch = inst.decided
            if not set(batch) <= self.known:
                return  # gossip still in flight; R5 will bring it
            for payload in batch:
                if payload not in self.delivered_set:
                    self.delivered_set.add(payload)
                    self.delivered.append(payload)
                    self.env.perform(deliver_action(payload))
            self.current += 1

    # -- the consensus engine ------------------------------------------------------------

    def _drive(self) -> None:
        self._try_deliver()
        k = self.current
        if k > self.max_instances:
            return
        inst = self._instance(k)
        if inst.decided is not None:
            return
        if not inst.proposed:
            proposal = self._undelivered()
            if not proposal:
                return  # nothing to order yet
            inst.proposed = True
            inst.estimate = proposal

        progressed = True
        while progressed and inst.round < self.max_rounds and inst.decided is None:
            progressed = False
            rnd = inst.round
            coord = self._coordinator(inst)
            if coord == self.pid:
                inst.estimates.setdefault(rnd, {})[self.pid] = (
                    inst.estimate,
                    inst.ts,
                )
            elif rnd not in inst.sent_p1:
                inst.sent_p1.add(rnd)
                self._emit(
                    coord,
                    Message(P1, (k, rnd, inst.estimate, inst.ts)),
                    ("p1", k, rnd),
                )

            if coord == self.pid:
                ests = inst.estimates.setdefault(rnd, {})
                acks = inst.acks.setdefault(rnd, set())
                nacks = inst.nacks.setdefault(rnd, set())
                if rnd not in inst.sent_p2 and len(ests) >= self._majority():
                    best_est, _ = max(ests.values(), key=lambda et: et[1])
                    inst.sent_p2.add(rnd)
                    inst.estimate = best_est
                    inst.ts = rnd
                    acks.add(self.pid)
                    inst.replied.add(rnd)
                    for q in self.env.others:
                        self._emit(
                            q, Message(P2, (k, rnd, best_est)), ("p2", k, rnd, q)
                        )
                if rnd in inst.sent_p2:
                    if len(acks) >= self._majority():
                        self._record_decision(k, inst.estimate)
                        return
                    if nacks and len(acks) + len(nacks) >= self._majority():
                        inst.round += 1
                        progressed = True
            else:
                if rnd not in inst.replied and coord in self.current_suspects:
                    inst.replied.add(rnd)
                    self._emit(coord, Message(NACK, (k, rnd)), ("nack", k, rnd))
                    inst.round += 1
                    progressed = True


# ---------------------------------------------------------------------------
# Property checkers
# ---------------------------------------------------------------------------


def deliveries(run: Run, process: ProcessId) -> list:
    """The payloads a process a-delivered, in its local order."""
    return [
        e.action[1]
        for e in run.final_history(process).events_of_type(DoEvent)
        if e.action[0] == "adeliver"
    ]


def check_atomic_broadcast(run: Run, broadcasts: set) -> PropertyVerdict:
    """Validity, uniform agreement, integrity, and total order."""
    sequences = {p: deliveries(run, p) for p in run.processes}

    # Integrity: unique, and only broadcast payloads.
    for p, seq in sequences.items():
        if len(seq) != len(set(seq)):
            return PropertyVerdict.fail(f"{p} delivered a payload twice")
        if not set(seq) <= broadcasts:
            return PropertyVerdict.fail(f"{p} delivered a never-broadcast payload")

    # Uniform agreement: anything delivered anywhere is delivered by all
    # correct processes.
    delivered_anywhere = set().union(*(set(s) for s in sequences.values()))
    for p in sorted(run.correct()):
        missing = delivered_anywhere - set(sequences[p])
        if missing:
            return PropertyVerdict.fail(
                f"correct {p} missed deliveries {sorted(missing)}"
            )

    # Total order: every pair of sequences agrees on the order of their
    # common prefix -- one is a prefix of the other for correct pairs,
    # and crashed processes' sequences are prefixes of the common order.
    correct = sorted(run.correct())
    if correct:
        reference = sequences[correct[0]]
        for p, seq in sequences.items():
            n = len(seq)
            if seq != reference[:n]:
                return PropertyVerdict.fail(
                    f"{p}'s delivery order {seq} diverges from {reference}"
                )

    # Validity: a correct broadcaster's payloads are delivered.
    # (Broadcast = the initiator's init event; payload = the action.)
    from repro.model.events import InitEvent

    for p in sorted(run.correct()):
        for e in run.final_history(p).events_of_type(InitEvent):
            if e.action in broadcasts and e.action not in set(sequences[p]):
                return PropertyVerdict.fail(
                    f"correct broadcaster {p}'s payload {e.action!r} undelivered"
                )
    return PropertyVerdict.ok()
