"""Uniform Distributed Coordination properties DC1-DC3 and DC2' (Section 2.4).

UDC of action alpha in A_p holds in a system R iff:

* DC1: init_p(alpha) => eventually (do_p(alpha) or crash(p))
* DC2: for all q1, q2: do_q1(alpha) => eventually (do_q2(alpha) or crash(q2))
* DC3: for all q2: do_q2(alpha) => init_p(alpha)

nUDC replaces DC2 with

* DC2': do_q1(alpha) => eventually (do_q2(alpha) or crash(q2) or crash(q1))

All constituent formulas are stable, so on quiescent finite runs the
"eventually" obligations are decided at the run's duration (the final
cut repeats forever).  DC3 is an invariant across cuts: whenever
do_q2(alpha) holds at a cut, init_p(alpha) already holds at that cut,
which on our globally-timed runs is the statement that the init event is
no later than the first do event.
"""

from __future__ import annotations

from repro.detectors.properties import PropertyVerdict
from repro.model.events import ActionId, DoEvent, InitEvent, ProcessId
from repro.model.run import Run
from repro.model.system import System
from repro.workloads.generators import initiator_of


def actions_in(run: Run) -> set[ActionId]:
    """All actions initiated in the run."""
    return {
        event.action
        for p in run.processes
        for event in run.events(p)
        if isinstance(event, InitEvent)
    }


def _do_time(run: Run, process: ProcessId, action: ActionId) -> int | None:
    for tick, event in run.timeline(process):
        if isinstance(event, DoEvent) and event.action == action:
            return tick
    return None


def _init_time(run: Run, action: ActionId) -> int | None:
    initiator = initiator_of(action)
    for tick, event in run.timeline(initiator):
        if isinstance(event, InitEvent) and event.action == action:
            return tick
    return None


def dc1(run: Run, action: ActionId) -> PropertyVerdict:
    """init_p(alpha) => eventually (do_p(alpha) or crash(p))."""
    p = initiator_of(action)
    if _init_time(run, action) is None:
        return PropertyVerdict.ok()  # antecedent false
    if run.final_history(p).did(action) or run.final_history(p).crashed:
        return PropertyVerdict.ok()
    return PropertyVerdict.fail(
        f"{p} initiated {action!r} but neither performed it nor crashed"
    )


def dc2(run: Run, action: ActionId) -> PropertyVerdict:
    """Uniformity: if anyone performs alpha, every process performs or crashes."""
    performers = [
        q for q in run.processes if run.final_history(q).did(action)
    ]
    if not performers:
        return PropertyVerdict.ok()
    for q2 in run.processes:
        h = run.final_history(q2)
        if not h.did(action) and not h.crashed:
            return PropertyVerdict.fail(
                f"{performers[0]} performed {action!r} but correct {q2} never did"
            )
    return PropertyVerdict.ok()


def dc2_prime(run: Run, action: ActionId) -> PropertyVerdict:
    """Non-uniform variant: obligation only triggered by correct performers."""
    correct_performers = [
        q
        for q in run.processes
        if run.final_history(q).did(action) and not run.final_history(q).crashed
    ]
    if not correct_performers:
        return PropertyVerdict.ok()
    for q2 in run.processes:
        h = run.final_history(q2)
        if not h.did(action) and not h.crashed:
            return PropertyVerdict.fail(
                f"correct {correct_performers[0]} performed {action!r} "
                f"but correct {q2} never did"
            )
    return PropertyVerdict.ok()


def dc3(run: Run, action: ActionId) -> PropertyVerdict:
    """No process performs alpha unless its initiator initiated it first.

    Validity at all points: at every cut where do_q(alpha) holds,
    init_p(alpha) holds, i.e. the init event is no later than the
    earliest do event (global time).
    """
    init_t = _init_time(run, action)
    for q in run.processes:
        do_t = _do_time(run, q, action)
        if do_t is None:
            continue
        if init_t is None:
            return PropertyVerdict.fail(
                f"{q} performed {action!r} which was never initiated"
            )
        if do_t < init_t:
            return PropertyVerdict.fail(
                f"{q} performed {action!r} at time {do_t}, before its "
                f"initiation at time {init_t}"
            )
    return PropertyVerdict.ok()


def _each_action(run: Run, action: ActionId | None) -> list[ActionId]:
    if action is not None:
        return [action]
    # Include actions that were performed without init (DC3 violations).
    performed = {
        e.action
        for p in run.processes
        for e in run.events(p)
        if isinstance(e, DoEvent)
    }
    return sorted(actions_in(run) | performed)


def udc_holds(run: Run, action: ActionId | None = None) -> PropertyVerdict:
    """DC1 and DC2 and DC3, for one action or for every action in the run."""
    for a in _each_action(run, action):
        for check in (dc1, dc2, dc3):
            verdict = check(run, a)
            if not verdict:
                return verdict
    return PropertyVerdict.ok()


def nudc_holds(run: Run, action: ActionId | None = None) -> PropertyVerdict:
    """DC1 and DC2' and DC3."""
    for a in _each_action(run, action):
        for check in (dc1, dc2_prime, dc3):
            verdict = check(run, a)
            if not verdict:
                return verdict
    return PropertyVerdict.ok()


def system_udc(system: System) -> PropertyVerdict:
    """UDC holds of a system iff it holds in every run."""
    for i, run in enumerate(system):
        verdict = udc_holds(run)
        if not verdict:
            return PropertyVerdict.fail(f"run {i}: {verdict.witness}")
    return PropertyVerdict.ok()


def system_nudc(system: System) -> PropertyVerdict:
    """nUDC holds of a system iff it holds in every run."""
    for i, run in enumerate(system):
        verdict = nudc_holds(run)
        if not verdict:
            return PropertyVerdict.fail(f"run {i}: {verdict.witness}")
    return PropertyVerdict.ok()
