"""The knowledge-based run transformations of Theorems 3.6 and 4.3.

Theorem 3.6: if a system R attains UDC (under A1-A4, A5_{n-1}, and
infinitely many initiations), then R can *simulate perfect failure
detectors*: the transformed system R^f = {f(r) : r in R} has perfect
detectors, where f interleaves, at every odd step, a derived report

    suspect'_p(S)   with   S = {q : (R, r, m) |= K_p crash(q)}   (P3)

Theorem 4.3 generalises to a bound t on failures via f' which emits
generalized reports

    suspect'_p(S_l, k),  l = |r_p(m+1)| mod 2^n,
    k = max{k' : (R, r, m) |= K_p("at least k' processes in S_l crashed")}
                                                                    (P3')

Time mapping.  P1-P2 double the timeline: r(0) maps to f(r)(0) (both
empty, R1), an original event that lands at time m >= 1 of r lands at
time 2m of f(r), and the derived report carrying knowledge at (r, m)
lands at time 2m + 1.  Original failure-detector events are *deleted*
(P2) -- the derived reports replace them -- and derived reports carry
``derived=True`` so the property checkers can tell the two apart.
Knowledge is veridical, so a derived suspicion of q at time 2m + 1
implies q's crash landed at some 2m_c <= 2m < 2m + 1: the transformed
detector satisfies strong accuracy *by construction*, for any system
(this is a theorem of the semantics; the property tests exercise it on
arbitrary ensembles).  Completeness is where the theorem's hypotheses
bite.

R4 footnote: the paper appends derived reports at every odd step; we
stop appending to a history once its crash event has landed, since R4
makes the crash terminal.  Reports by crashed processes are irrelevant
to every detector property.

Knowledge here is evaluated over the finite ensemble R that the caller
provides (DESIGN.md substitution 3): exact with respect to R, an upper
bound on knowledge with respect to the infinite system it samples.
"""

from __future__ import annotations

from typing import Sequence

from repro.model.events import (
    GeneralizedSuspicion,
    ProcessId,
    StandardSuspicion,
    SuspectEvent,
)
from repro.model.run import Point, Run
from repro.model.system import System


def _transformed_timelines(
    run: Run,
    system: System,
    report_for,
) -> dict[ProcessId, list]:
    """Shared skeleton of f and f': copy non-FD events to even times and
    splice derived reports (produced by ``report_for``) at odd times."""
    timelines: dict[ProcessId, list] = {}
    for p in run.processes:
        crash_tick = run.crash_time(p)
        merged: list = []
        for m in range(run.duration + 1):
            if crash_tick is not None and m >= crash_tick:
                break  # R4: nothing follows the crash event
            report = report_for(p, m)
            if report is not None:
                merged.append((2 * m + 1, SuspectEvent(p, report, derived=True)))
        for t, event in run.timeline(p):
            if isinstance(event, SuspectEvent):
                continue  # P2 deletes the original failure-detector events
            merged.append((2 * t, event))
        merged.sort(key=lambda te: te[0])
        timelines[p] = merged
    return timelines


def transform_run_f(run: Run, system: System) -> Run:
    """The transformation f of Theorem 3.6 (P1-P3)."""

    def report_for(p: ProcessId, m: int) -> StandardSuspicion:
        known = system.known_crashed_set(p, Point(run, m))
        return StandardSuspicion(known)

    timelines = _transformed_timelines(run, system, report_for)
    return Run(
        run.processes,
        timelines,
        duration=2 * run.duration + 1,
        meta={**run.meta, "transformed": "f"},
    )


def subset_order(processes: Sequence[ProcessId]) -> tuple[frozenset[ProcessId], ...]:
    """The fixed order S_0, ..., S_{2^n - 1} used by P3': binary counting
    over the sorted process list (S_0 is empty, S_{2^n-1} is Proc)."""
    procs = sorted(processes)
    n = len(procs)
    return tuple(
        frozenset(procs[i] for i in range(n) if mask & (1 << i))
        for mask in range(1 << n)
    )


def transform_run_f_prime(run: Run, system: System) -> Run:
    """The transformation f' of Theorem 4.3 (P1, P2, P3')."""
    subsets = subset_order(run.processes)
    modulus = len(subsets)

    def report_for(p: ProcessId, m: int) -> GeneralizedSuspicion:
        # P3': the subset index is the length of r_p(m+1) mod 2^n.
        history_len = len(run.history(p, min(m + 1, run.duration)))
        subset = subsets[history_len % modulus]
        k = system.known_crash_count(p, Point(run, m), subset)
        return GeneralizedSuspicion(subset, k)

    timelines = _transformed_timelines(run, system, report_for)
    return Run(
        run.processes,
        timelines,
        duration=2 * run.duration + 1,
        meta={**run.meta, "transformed": "f'"},
    )


def simulate_perfect_detectors(system: System) -> System:
    """R^f = {f(r) : r in R}: Theorem 3.6's simulated-detector system."""
    return System(
        [transform_run_f(run, system) for run in system],
        context=system.context,
    )


def simulate_generalized_detectors(system: System) -> System:
    """R^{f'} = {f'(r) : r in R}: Theorem 4.3's simulated-detector system."""
    return System(
        [transform_run_f_prime(run, system) for run in system],
        context=system.context,
    )
