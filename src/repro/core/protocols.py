"""Executable versions of every protocol in the paper.

===============================  =============  =========================
class                            paper result   context
===============================  =============  =========================
:class:`NUDCProcess`             Prop 2.3       fair channels, no FD,
                                                unbounded failures (nUDC)
:class:`ReliableUDCProcess`      Prop 2.4       reliable channels, no FD,
                                                unbounded failures
:class:`StrongFDUDCProcess`      Prop 3.1       fair channels, strong FD,
                                                unbounded failures
:class:`GeneralizedFDUDCProcess` Prop 4.1       fair channels, t-useful
                                                generalized FD, <= t
                                                failures (Cor 4.2 with the
                                                trivial subset oracle)
:class:`AtdUDCProcess`           Section 5      fair channels, the ATD99
                                                weakest detector for UDC
===============================  =============  =========================

Message vocabulary: an *alpha-message* ``Message("alpha", action)`` tells
the receiver to perform ``action``; an acknowledgment is
``Message("ack", action)``.

Bounded retransmission
----------------------
The paper's protocols retransmit forever (footnote 10 notes they have no
termination mechanism).  On a finite simulation we cap retransmission at
``resend_rounds`` copies per (action, target).  The fair-lossy channel's
budget guarantees delivery of a message retransmitted
``max_consecutive_drops + 1`` times, and an acknowledgment flows back
within another budget's worth of receipts, so any
``resend_rounds >= (budget + 1) * (budget + 2)`` preserves every liveness
property the unbounded protocol has; the default of 25 covers the
default budget of 3 with slack.  DESIGN.md substitution 2 records this.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache

from repro.model.events import (
    ActionId,
    GeneralizedSuspicion,
    Message,
    ProcessId,
    StandardSuspicion,
    Suspicion,
)
from repro.sim.process import ProcessEnv, ProtocolProcess

ALPHA = "alpha"
ACK = "ack"


@lru_cache(maxsize=None)  # repro: lint-ok[POOL002] value-interning cache
def alpha_message(action: ActionId) -> Message:
    """The "perform this action" message (interned per action)."""
    return Message(ALPHA, action)


@lru_cache(maxsize=None)  # repro: lint-ok[POOL002] value-interning cache
def ack_message(action: ActionId) -> Message:
    """The acknowledgment of an alpha-message (interned per action)."""
    return Message(ACK, action)


@dataclass
class _ActionState:
    """Per-action bookkeeping shared by the acknowledging protocols."""

    joined: bool = False
    acked_by: set[ProcessId] = field(default_factory=set)
    #: processes known to be in the UDC(action) state: they acked our
    #: alpha-message or sent us one themselves
    holders: set[ProcessId] = field(default_factory=set)
    sends_left: dict[ProcessId, int] = field(default_factory=dict)
    last_resend: int = -(10**9)


class _CoordinationBase(ProtocolProcess):
    """Shared machinery: join/ack bookkeeping and paced retransmission."""

    def __init__(
        self,
        pid: ProcessId,
        env: ProcessEnv,
        *,
        resend_rounds: int = 25,
        resend_interval: int = 3,
    ) -> None:
        super().__init__(pid, env)
        self.resend_rounds = resend_rounds
        self.resend_interval = resend_interval
        self.states: dict[ActionId, _ActionState] = {}

    # -- bookkeeping --------------------------------------------------------

    def state(self, action: ActionId) -> _ActionState:
        st = self.states.get(action)
        if st is None:
            st = _ActionState(
                sends_left={q: self.resend_rounds for q in self.env.others}
            )
            self.states[action] = st
        return st

    def join(self, action: ActionId) -> None:
        """Enter the UDC(action) state; subclasses extend."""
        st = self.state(action)
        if st.joined:
            return
        st.joined = True
        self._resend(action, st, force=True)
        self.check_perform(action)

    def _targets(self, action: ActionId, st: _ActionState) -> list[ProcessId]:
        """Who still gets alpha-messages; subclasses narrow this."""
        return [q for q in self.env.others if q not in st.acked_by]

    def _resend(self, action: ActionId, st: _ActionState, *, force: bool = False) -> None:
        if not force and self.env.now - st.last_resend < self.resend_interval:
            return
        sent_any = False
        for q in self._targets(action, st):
            if st.sends_left.get(q, 0) <= 0:
                continue
            st.sends_left[q] -= 1
            self.env.send(q, alpha_message(action))
            sent_any = True
        if sent_any:
            st.last_resend = self.env.now

    # -- hooks ---------------------------------------------------------------

    def on_init(self, action: ActionId) -> None:
        self.join(action)

    def on_receive(self, sender: ProcessId, message: Message) -> None:
        if message.kind == ALPHA:
            action = message.payload
            self.env.send(sender, ack_message(action))
            self.state(action).holders.add(sender)
            self.join(action)
            self.check_perform(action)
        elif message.kind == ACK:
            action = message.payload
            st = self.state(action)
            st.acked_by.add(sender)
            st.holders.add(sender)
            self.check_perform(action)

    def on_tick(self) -> None:
        if not self.states:
            return
        for action, st in self.states.items():
            if st.joined:
                self._resend(action, st)
                self.check_perform(action)

    def wants_to_act(self) -> bool:
        return any(
            st.joined
            and any(
                st.sends_left.get(q, 0) > 0
                for q in self._targets(action, st)
            )
            for action, st in self.states.items()
        )

    # -- the protocol-specific perform rule -------------------------------------

    def check_perform(self, action: ActionId) -> None:
        """Perform the action when the protocol's condition is met."""
        raise NotImplementedError


class NUDCProcess(_CoordinationBase):
    """Proposition 2.3: non-uniform distributed coordination, no detector.

    On entering the nUDC(action) state a process performs the action
    immediately and (repeatedly) tells everyone else to do the same.  No
    acknowledgments are required before performing -- that is what makes
    it non-uniform: a process may perform and crash before any copy of
    its alpha-message survives.

    Acks are still sent and used solely to stop retransmitting to
    processes that already have the action (a quiescence optimisation
    that does not affect the coordination property: the paper's variant
    simply never stops sending).
    """

    def join(self, action: ActionId) -> None:
        st = self.state(action)
        if st.joined:
            return
        st.joined = True
        # The paper's order: "it performs alpha and sends an alpha-message
        # repeatedly".  Performing before any send is exactly what makes
        # the protocol non-uniform -- a crash straight after the do event
        # can leave no trace of alpha anywhere else.
        self.env.perform(action)
        self._resend(action, st, force=True)

    def check_perform(self, action: ActionId) -> None:
        if self.state(action).joined:
            self.env.perform(action)


class ReliableUDCProcess(_CoordinationBase):
    """Proposition 2.4: UDC over reliable channels, no detector.

    On entering the UDC(action) state a process first sends an
    alpha-message to all other processes and *then* performs the action.
    Because the sends precede the do in the history (and the channel is
    reliable), a crash after performing cannot erase the obligation:
    the messages are already in the channel.
    """

    def __init__(self, pid, env, **kwargs):
        kwargs.setdefault("resend_rounds", 1)  # reliable channels: one copy is enough
        super().__init__(pid, env, **kwargs)

    def join(self, action: ActionId) -> None:
        st = self.state(action)
        if st.joined:
            return
        st.joined = True
        # Send to all BEFORE performing; the outbox preserves order, so
        # the do event lands after every send event.
        for q in self.env.others:
            st.sends_left[q] -= 1
            self.env.send(q, alpha_message(action))
        self.env.perform(action)

    def check_perform(self, action: ActionId) -> None:
        pass  # the perform is issued inside join(), after the sends


class StrongFDUDCProcess(_CoordinationBase):
    """Proposition 3.1: UDC with a strong failure detector, fair channels.

    A process in the UDC(action) state repeatedly sends alpha-messages.
    It performs the action once, for every other process q, it has
    received an ack from q *or its detector says or has said that q is
    faulty* (suspicions are remembered: the condition is "says or has
    said").  It keeps retransmitting to non-acked processes even after
    performing.
    """

    def __init__(self, pid, env, **kwargs):
        super().__init__(pid, env, **kwargs)
        self.ever_suspected: set[ProcessId] = set()

    def on_suspect(self, report: Suspicion) -> None:
        if isinstance(report, StandardSuspicion):
            self.ever_suspected |= report.suspects
            for action, st in self.states.items():
                if st.joined:
                    self.check_perform(action)

    def check_perform(self, action: ActionId) -> None:
        st = self.state(action)
        if not st.joined:
            return
        if all(
            q in st.acked_by or q in self.ever_suspected
            for q in self.env.others
        ):
            self.env.perform(action)


class GeneralizedFDUDCProcess(_CoordinationBase):
    """Proposition 4.1: UDC with a t-useful generalized detector.

    A process performs the action when there is a remembered report
    (S, k) such that (a) it is in the UDC(action) state, (b) the report
    was emitted by its detector, (c) it has acks from every process in
    Proc - S (its own ack being trivial), and (d)
    n - |S| > min(t, n-1) - k.

    It keeps sending alpha-messages to each q in S until an ack arrives
    or the retransmission budget runs out.

    With the :class:`~repro.detectors.generalized.TrivialSubsetOracle`
    and t < n/2 this is exactly the Gopal-Toueg no-detector protocol of
    Corollary 4.2.
    """

    def __init__(self, pid, env, *, t: int, **kwargs):
        super().__init__(pid, env, **kwargs)
        if t < 0:
            raise ValueError("t must be non-negative")
        self.t = t
        self.reports: list[GeneralizedSuspicion] = []

    def on_suspect(self, report: Suspicion) -> None:
        if isinstance(report, GeneralizedSuspicion):
            self.reports.append(report)
            for action, st in self.states.items():
                if st.joined:
                    self.check_perform(action)

    def _useful_here(self, report: GeneralizedSuspicion) -> bool:
        n = len(self.env.processes)
        return n - len(report.suspects) > min(self.t, n - 1) - report.count

    def check_perform(self, action: ActionId) -> None:
        st = self.state(action)
        if not st.joined:
            return
        acked = st.acked_by | {self.pid}
        for report in self.reports:
            if not self._useful_here(report):
                continue
            needed = set(self.env.processes) - set(report.suspects)
            if needed <= acked:
                self.env.perform(action)
                return


class AtdUDCProcess(_CoordinationBase):
    """Section 5: UDC with the Aguilera-Toueg-Deianov weakest detector.

    The detector satisfies strong completeness plus ATD accuracy: at all
    times, *some* correct process is currently unsuspected (possibly a
    different one at different times).  The perform rule uses *current*
    suspicions (most recent report), not remembered ones: perform once
    every process not known to hold the action is currently suspected.
    ATD accuracy then guarantees that some correct process is in the
    known-holders set, and strong completeness provides liveness.
    """

    def __init__(self, pid, env, **kwargs):
        super().__init__(pid, env, **kwargs)
        self.current_suspects: frozenset[ProcessId] = frozenset()

    def on_suspect(self, report: Suspicion) -> None:
        if isinstance(report, StandardSuspicion):
            self.current_suspects = report.suspects
            for action, st in self.states.items():
                if st.joined:
                    self.check_perform(action)

    def _holders(self, action: ActionId) -> set[ProcessId]:
        """Processes known to be in the UDC(action) state."""
        st = self.state(action)
        return st.holders | {self.pid}

    def check_perform(self, action: ActionId) -> None:
        st = self.state(action)
        if not st.joined:
            return
        unknown = set(self.env.processes) - self._holders(action)
        if unknown <= self.current_suspects:
            self.env.perform(action)
