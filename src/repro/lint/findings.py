"""Structured lint results.

A :class:`LintFinding` is one violation at one source location, tagged
with the rule that produced it, the rule's severity, and a fix hint.
Findings are plain frozen dataclasses so they sort deterministically,
compare by value in tests, and encode to stable JSON for CI.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


def _as_int(value: object) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise ValueError(f"expected int, got {type(value).__name__}")
    return value


class Severity(enum.Enum):
    """Per-rule severity.

    ``ERROR`` findings fail the lint run (exit 1); ``WARNING`` findings
    are reported but do not affect the exit code on their own.
    """

    ERROR = "error"
    WARNING = "warning"


@dataclass(frozen=True, order=True)
class LintFinding:
    """One rule violation at one source location."""

    #: path of the offending file, as given to the engine (posix-style)
    file: str
    #: 1-based source line of the offending node
    line: int
    #: 0-based column of the offending node
    col: int
    #: rule identifier, e.g. ``"DET001"``
    rule: str
    #: the rule's severity at report time
    severity: Severity
    #: what is wrong, concretely (mentions the offending name when known)
    message: str
    #: how to fix it (the rule's general remediation)
    hint: str

    def render(self) -> str:
        """The one-line human-readable form: ``file:line:col: RULE message``."""
        return (
            f"{self.file}:{self.line}:{self.col}: "
            f"{self.rule} [{self.severity.value}] {self.message}"
        )

    def as_dict(self) -> dict[str, object]:
        """JSON-safe dict form (stable key order by construction)."""
        return {
            "file": self.file,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "severity": self.severity.value,
            "message": self.message,
            "hint": self.hint,
        }

    @classmethod
    def from_dict(cls, data: dict[str, object]) -> "LintFinding":
        """Inverse of :meth:`as_dict` (used by the analysis cache)."""
        return cls(
            file=str(data["file"]),
            line=_as_int(data["line"]),
            col=_as_int(data["col"]),
            rule=str(data["rule"]),
            severity=Severity(data["severity"]),
            message=str(data["message"]),
            hint=str(data["hint"]),
        )
