"""repro.lint — determinism & pool-safety static analysis.

AST-based (stdlib only) rules that enforce, *before a run executes*,
the invariants the rest of the stack enforces dynamically: replay
determinism (DET*), process-pool picklability (POOL*), and model-object
immutability (INV*).  See DESIGN.md §11 for the rule catalog.

Entry points: ``python -m repro.harness lint`` or
:func:`repro.lint.engine.lint_paths`.
"""

from .context import ModuleUnderLint, Suppression
from .engine import LintReport, lint_file, lint_paths
from .findings import LintFinding, Severity
from .registry import Rule, all_rules, known_rule_ids, register

__all__ = [
    "LintFinding",
    "LintReport",
    "ModuleUnderLint",
    "Rule",
    "Severity",
    "Suppression",
    "all_rules",
    "known_rule_ids",
    "lint_file",
    "lint_paths",
    "register",
]
