"""repro.lint — whole-program determinism & pool-safety static analysis.

AST-based (stdlib only) rules that enforce, *before a run executes*,
the invariants the rest of the stack enforces dynamically: replay
determinism (DET*), process-pool picklability (POOL*), model-object
immutability (INV*), and event-loop safety (ASY*).  The engine runs in
two phases: per-file rules over each parsed module, then whole-program
rules (ASY003, DET007, POOL004) over the joined
:class:`~repro.lint.project.ProjectIndex`, its call graph, and the
effect fixpoint — so violations hidden behind helper functions are
still caught.  See DESIGN.md §11 for the rule catalog and §16 for the
whole-program analysis.

Entry points: ``python -m repro.harness lint`` or
:func:`repro.lint.engine.lint_paths` (pass ``cache_dir`` for warm
incremental re-lints).
"""

from .context import ModuleUnderLint, Suppression
from .engine import LintReport, lint_file, lint_paths
from .findings import LintFinding, Severity
from .project import FileSummary, ProjectIndex
from .registry import ProjectRule, Rule, all_rules, known_rule_ids, register

__all__ = [
    "FileSummary",
    "LintFinding",
    "LintReport",
    "ModuleUnderLint",
    "ProjectIndex",
    "ProjectRule",
    "Rule",
    "Severity",
    "Suppression",
    "all_rules",
    "known_rule_ids",
    "lint_file",
    "lint_paths",
    "register",
]
