"""Allow ``python -m repro.lint`` as a shortcut for ``harness lint``."""

from .cli import main

if __name__ == "__main__":
    raise SystemExit(main())
