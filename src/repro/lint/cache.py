"""Incremental analysis cache for warm re-lints.

The expensive part of a lint run is phase 1: reading, parsing, and
summarizing every file.  The cache stores, per display path, the
content hash plus the serialized :class:`~repro.lint.project.FileSummary`
and that file's rule findings; a warm run re-parses only files whose
bytes changed and rebuilds phase 2 (index, call graph, effect fixpoint,
whole-program rules) from the summaries — which is how an edit to one
helper correctly updates transitive findings in *unchanged* files.

Invalidation is wholesale and conservative: the cache carries the
:data:`~repro.lint.project.ANALYSIS_VERSION` and a signature of the
selected ruleset (ids and severities); any mismatch discards every
entry.  Corrupt or unreadable cache files degrade to a cold run, never
to an error — the cache is an accelerator, not a dependency.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Any, Sequence

from .findings import LintFinding
from .project import (
    ANALYSIS_VERSION,
    CallSite,
    ClassDecl,
    FileSummary,
    FunctionDecl,
    IntrinsicEffect,
    Ref,
    SpecPlacement,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .registry import Rule

#: cache file name inside the cache directory
CACHE_FILE = "analysis.json"


def ruleset_signature(rules: Sequence["Rule"]) -> str:
    """A short stable signature of the selected ruleset.

    Selecting different rules (or changing a rule's severity) must
    invalidate cached findings, since they were computed under the old
    set; the analysis version folds in so summary-layout changes do too.
    """
    text = ",".join(
        f"{rule.id}={rule.severity.value}"
        for rule in sorted(rules, key=lambda r: r.id)
    )
    digest = hashlib.sha256(
        f"v{ANALYSIS_VERSION}|{text}".encode("utf-8")
    ).hexdigest()
    return digest[:16]


def file_digest(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


# -- summary (de)serialization ------------------------------------------------


def summary_to_dict(summary: FileSummary) -> dict[str, object]:
    return {
        "display_path": summary.display_path,
        "sha256": summary.sha256,
        "module": summary.module,
        "functions": [
            [f.qualname, f.line, f.col, f.is_async, f.class_name, f.protocol_scope]
            for f in summary.functions
        ],
        "classes": [
            [
                c.name,
                list(c.bases),
                list(c.methods),
                [list(pair) for pair in c.attr_types],
            ]
            for c in summary.classes
        ],
        "imports": [list(pair) for pair in summary.imports],
        "calls": [
            [
                s.caller,
                s.ref.kind,
                list(s.ref.parts),
                s.line,
                s.col,
                s.in_return,
            ]
            for s in summary.calls
        ],
        "intrinsics": [
            [i.function, i.effect, i.detail, i.line, i.col]
            for i in summary.intrinsics
        ],
        "placements": [
            [
                p.caller,
                p.factory,
                p.ref.kind,
                list(p.ref.parts),
                p.is_call,
                p.line,
                p.col,
            ]
            for p in summary.placements
        ],
        "suppressions": [
            [line, list(rules)] for line, rules in summary.suppressions
        ],
        "findings": [f.as_dict() for f in summary.findings],
    }


def summary_from_dict(data: dict[str, object]) -> FileSummary:
    functions = tuple(
        FunctionDecl(
            qualname=str(row[0]),
            line=int(row[1]),
            col=int(row[2]),
            is_async=bool(row[3]),
            class_name=None if row[4] is None else str(row[4]),
            protocol_scope=bool(row[5]),
        )
        for row in _rows(data, "functions")
    )
    classes = tuple(
        ClassDecl(
            name=str(row[0]),
            bases=tuple(str(b) for b in _as_list(row[1])),
            methods=tuple(str(m) for m in _as_list(row[2])),
            attr_types=tuple(
                (str(pair[0]), str(pair[1]))
                for pair in (_as_list(p) for p in _as_list(row[3]))
            ),
        )
        for row in _rows(data, "classes")
    )
    calls = tuple(
        CallSite(
            caller=None if row[0] is None else str(row[0]),
            ref=Ref(str(row[1]), tuple(str(p) for p in _as_list(row[2]))),
            line=int(row[3]),
            col=int(row[4]),
            in_return=bool(row[5]),
        )
        for row in _rows(data, "calls")
    )
    intrinsics = tuple(
        IntrinsicEffect(
            function=None if row[0] is None else str(row[0]),
            effect=str(row[1]),
            detail=str(row[2]),
            line=int(row[3]),
            col=int(row[4]),
        )
        for row in _rows(data, "intrinsics")
    )
    placements = tuple(
        SpecPlacement(
            caller=None if row[0] is None else str(row[0]),
            factory=str(row[1]),
            ref=Ref(str(row[2]), tuple(str(p) for p in _as_list(row[3]))),
            is_call=bool(row[4]),
            line=int(row[5]),
            col=int(row[6]),
        )
        for row in _rows(data, "placements")
    )
    suppressions = tuple(
        (int(row[0]), tuple(str(r) for r in _as_list(row[1])))
        for row in _rows(data, "suppressions")
    )
    findings = tuple(
        LintFinding.from_dict(entry)
        for entry in _rows(data, "findings")
        if isinstance(entry, dict)
    )
    module = data.get("module")
    return FileSummary(
        display_path=str(data["display_path"]),
        sha256=str(data["sha256"]),
        module=None if module is None else str(module),
        functions=functions,
        classes=classes,
        imports=tuple(
            (str(pair[0]), str(pair[1])) for pair in _rows(data, "imports")
        ),
        calls=calls,
        intrinsics=intrinsics,
        placements=placements,
        suppressions=suppressions,
        findings=findings,
    )


def _rows(data: dict[str, object], key: str) -> list[Any]:
    value = data.get(key, [])
    return value if isinstance(value, list) else []


def _as_list(value: object) -> list[Any]:
    return value if isinstance(value, list) else []


# -- the cache ----------------------------------------------------------------


@dataclass
class CacheEntry:
    """One cached file: content hash, summary, findings, parse error."""

    sha256: str
    summary: FileSummary | None
    parse_error: str | None


class AnalysisCache:
    """Content-addressed per-file results, persisted as one JSON file."""

    def __init__(self, directory: Path, signature: str) -> None:
        self.directory = directory
        self.signature = signature
        self.entries: dict[str, CacheEntry] = {}
        self._touched: set[str] = set()

    # -- lifecycle -----------------------------------------------------------

    @classmethod
    def open(cls, directory: Path, rules: Sequence["Rule"]) -> "AnalysisCache":
        cache = cls(directory, ruleset_signature(rules))
        cache._load()
        return cache

    def _load(self) -> None:
        path = self.directory / CACHE_FILE
        try:
            raw = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return
        if not isinstance(raw, dict):
            return
        if raw.get("version") != ANALYSIS_VERSION:
            return
        if raw.get("ruleset") != self.signature:
            return
        entries = raw.get("entries")
        if not isinstance(entries, dict):
            return
        for display, entry in entries.items():
            if not isinstance(entry, dict):
                continue
            try:
                summary_data = entry.get("summary")
                summary = (
                    summary_from_dict(summary_data)
                    if isinstance(summary_data, dict)
                    else None
                )
                parse_error = entry.get("parse_error")
                self.entries[str(display)] = CacheEntry(
                    sha256=str(entry["sha256"]),
                    summary=summary,
                    parse_error=(
                        None if parse_error is None else str(parse_error)
                    ),
                )
            except (KeyError, TypeError, ValueError, IndexError):
                continue  # one corrupt entry never poisons the rest

    def save(self) -> None:
        """Persist touched entries atomically; untouched ones are pruned
        (they belong to files outside the current lint set)."""
        payload = {
            "version": ANALYSIS_VERSION,
            "ruleset": self.signature,
            "entries": {
                display: {
                    "sha256": entry.sha256,
                    "summary": (
                        None
                        if entry.summary is None
                        else summary_to_dict(entry.summary)
                    ),
                    "parse_error": entry.parse_error,
                }
                for display, entry in sorted(self.entries.items())
                if display in self._touched
            },
        }
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            tmp = self.directory / f"{CACHE_FILE}.tmp.{os.getpid()}"
            tmp.write_text(
                json.dumps(payload, sort_keys=True), encoding="utf-8"
            )
            tmp.replace(self.directory / CACHE_FILE)
        except OSError:
            return  # a read-only cache dir degrades to cold runs

    # -- per-file protocol ---------------------------------------------------

    def lookup(self, display: str, sha256: str) -> CacheEntry | None:
        """The cached entry when the content hash still matches."""
        entry = self.entries.get(display)
        if entry is None or entry.sha256 != sha256:
            return None
        self._touched.add(display)
        return entry

    def store(
        self,
        display: str,
        sha256: str,
        summary: FileSummary | None,
        parse_error: str | None,
    ) -> None:
        self.entries[display] = CacheEntry(
            sha256=sha256, summary=summary, parse_error=parse_error
        )
        self._touched.add(display)
