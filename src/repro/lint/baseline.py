"""Committed-baseline workflow for adopting new rules gradually.

A baseline file records the findings a team has reviewed and accepted
(or not yet fixed); a lint run with ``--baseline`` reports only
findings *not* in the baseline, so a freshly-landed rule can gate CI on
regressions immediately while its backlog is burned down.

Matching is a multiset over ``(file, rule, message)`` — deliberately
*not* line numbers, so unrelated edits that shift a waived finding a
few lines do not resurrect it, while a second identical violation in
the same file does surface (the multiset only absorbs as many as were
recorded).
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import Sequence

from .findings import LintFinding

BASELINE_VERSION = 1

_Key = tuple[str, str, str]


def _key(finding: LintFinding) -> _Key:
    return (finding.file, finding.rule, finding.message)


def load_baseline(path: Path) -> Counter[_Key]:
    """The baseline as a multiset; raises ``ValueError`` on bad files."""
    try:
        raw = json.loads(path.read_text(encoding="utf-8"))
    except OSError as exc:
        raise ValueError(f"cannot read baseline {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise ValueError(f"baseline {path} is not valid JSON: {exc}") from exc
    if not isinstance(raw, dict) or raw.get("version") != BASELINE_VERSION:
        raise ValueError(
            f"baseline {path} has unsupported layout (want version "
            f"{BASELINE_VERSION})"
        )
    entries = raw.get("entries")
    if not isinstance(entries, list):
        raise ValueError(f"baseline {path} has no entries list")
    out: Counter[_Key] = Counter()
    for entry in entries:
        if not isinstance(entry, dict):
            raise ValueError(f"baseline {path} has a non-object entry")
        try:
            out[(str(entry["file"]), str(entry["rule"]), str(entry["message"]))] += 1
        except KeyError as exc:
            raise ValueError(
                f"baseline {path} entry is missing {exc}"
            ) from exc
    return out


def apply_baseline(
    findings: Sequence[LintFinding], baseline: Counter[_Key]
) -> tuple[tuple[LintFinding, ...], int]:
    """(findings not absorbed by the baseline, number absorbed)."""
    budget = Counter(baseline)
    fresh: list[LintFinding] = []
    absorbed = 0
    for finding in findings:
        key = _key(finding)
        if budget[key] > 0:
            budget[key] -= 1
            absorbed += 1
        else:
            fresh.append(finding)
    return tuple(fresh), absorbed


def write_baseline(path: Path, findings: Sequence[LintFinding]) -> None:
    """Record the current findings as the accepted baseline."""
    entries = sorted(
        (
            {"file": f.file, "rule": f.rule, "message": f.message}
            for f in findings
        ),
        key=lambda e: (e["file"], e["rule"], e["message"]),
    )
    payload = {"version": BASELINE_VERSION, "entries": entries}
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
