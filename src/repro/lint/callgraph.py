"""Phase-2 call graph over the :class:`~repro.lint.project.ProjectIndex`.

Nodes are global function names (``<module-key>::<qualname>``); edges
come from resolving each recorded :class:`~repro.lint.project.CallSite`
reference against the index:

- bare names resolve to sibling nested functions, then module-level
  functions, then imported project functions, then local classes
  (a constructor call edges to ``Class.__init__`` when it exists);
- ``self.m()`` / ``cls.m()`` resolve through the enclosing class and
  its resolvable base-class chain;
- ``self.<attr>.<m>()`` resolves when ``__init__`` recorded a class
  annotation for the attribute (``self.state = state`` with
  ``state: ServeState``);
- ``obj.m()`` resolves when ``obj`` carries a recorded local type
  (parameter annotation, ``x: T`` annotation, or ``x = SomeClass(...)``);
- dotted chains rooted at an import (``mod.f()``, ``pkg.Class.m()``)
  resolve module-by-module.

Anything else — dynamic dispatch, ``getattr``, re-exported names the
index cannot see — resolves to ``None`` and produces *no* edge: the
effect fixpoint under-approximates behind unresolved calls rather than
guessing (DESIGN.md §16 records the caveat).

The executor cut falls out structurally: a callable *passed* to
``run_in_executor``/``to_thread`` is never a call expression, so no
edge links the shipping coroutine to the thunk, and blocking effects
cannot flow back onto the event loop through it.
"""

from __future__ import annotations

from dataclasses import dataclass

from .project import (
    CallSite,
    ClassDecl,
    FileSummary,
    ProjectIndex,
    Ref,
)

#: base-class resolution depth bound (defensive; real chains are short)
_MAX_BASE_DEPTH = 8


@dataclass(frozen=True)
class CallEdge:
    """One resolved call: ``caller`` invokes ``callee`` at a source site."""

    caller: str  # global function name (or "<module-key>::" for top level)
    callee: str  # global function name
    site: CallSite
    file: str  # display path of the call site


class CallGraph:
    """Resolved call edges plus reverse adjacency for the fixpoint."""

    def __init__(self, index: ProjectIndex) -> None:
        self.index = index
        self.edges: list[CallEdge] = []
        self.out_edges: dict[str, list[CallEdge]] = {}
        self._build()

    # -- construction --------------------------------------------------------

    def _build(self) -> None:
        for summary in self.index.summaries:
            key = ProjectIndex.module_key(summary)
            for site in summary.calls:
                callee = self.resolve(summary, site.caller, site.ref)
                if callee is None:
                    continue
                caller = f"{key}::{site.caller}" if site.caller else f"{key}::"
                edge = CallEdge(
                    caller=caller,
                    callee=callee,
                    site=site,
                    file=summary.display_path,
                )
                self.edges.append(edge)
                self.out_edges.setdefault(caller, []).append(edge)
        for edges in self.out_edges.values():
            edges.sort(key=lambda e: (e.site.line, e.site.col, e.callee))

    # -- reference resolution ------------------------------------------------

    def resolve(
        self, summary: FileSummary, caller: str | None, ref: Ref
    ) -> str | None:
        """Global function name a reference resolves to, if any."""
        if ref.kind == "name":
            return self._resolve_name(summary, caller, ref.parts[0])
        if ref.kind == "self":
            return self._resolve_method_on(
                summary, self._caller_class(summary, caller), ref.parts[0]
            )
        if ref.kind == "typed":
            type_text, method = ref.parts
            located = self._resolve_class_text(summary, type_text)
            if located is None:
                return None
            return self._resolve_method_on(located[0], located[1], method)
        if ref.kind == "attr":
            return self._resolve_attr(summary, caller, ref.parts)
        return None

    def _caller_class(
        self, summary: FileSummary, caller: str | None
    ) -> ClassDecl | None:
        if caller is None:
            return None
        gqn = f"{ProjectIndex.module_key(summary)}::{caller}"
        decl = self.index.functions.get(gqn)
        if decl is None or decl.class_name is None:
            return None
        return self._class_in(summary, decl.class_name)

    def _class_in(self, summary: FileSummary, name: str) -> ClassDecl | None:
        key = f"{ProjectIndex.module_key(summary)}::{name}"
        return self.index.classes.get(key)

    def _resolve_name(
        self, summary: FileSummary, caller: str | None, name: str
    ) -> str | None:
        key = ProjectIndex.module_key(summary)
        # 1. nested function of the enclosing function
        if caller is not None:
            nested = f"{key}::{caller}.<locals>.{name}"
            if nested in self.index.functions:
                return nested
        # 2. module-level function in the same file
        local = f"{key}::{name}"
        if local in self.index.functions:
            return local
        # 3. local class: a constructor call edges to __init__
        klass = self._class_in(summary, name)
        if klass is not None:
            return self._resolve_method_on(summary, klass, "__init__")
        # 4. imported project symbol
        origin = summary.import_map().get(name)
        if origin is not None:
            return self._resolve_dotted(origin)
        return None

    def _resolve_attr(
        self, summary: FileSummary, caller: str | None, parts: tuple[str, ...]
    ) -> str | None:
        root = parts[0]
        if root == "self" and len(parts) == 3:
            # self.<attr>.<method>() via the recorded attribute type
            klass = self._caller_class(summary, caller)
            if klass is None:
                return None
            attr_types = dict(klass.attr_types)
            type_text = attr_types.get(parts[1])
            if type_text is None:
                return None
            located = self._resolve_class_text(summary, type_text)
            if located is None:
                return None
            return self._resolve_method_on(located[0], located[1], parts[2])
        imports = summary.import_map()
        base = imports.get(root)
        if base is None:
            return None
        return self._resolve_dotted(".".join((base, *parts[1:])))

    def _resolve_dotted(self, dotted: str, depth: int = 0) -> str | None:
        """A fully dotted path → function, method, or class constructor."""
        if depth > _MAX_BASE_DEPTH:
            return None  # re-export cycle: give up rather than recurse
        # Longest module prefix wins: "repro.a.b.f" may be module
        # "repro.a.b" attr "f" or module "repro.a" attrs "b.f".
        parts = dotted.split(".")
        for cut in range(len(parts) - 1, 0, -1):
            module = ".".join(parts[:cut])
            summary = self.index.modules.get(module)
            if summary is None:
                continue
            rest = parts[cut:]
            if len(rest) == 1:
                name = f"{module}::{rest[0]}"
                if name in self.index.functions:
                    return name
                klass = self._class_in(summary, rest[0])
                if klass is not None:
                    return self._resolve_method_on(summary, klass, "__init__")
                # Re-exported name: follow the module's own import of it.
                onward = summary.import_map().get(rest[0])
                if onward is not None and onward != dotted:
                    return self._resolve_dotted(onward, depth + 1)
                return None
            if len(rest) == 2:
                klass = self._class_in(summary, rest[0])
                if klass is not None:
                    return self._resolve_method_on(summary, klass, rest[1])
                name = f"{module}::{'.'.join(rest)}"
                if name in self.index.functions:
                    return name
            return None
        return None

    def _resolve_class_text(
        self, summary: FileSummary, type_text: str
    ) -> tuple[FileSummary, ClassDecl] | None:
        """A dotted class annotation → (owning summary, class decl)."""
        leaf = type_text.split(".")[-1]
        klass = self._class_in(summary, type_text)
        if klass is not None:
            return summary, klass
        if "." not in type_text:
            origin = summary.import_map().get(type_text)
            if origin is not None:
                return self._locate_class(origin)
            return None
        imports = summary.import_map()
        root = type_text.split(".")[0]
        base = imports.get(root)
        if base is not None:
            return self._locate_class(
                ".".join((base, *type_text.split(".")[1:]))
            )
        # Fall back to the bare leaf in the same module.
        klass = self._class_in(summary, leaf)
        if klass is not None:
            return summary, klass
        return None

    def _locate_class(
        self, dotted: str, depth: int = 0
    ) -> tuple[FileSummary, ClassDecl] | None:
        if depth > _MAX_BASE_DEPTH:
            return None
        parts = dotted.split(".")
        for cut in range(len(parts) - 1, 0, -1):
            module = ".".join(parts[:cut])
            summary = self.index.modules.get(module)
            if summary is None:
                continue
            rest = parts[cut:]
            if len(rest) != 1:
                return None
            klass = self._class_in(summary, rest[0])
            if klass is not None:
                return summary, klass
            onward = summary.import_map().get(rest[0])
            if onward is not None and onward != dotted:
                return self._locate_class(onward, depth + 1)
            return None
        return None

    def _resolve_method_on(
        self,
        summary: FileSummary,
        klass: ClassDecl | None,
        method: str,
        depth: int = 0,
    ) -> str | None:
        """A method on a class, walking resolvable bases transitively."""
        if klass is None or depth > _MAX_BASE_DEPTH:
            return None
        if method in klass.methods:
            return f"{ProjectIndex.module_key(summary)}::{klass.name}.{method}"
        for base_text in klass.bases:
            located = self._resolve_class_text(summary, base_text)
            if located is None:
                continue
            found = self._resolve_method_on(
                located[0], located[1], method, depth + 1
            )
            if found is not None:
                return found
        return None
